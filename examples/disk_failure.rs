//! Case study II (reduced scale): predict disk failures from SMART-like
//! telemetry, comparing the translation-graph framework against the paper's
//! baselines (random forest, one-class SVM).
//!
//! Mirrors the paper's protocol (§IV): continuous SMART features are
//! discretized into categorical sequences, training data is aggregated
//! across all drives (one directional model per feature pair), and detection
//! runs per drive over its final month. Drives whose anomaly score rises
//! sharply above their development-month baseline are flagged as failing.
//!
//! Run with: `cargo run --release --example disk_failure`

use mdes::bleu::BleuConfig;
use mdes::core::{build_graph, detect, BrokenRule, DetectionConfig, GraphBuildConfig};
use mdes::graph::ScoreRange;
use mdes::lang::{LanguagePipeline, RawTrace, SentenceSet, WindowConfig};
use mdes::ml::{Confusion, Dataset, ForestConfig, OneClassSvm, RandomForest, Scaler, SvmConfig};
use mdes::synth::hdd::{generate, HddConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = generate(&HddConfig {
        n_drives: 30,
        days: 240,
        failure_fraction: 0.4,
        ..HddConfig::default()
    });
    let failed = fleet.drives.iter().filter(|d| d.failed).count();
    println!(
        "fleet: {} drives, {failed} fail within the horizon",
        fleet.drives.len()
    );

    // --- Baselines on the tabular drive-day view (34 features,
    //     3-day failure-prediction window labels). ---
    let (x, y, names) = fleet.to_tabular_windowed(3);
    let data = Dataset::new(x, y).with_feature_names(names);
    let mut rng = StdRng::seed_from_u64(1);
    let (train, test) = data.train_test_split(0.8, &mut rng);

    let rf_train = train.undersample_balanced(&mut rng);
    let forest = RandomForest::fit(&rf_train, &ForestConfig::default());
    let rf = Confusion::from_predictions(&forest.predict(&test.x), &test.y);
    println!("random forest     : recall {:.0}%", 100.0 * rf.recall());

    // OC-SVM needs standardized features (raw SMART values span 9 orders of
    // magnitude) and a sub-sampled healthy training set.
    let healthy = train.filter_class(0);
    let scaler = Scaler::fit(&healthy.x);
    let sub_x: Vec<Vec<f64>> = healthy.x.iter().step_by(8).cloned().collect();
    let sub = Dataset::new(scaler.transform(&sub_x), vec![0; sub_x.len()]);
    let svm = OneClassSvm::fit(
        &sub,
        &SvmConfig {
            nu: 0.05,
            ..SvmConfig::default()
        },
    );
    let oc = Confusion::from_predictions(&svm.predict(&scaler.transform(&test.x)), &test.y);
    println!("one-class SVM     : recall {:.0}%", 100.0 * oc.recall());

    // --- The framework (§IV-C): pooled discretization + pooled training. ---
    // Each eligible drive contributes its last 110 days: 60 train, 25 dev,
    // 25 test.
    let eligible = fleet.drives_with_min_days(110);
    let schemes = fleet.pooled_schemes(&eligible, 60);
    let window = WindowConfig::hdd();
    let per_drive: Vec<(usize, Vec<RawTrace>)> = eligible
        .iter()
        .map(|&d| (d, fleet.drive_traces_with_schemes(d, &schemes)))
        .collect();
    let windows = |d: usize| {
        let days = fleet.drives[d].days();
        (days - 110..days - 50, days - 50..days - 25, days - 25..days)
    };

    // Fit one language pipeline on the concatenated training segments.
    let nf = per_drive[0].1.len();
    let cat: Vec<RawTrace> = (0..nf)
        .map(|f| {
            let mut events = Vec::new();
            for (d, traces) in &per_drive {
                let (train_r, _, _) = windows(*d);
                events.extend_from_slice(&traces[f].events[train_r]);
            }
            RawTrace::new(per_drive[0].1[f].name.clone(), events)
        })
        .collect();
    let pipeline = LanguagePipeline::fit(&cat, 0..cat[0].events.len(), window)?;

    // Aggregate aligned train/dev sentences across drives, then run
    // Algorithm 1 once: one model per ordered feature pair.
    let n = pipeline.sensor_count();
    let empty = SentenceSet {
        sentences: Vec::new(),
        starts: Vec::new(),
    };
    let (mut train_sets, mut dev_sets) = (vec![empty.clone(); n], vec![empty; n]);
    for (d, traces) in &per_drive {
        let (train_r, dev_r, _) = windows(*d);
        let t = pipeline.encode_segment(traces, train_r)?;
        let v = pipeline.encode_segment(traces, dev_r)?;
        for k in 0..n {
            train_sets[k].sentences.extend_from_slice(&t[k].sentences);
            train_sets[k].starts.extend_from_slice(&t[k].starts);
            dev_sets[k].sentences.extend_from_slice(&v[k].sentences);
            dev_sets[k].starts.extend_from_slice(&v[k].starts);
        }
    }
    let trained = build_graph(
        &pipeline,
        &train_sets,
        &dev_sets,
        &GraphBuildConfig::default(),
    )?;
    println!(
        "framework         : {} features -> {} directional models",
        n,
        trained.models().len()
    );

    // Detection per drive at the paper's best range, with the drive's own
    // development month as the normal baseline.
    let dcfg = DetectionConfig {
        valid_range: ScoreRange::best_detection(),
        bleu: BleuConfig::sentence(),
        margin: 0.0,
        rule: BrokenRule::CorpusScore,
        ..DetectionConfig::default()
    };
    let (mut hits, mut failed_eval, mut false_alarms, mut healthy_eval) = (0, 0, 0, 0);
    for (d, traces) in &per_drive {
        let (_, dev_r, test_r) = windows(*d);
        let dev_res = detect(&trained, &pipeline.encode_segment(traces, dev_r)?, &dcfg)?;
        let test_res = detect(&trained, &pipeline.encode_segment(traces, test_r)?, &dcfg)?;
        let dev_mean = dev_res.scores.iter().sum::<f64>() / dev_res.scores.len() as f64;
        let w = test_res.scores.len();
        let tail = &test_res.scores[w.saturating_sub(4)..w - 1];
        let tail_mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        let flagged = tail_mean - dev_mean >= 0.3;
        if fleet.drives[*d].failed {
            failed_eval += 1;
            if flagged {
                hits += 1;
                println!(
                    "  {}: dev baseline {dev_mean:.2} -> pre-failure {tail_mean:.2}  DETECTED",
                    fleet.drives[*d].serial
                );
            }
        } else {
            healthy_eval += 1;
            if flagged {
                false_alarms += 1;
            }
        }
    }
    println!(
        "framework (ours)  : recall {:.0}% over {failed_eval} failed drives, \
         {false_alarms}/{healthy_eval} false alarms — no feature engineering",
        100.0 * hits as f64 / failed_eval.max(1) as f64
    );
    Ok(())
}
