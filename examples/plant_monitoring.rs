//! Case study I (reduced scale): monitor a synthetic physical plant.
//!
//! Mirrors §III of the paper: fit on normal days, build the relationship
//! graph, then compute the per-window anomaly score across the test days —
//! the injected anomalies (and their precursors) should spike.
//!
//! Run with: `cargo run --release --example plant_monitoring`

use mdes::core::{Mdes, MdesConfig};
use mdes::graph::ScoreRange;
use mdes::lang::WindowConfig;
use mdes::synth::plant::{generate, PlantConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced plant: 16 sensors, 14 days at 288 samples/day (5-minute
    // sampling), anomalies on days 12 and 14, precursor on day 11.
    let plant = generate(&PlantConfig {
        n_sensors: 16,
        days: 14,
        minutes_per_day: 288,
        n_components: 4,
        anomaly_days: vec![12, 14],
        precursor_days: vec![11],
        ..PlantConfig::default()
    });
    println!(
        "plant: {} sensors, {} days, mean cardinality {:.2}",
        plant.traces.len(),
        plant.config.days,
        plant.mean_cardinality()
    );

    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 6,
            word_stride: 1,
            sent_len: 8,
            sent_stride: 8,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(40.0, 95.0);

    // Days 1-4 train, 5-6 development, 7-14 test (paper: 10 / 3 / 17).
    let mdes = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        cfg,
    )?;
    println!(
        "graph: {} sensors survived filtering, {} directed relationships",
        mdes.graph().len(),
        mdes.graph().edge_count()
    );

    // Per-day mean anomaly score across the test period.
    println!("\nday | mean a_t | max a_t | verdict");
    for day in 7..=plant.config.days {
        let result = mdes.detect_range(&plant.traces, plant.day_range(day))?;
        let mean: f64 = result.scores.iter().sum::<f64>() / result.scores.len() as f64;
        let max = result.max_score();
        let truth = if plant.config.is_anomalous_day(day) {
            "ANOMALY (injected)"
        } else if plant.config.is_precursor_day(day) {
            "precursor"
        } else {
            "normal"
        };
        println!("{day:3} | {mean:8.3} | {max:7.3} | {truth}");
    }

    // Diagnose the worst window of the first anomalous day.
    let result = mdes.detect_range(&plant.traces, plant.day_range(12))?;
    let worst = (0..result.scores.len())
        .max_by(|&a, &b| result.scores[a].total_cmp(&result.scores[b]))
        .expect("non-empty");
    let diag = mdes.diagnose_alerts(&result.alerts[worst]);
    println!(
        "\nfault diagnosis of day 12, worst window: {} broken pairs, {} faulty cluster(s)",
        result.alerts[worst].len(),
        diag.faulty_clusters.len()
    );
    for (i, cluster) in diag.faulty_clusters.iter().enumerate() {
        let names: Vec<&str> = cluster.iter().map(|&s| mdes.graph().name(s)).collect();
        println!("  cluster {i}: {names:?}");
    }
    Ok(())
}
