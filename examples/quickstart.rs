//! Quickstart: fit the framework on two coupled sensors, then watch the
//! anomaly score react when their relationship breaks.
//!
//! Run with: `cargo run --example quickstart`

use mdes::core::{Mdes, MdesConfig};
use mdes::lang::{RawTrace, WindowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two square-wave sensors sharing a 10-minute cycle; sensor "b" slips
    // its phase at t = 1000, breaking the pairwise relationship.
    let samples = 1200;
    let square = |name: &str, phase: usize, slip_at: Option<usize>| {
        let events = (0..samples)
            .map(|t| {
                let extra = slip_at.map_or(0, |s| if t >= s { 3 } else { 0 });
                if ((t + phase + extra) / 5).is_multiple_of(2) {
                    "on"
                } else {
                    "off"
                }
                .to_owned()
            })
            .collect();
        RawTrace::new(name, events)
    };
    let traces = vec![
        square("a", 0, None),
        square("b", 2, Some(1000)),
        square("c", 4, None),
    ];

    let cfg = MdesConfig {
        window: WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        },
        ..MdesConfig::default()
    };

    // Offline: train on the first 400 samples, score pairs on the next 200.
    let mut cfg = cfg;
    cfg.detection.valid_range = mdes::graph::ScoreRange::closed(60.0, 100.0);
    let mdes = Mdes::fit(&traces, 0..400, 400..600, cfg)?;

    println!("relationship graph ({} sensors):", mdes.graph().len());
    for (s, d, w) in mdes.graph().edges() {
        println!(
            "  {} -> {}: BLEU {w:.1}",
            mdes.graph().name(s),
            mdes.graph().name(d)
        );
    }

    // Online: monitor the remaining samples (the slip happens mid-segment).
    let result = mdes.detect_range(&traces, 600..1200)?;
    println!(
        "\nanomaly scores over the test window ({} models valid):",
        result.valid_models
    );
    for (k, (&start, &score)) in result.starts.iter().zip(&result.scores).enumerate() {
        let marker = if score > 0.5 { "  <-- anomaly" } else { "" };
        println!(
            "  sentence {k:2} (t={:4}): a_t = {score:.2}{marker}",
            600 + start
        );
    }

    let spikes = result.detections(0.5);
    println!(
        "\ndetected {} anomalous windows (threshold 0.5)",
        spikes.len()
    );
    if let Some(&first) = spikes.first() {
        let diag = mdes.diagnose_alerts(&result.alerts[first]);
        println!("diagnosis of the first spike: suspect sensors (by broken edges):");
        for (sensor, count) in &diag.sensor_ranking {
            println!(
                "  {}: {count} broken relationships",
                mdes.graph().name(*sensor)
            );
        }
    }
    Ok(())
}
