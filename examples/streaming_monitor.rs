//! Production-style streaming monitor: train once, persist the model, then
//! restore it in a "monitoring service" that scores each incoming window and
//! raises calibrated alerts with diagnosis.
//!
//! Demonstrates model persistence (serde JSON), the calibrated
//! dev-quantile-floor threshold rule, and the fault-propagation timeline.
//!
//! Run with: `cargo run --release --example streaming_monitor`

use mdes::core::{propagation_timeline, BrokenRule, Mdes, MdesConfig};
use mdes::graph::ScoreRange;
use mdes::lang::WindowConfig;
use mdes::synth::plant::{generate, PlantConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = generate(&PlantConfig {
        n_sensors: 14,
        days: 14,
        minutes_per_day: 288,
        n_components: 4,
        anomaly_days: vec![13],
        precursor_days: vec![12],
        ..PlantConfig::default()
    });

    // --- Offline: fit and persist. ---
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 6,
            word_stride: 1,
            sent_len: 8,
            sent_stride: 8,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(60.0, 100.0);
    cfg.build.floor_quantile = 0.25;
    // Calibrated threshold: fewer false alarms than the paper's rule.
    cfg.detection.rule = BrokenRule::DevQuantileFloor;
    let trained = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 5),
        plant.days_range(6, 7),
        cfg,
    )?;
    let model_path = std::env::temp_dir().join("mdes_streaming_model.json");
    std::fs::write(&model_path, serde_json::to_string(&trained)?)?;
    println!(
        "trained on days 1-7, persisted {} sensors / {} models to {}",
        trained.graph().len(),
        trained.trained().models().len(),
        model_path.display()
    );
    drop(trained);

    // --- Online: restore and monitor day by day. ---
    let monitor: Mdes = serde_json::from_str(&std::fs::read_to_string(&model_path)?)?;
    println!("\nmonitoring days 8-14 (calibrated floor rule):");
    let mut alert_scores: Vec<f64> = Vec::new();
    let mut alert_sets: Vec<Vec<(usize, usize)>> = Vec::new();
    for day in 8..=14 {
        let result = monitor.detect_range(&plant.traces, plant.day_range(day))?;
        let mean: f64 = result.scores.iter().sum::<f64>() / result.scores.len() as f64;
        let peak = result.max_score();
        let status = if peak >= 0.4 {
            "ALERT"
        } else if peak >= 0.2 {
            "watch"
        } else {
            "ok"
        };
        println!("  day {day:2}: mean a_t {mean:.2}, peak {peak:.2} -> {status}");
        alert_scores.extend(result.scores.iter().copied());
        alert_sets.extend(result.alerts.iter().cloned());
    }

    // --- Incident review: propagation + diagnosis of the alert. ---
    let timeline = propagation_timeline(&alert_scores, &alert_sets);
    if let Some(first_alert) = timeline.iter().find(|s| s.score >= 0.4) {
        println!(
            "\nfirst alert at monitoring window {} (a_t = {:.2});",
            first_alert.window, first_alert.score
        );
        let diag = monitor.diagnose_alerts(&alert_sets[first_alert.window]);
        println!(
            "diagnosis: {} broken pairs across {} cluster(s); top suspects:",
            alert_sets[first_alert.window].len(),
            diag.faulty_clusters.len()
        );
        for (sensor, count) in diag.sensor_ranking.iter().take(5) {
            println!(
                "  {} ({count} broken relationships)",
                monitor.graph().name(*sensor)
            );
        }
        let spread: usize = timeline
            .iter()
            .skip(first_alert.window)
            .take(6)
            .map(|s| s.newly_affected.len())
            .sum();
        println!("fault spread: {spread} sensors newly affected within 6 windows of the alert");
    } else {
        println!("\nno alert raised (peak scores stayed below 0.4)");
    }
    std::fs::remove_file(&model_path).ok();
    Ok(())
}
