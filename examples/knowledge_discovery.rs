//! Knowledge discovery: mine the relationship graph for system structure —
//! popular health-indicator sensors, global/local subgraphs and sensor
//! communities — and check them against the simulator's ground truth.
//!
//! Run with: `cargo run --release --example knowledge_discovery`

use mdes::core::{Mdes, MdesConfig};
use mdes::graph::{to_dot, DotOptions, ScoreRange};
use mdes::lang::WindowConfig;
use mdes::synth::plant::{generate, PlantConfig};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = generate(&PlantConfig {
        n_sensors: 20,
        days: 8,
        minutes_per_day: 288,
        n_components: 4,
        anomaly_days: vec![],
        precursor_days: vec![],
        ..PlantConfig::default()
    });

    let cfg = MdesConfig {
        window: WindowConfig {
            word_len: 6,
            word_stride: 1,
            sent_len: 8,
            sent_stride: 8,
        },
        ..MdesConfig::default()
    };
    let mdes = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 5),
        plant.days_range(6, 8),
        cfg,
    )?;
    let graph = mdes.graph();
    println!(
        "Ori-MVRG: {} sensors, {} relationships",
        graph.len(),
        graph.edge_count()
    );

    // Global subgraphs per BLEU bucket (Table I style).
    println!("\nrange      | %rel | sensors | popular");
    let thr = graph.scaled_popular_threshold();
    for range in ScoreRange::paper_buckets() {
        let sub = graph.subgraph(&range);
        println!(
            "{:10} | {:4.0} | {:7} | {:7}",
            range.to_string(),
            100.0 * sub.edge_count() as f64 / graph.edge_count() as f64,
            sub.active_nodes().len(),
            sub.popular(thr).len()
        );
    }

    // Popular sensors = system-health indicators. Computed on a score-range
    // subgraph (the Ori-MVRG is fully connected, so every node would trivially
    // qualify there).
    let strong = graph.subgraph(&ScoreRange::closed(70.0, 100.0));
    let popular = strong.popular(thr);
    println!("\npopular sensors in [70, 100] (in-degree >= {thr}):");
    for &p in &popular {
        println!(
            "  {} (in-degree {}, ground truth: {:?})",
            strong.name(p),
            strong.in_degree(p),
            plant.sensors[mdes
                .language()
                .languages()
                .iter()
                .position(|l| l.name == graph.name(p))
                .map(|i| mdes.language().languages()[i].source_index)
                .unwrap_or(0)]
            .kind
        );
    }

    // Communities in a strong local subgraph vs ground-truth components.
    let range = ScoreRange::closed(60.0, 100.0);
    let comms = mdes.communities(&range, None);
    println!(
        "\ncommunities at {range} (modularity {:.2}):",
        comms.modularity
    );
    let by_name: HashMap<&str, usize> = plant
        .sensors
        .iter()
        .map(|s| (s.name.as_str(), s.component))
        .collect();
    for (i, group) in comms.groups.iter().enumerate() {
        let members: Vec<String> = group
            .iter()
            .map(|&s| {
                let name = graph.name(s);
                format!("{name}(c{})", by_name.get(name).copied().unwrap_or(99))
            })
            .collect();
        println!("  community {i}: {members:?}");
    }

    // Export the best-detection global subgraph as DOT (Fig. 6).
    let sub = mdes.global_subgraph(&ScoreRange::best_detection());
    let dot = to_dot(
        &sub,
        &DotOptions {
            title: "global subgraph [80, 90)".into(),
            highlight_nodes: sub.popular(thr).into_iter().collect(),
            ..DotOptions::default()
        },
    );
    std::fs::create_dir_all("results")?;
    std::fs::write("results/knowledge_discovery_global_80_90.dot", &dot)?;
    println!(
        "\nwrote results/knowledge_discovery_global_80_90.dot ({} bytes)",
        dot.len()
    );
    Ok(())
}
