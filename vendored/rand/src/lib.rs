//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `rand 0.8`: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded by SplitMix64), uniform range sampling for the
//! integer and float types the workspace uses, and
//! [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! Streams are deterministic across runs and platforms for a given seed,
//! which is all the mdes test-suite and experiments rely on; they do NOT
//! match upstream `rand`'s streams.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type carried by [`RngCore::try_fill_bytes`]; infallible here.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation: raw word and byte output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; never fails for in-memory PRNGs.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 (the
    /// standard seeding scheme, matching `rand`'s documented behaviour of
    /// deriving the full seed deterministically).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from the unit interval / full bit range via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types with uniform sampling over a bounded range. Implemented for the
/// primitive integers and floats; the single generic [`SampleRange`] impl
/// over this trait is what lets integer-literal ranges unify with the
/// surrounding expression's type, as in real `rand`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna, 2019).
    ///
    /// Fast, 256-bit state, passes BigCrush; deterministic for a given seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers: shuffling and random element choice.

    use super::{Rng, RngCore};

    /// Random operations on slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut buf = [0u8; 13];
        use super::RngCore;
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
