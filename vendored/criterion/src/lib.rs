//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the API surface the
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! auto-calibrated to a target measurement time and reports the median
//! per-iteration latency in criterion-like `time: [..]` lines.
//!
//! Running a subset works the same way as real criterion: extra CLI
//! arguments act as a substring filter on benchmark names, and `--test` /
//! `--bench` flags are accepted (and ignored) so `cargo test` and
//! `cargo bench` both drive these targets.
//!
//! Beyond the printed `time: [..]` lines, every run accumulates one record
//! per benchmark (name, mean, p50, p95, optional payload bytes declared via
//! [`Bencher::bytes`]); when the `MDES_BENCH_JSON` environment variable
//! names a file, [`Criterion::final_summary`] writes the records there as a
//! JSON array, so CI and experiment scripts get machine-readable results
//! without scraping stdout.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; only the hint names are needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine: batch many iterations per setup.
    SmallInput,
    /// Large routine: one setup per iteration.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measurement state handed to each benchmark closure.
pub struct Bencher {
    /// Collected per-iteration times (ns) for the measurement phase.
    samples: Vec<f64>,
    measurement_time: Duration,
    bytes: Option<u64>,
}

impl Bencher {
    /// Declares the payload size (bytes) one iteration processes — carried
    /// into the JSON record so throughput and artifact-size comparisons
    /// don't need a side channel.
    pub fn bytes(&mut self, n: u64) {
        self.bytes = Some(n);
    }

    /// Benchmarks `routine` by timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find a batch size taking ~1ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        // Measure until the time budget is spent (at least 10 samples).
        let deadline = Instant::now() + self.measurement_time;
        while self.samples.len() < 10 || Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if self.samples.len() >= 5000 {
                break;
            }
        }
    }

    /// Benchmarks `routine` on fresh inputs built by `setup`, excluding the
    /// setup time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement_time;
        while self.samples.len() < 10 || Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
            if self.samples.len() >= 5000 {
                break;
            }
        }
    }
}

/// One benchmark's aggregated measurements.
struct Record {
    name: String,
    mean_ns: f64,
    p50_ns: f64,
    p95_ns: f64,
    bytes: Option<u64>,
}

/// Benchmark driver; one instance runs every registered bench function.
pub struct Criterion {
    filter: Option<String>,
    measurement_time: Duration,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            measurement_time: Duration::from_millis(300),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies CLI arguments: a positional substring filters benchmark
    /// names; harness flags passed by `cargo test`/`cargo bench` are
    /// accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "-q" | "--noplot" => {}
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.measurement_time = Duration::from_secs_f64(secs);
                    }
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        if let Ok(ms) = std::env::var("MDES_BENCH_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                self.measurement_time = Duration::from_millis(ms);
            }
        }
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Runs one benchmark if it passes the name filter, printing a
    /// criterion-style `time: [lo mid hi]` line (min / median / max here).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            measurement_time: self.measurement_time,
            bytes: None,
        };
        f(&mut bencher);
        let bytes = bencher.bytes;
        let mut s = bencher.samples;
        if s.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        s.sort_by(f64::total_cmp);
        let lo = s[0];
        let mid = s[s.len() / 2];
        let hi = s[s.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(mid),
            fmt_ns(hi)
        );
        self.records.push(Record {
            name: id.to_owned(),
            mean_ns: s.iter().sum::<f64>() / s.len() as f64,
            p50_ns: percentile(&s, 0.50),
            p95_ns: percentile(&s, 0.95),
            bytes,
        });
        self
    }

    /// Finalizes the run: when `MDES_BENCH_JSON` names a file, the
    /// accumulated records are written there as a JSON array.
    pub fn final_summary(&mut self) {
        if let Ok(path) = std::env::var("MDES_BENCH_JSON") {
            if let Err(e) = self.write_json(std::path::Path::new(&path)) {
                eprintln!("criterion: failed to write {path}: {e}");
            }
        }
    }

    /// Serializes the records by hand (the stand-in has no serde
    /// dependency; the schema is five flat fields).
    fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            let bytes = r.bytes.map_or_else(|| "null".to_owned(), |b| b.to_string());
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"p50_ns\": {:.1}, \
                 \"p95_ns\": {:.1}, \"bytes\": {}}}{}\n",
                r.name.replace('\\', "\\\\").replace('"', "\\\""),
                r.mean_ns,
                r.p50_ns,
                r.p95_ns,
                bytes,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }
}

/// Interpolation-free percentile over an ascending-sorted sample slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Re-exported measurement marker types (API compatibility).
pub mod measurement {
    /// Wall-clock time measurement (the only one supported).
    pub struct WallTime;
}

/// Registers a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

/// Opaque value barrier; re-export of `std::hint::black_box` for benches
/// importing it from criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(2u64 + 2)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(2));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn records_written_as_json() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(2));
        c.bench_function("smoke/json", |b| {
            b.bytes(512);
            b.iter(|| std::hint::black_box(1u64 + 1))
        });
        c.bench_function("smoke/json_nobytes", |b| b.iter(|| std::hint::black_box(2)));
        let path =
            std::env::temp_dir().join(format!("criterion_json_test_{}.json", std::process::id()));
        c.write_json(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"name\": \"smoke/json\""), "{text}");
        assert!(text.contains("\"bytes\": 512"), "{text}");
        assert!(text.contains("\"bytes\": null"), "{text}");
        assert!(text.contains("\"mean_ns\""), "{text}");
        assert!(text.contains("\"p95_ns\""), "{text}");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
