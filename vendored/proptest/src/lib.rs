//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the [`Strategy`] trait with
//! numeric-range and [`collection::vec`] strategies, the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`), and the `prop_assert*`
//! macros. Inputs are drawn from a deterministic per-test RNG, so failures
//! reproduce across runs; there is no shrinking — the failing input is
//! printed instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`ProptestConfig::with_cases(n)`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (returned by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// String strategies from a regex-like pattern, as in real proptest. Only
/// the subset this workspace's tests use is understood: literal characters,
/// character classes `[a-z...]`, and quantifiers `{m}`, `{m,n}`, `?`, `+`,
/// `*` (`+`/`*` capped at 8 repetitions).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Atom: a character class or a literal character.
            let class: Vec<(char, char)> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{self}`"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                ranges
            } else {
                let c = chars[i];
                i += 1;
                vec![(c, c)]
            };
            // Quantifier.
            let (min, max) = match chars.get(i) {
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{self}`"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("quantifier min"),
                            n.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            let reps = rng.gen_range(min..=max);
            for _ in 0..reps {
                let (lo, hi) = class[rng.gen_range(0..class.len())];
                out.push(
                    char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                        .expect("valid char in class range"),
                );
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec`]: an exact `usize` length or a
    /// (half-open / inclusive) range of lengths.
    pub trait IntoSizeRange {
        /// Returns `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// `Vec` strategy with the given element strategy and size (an exact
    /// length or a range of lengths).
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Executes `body` over `cfg.cases` deterministic random cases, panicking
/// (with the case number) on the first failure. Used by [`proptest!`].
pub fn run_proptest<F>(cfg: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    for case in 0..cfg.cases {
        // Seed derived from the test name and case index: deterministic
        // across runs and platforms, different across tests.
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ u64::from(case));
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{}: {e}",
                cfg.cases
            );
        }
    }
}

/// Defines property tests: zero or more `#[test] fn name(arg in strategy, ...) { ... }`
/// items, optionally preceded by `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; ) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(&$cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case (with the
/// formatted message, if given) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vecs(max: usize) -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(0u8..10, 1..max)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0..2.0f64, z in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in small_vecs(5), w in crate::collection::vec(0u8..3, 4)) {
            prop_assert!((1..5).contains(&v.len()), "len {}", v.len());
            prop_assert_eq!(w.len(), 4);
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_proptest(&ProptestConfig::with_cases(3), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut out = Vec::new();
            crate::run_proptest(&ProptestConfig::with_cases(5), "det", |rng| {
                out.push(crate::Strategy::generate(&(0u32..1000), rng));
                Ok(())
            });
            out
        };
        assert_eq!(draw(), draw());
    }
}
