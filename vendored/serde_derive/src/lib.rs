//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's simplified data model (`serde::Content`). The
//! macro has no dependencies (no `syn`/`quote`): it walks `proc_macro`
//! TokenTrees directly and emits the impl as a string parsed back into a
//! `TokenStream`.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields
//! - enums with unit, newtype, and struct variants (externally tagged)
//! - `#[serde(skip)]` on fields (omitted on serialize, `Default::default()`
//!   on deserialize)
//! - `#[serde(from = "Shadow")]` on structs (deserialize the shadow type,
//!   then convert with `From`)
//!
//! Generics, tuple structs, and other serde attributes are rejected with a
//! compile error naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored data model) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (vendored data model) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// `#[serde(from = "T")]` payload, if present.
    from: Option<String>,
    shape: Shape,
}

/// Attributes found on one item/field/variant.
#[derive(Default)]
struct Attrs {
    skip: bool,
    from: Option<String>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let attrs = parse_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found `{other}`"),
    };
    pos += 1;

    if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }

    let body = match &tokens[pos] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive: `{name}` must have a braced body (tuple/unit items unsupported), found `{other}`"
        ),
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };

    Item {
        name,
        from: attrs.from,
        shape,
    }
}

/// Parses a run of `#[...]` outer attributes starting at `*pos`, returning
/// any serde attributes found and advancing past all of them.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> Attrs {
    let mut attrs = Attrs::default();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let TokenTree::Group(g) = &tokens[*pos + 1] else {
                    panic!("serde_derive: malformed attribute");
                };
                parse_one_attr(g.stream(), &mut attrs);
                *pos += 2;
            }
            _ => break,
        }
    }
    attrs
}

/// Inspects the bracketed body of one attribute (`serde(...)`, `doc = ...`,
/// `default`, ...), recording serde directives and ignoring the rest.
fn parse_one_attr(stream: TokenStream, attrs: &mut Attrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // #[doc = ...], #[default], #[derive(...)], ...
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        panic!("serde_derive: bare `#[serde]` attribute is not supported");
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match args.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "skip" => attrs.skip = true,
        Some(TokenTree::Ident(id)) if id.to_string() == "from" => {
            let Some(TokenTree::Literal(lit)) = args.get(2) else {
                panic!("serde_derive: expected `#[serde(from = \"Type\")]`");
            };
            let s = lit.to_string();
            attrs.from = Some(s.trim_matches('"').to_string());
        }
        other => panic!(
            "serde_derive: unsupported serde attribute `{}` (vendored derive supports `skip` and `from`)",
            other.map_or_else(String::new, |t| t.to_string())
        ),
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos], TokenTree::Ident(id) if id.to_string() == "pub") {
        *pos += 1;
        // pub(crate) / pub(super)
        if matches!(&tokens[*pos], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            *pos += 1;
        }
    }
}

/// Parses `name: Type, ...` named-field lists. Types are skipped, not kept:
/// the generated code never needs them (field types are inferred at the use
/// site). Top-level commas are found by tracking `<`/`>` depth — commas
/// inside parenthesised tuple types are hidden inside their `Group`.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found `{other}`"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            _ => panic!("serde_derive: tuple structs are not supported (field `{name}`)"),
        }
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field {
            name,
            skip: attrs.skip,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let _attrs = parse_attrs(&tokens, &mut pos); // #[default], docs
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found `{other}`"),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                let n = count_tuple_elems(g.stream());
                if n != 1 {
                    panic!(
                        "serde_derive: variant `{name}` has {n} tuple fields; only newtype variants are supported"
                    );
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_elems(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut elems = 0usize;
    let mut saw_token = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                elems += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        elems += 1;
    }
    elems
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__m.push((\"{n}\".to_string(), serde::Serialize::to_content(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut __m: Vec<(String, serde::Content)> = Vec::new();\n{pushes}serde::Content::Map(__m)"
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Content::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(__v) => serde::Content::Map(vec![(\"{vn}\".to_string(), serde::Serialize::to_content(__v))]),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "__m.push((\"{n}\".to_string(), serde::Serialize::to_content({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __m: Vec<(String, serde::Content)> = Vec::new();\n\
                             {pushes}\
                             serde::Content::Map(vec![(\"{vn}\".to_string(), serde::Content::Map(__m))])\n\
                             }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, unused_mut)]\n\
         impl serde::Serialize for {name} {{\n\
         fn to_content(&self) -> serde::Content {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(from_ty) = &item.from {
        return format!(
            "#[automatically_derived]\n#[allow(clippy::all, unused_mut)]\n\
             impl serde::Deserialize for {name} {{\n\
             fn from_content(__c: &serde::Content) -> Result<Self, serde::DeError> {{\n\
             let __shadow: {from_ty} = serde::Deserialize::from_content(__c)?;\n\
             Ok(<{name} as From<{from_ty}>>::from(__shadow))\n\
             }}\n}}\n"
        );
    }
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{n}: Default::default(),\n", n = f.name));
                } else {
                    inits.push_str(&format!(
                        "{n}: serde::__field(__c, \"{n}\")?,\n",
                        n = f.name
                    ));
                }
            }
            format!("Ok(Self {{\n{inits}}})")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    VariantKind::Newtype => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_content(__inner)?)),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{n}: Default::default(),\n",
                                    n = f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{n}: serde::__field(__inner, \"{n}\")?,\n",
                                    n = f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(serde::DeError::unknown_variant(\"{name}\", __other)),\n\
                 }},\n\
                 serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => Err(serde::DeError::unknown_variant(\"{name}\", __other)),\n\
                 }}\n\
                 }}\n\
                 _ => Err(serde::DeError::expected(\"externally tagged enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, unused_mut)]\n\
         impl serde::Deserialize for {name} {{\n\
         fn from_content(__c: &serde::Content) -> Result<Self, serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}
