//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` crate's [`serde::Content`] tree to JSON
//! (compact or pretty) and parses JSON back with a recursive-descent parser.
//! Floats are written with Rust's shortest-round-trip formatting, so values
//! survive a serialize/deserialize cycle exactly (the `float_roundtrip`
//! behaviour of the real crate).

#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Fails if the value contains a non-finite float (JSON cannot represent
/// NaN or infinities).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Fails if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
///
/// # Errors
///
/// Fails on malformed JSON, trailing input, or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

fn write_content(
    out: &mut String,
    c: &Content,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {v}")));
            }
            // `{:?}` is shortest-round-trip and always keeps a `.0` marker
            // on integral values, matching serde_json's float output.
            out.push_str(&format!("{v:?}"));
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Content::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Content::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut s)?;
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn escape(&mut self, s: &mut String) -> Result<(), Error> {
        let Some(b) = self.peek() else {
            return Err(Error("unterminated escape".to_string()));
        };
        self.pos += 1;
        match b {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'b' => s.push('\u{8}'),
            b'f' => s.push('\u{c}'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect `\uXXXX` low half.
                    self.eat_keyword("\\u")?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error("invalid low surrogate".to_string()));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                s.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error(format!("invalid unicode escape {code:#x}")))?,
                );
            }
            other => {
                return Err(Error(format!("invalid escape `\\{}`", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated unicode escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid unicode escape".to_string()))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| Error(format!("invalid unicode escape `\\u{hex}`")))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number text");
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string(&1u32).unwrap(), "1");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn nested_round_trip() {
        let v: Vec<(usize, f64)> = vec![(1, 0.5), (2, -1.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,-1.25]]");
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_shortest_round_trip() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
        for &x in &[0.1f32, 1.0f32 / 3.0, 6.1e-5f32] {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![vec![1u8]];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  [\n    1\n  ]\n]");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed: Vec<String> = from_str(" [ \"a\\u00e9\\n\" , \"\\ud83d\\ude00\" ] ").unwrap();
        assert_eq!(parsed, ["aé\n", "😀"]);
    }

    #[test]
    fn option_null_round_trip() {
        let v: Vec<Option<f64>> = vec![None, Some(2.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[null,2.5]");
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }
}
