//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's API shape: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and poisoning
//! is ignored — a panic while holding the lock does not poison it for later
//! users, matching parking_lot semantics.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard providing exclusive access to a [`Mutex`]'s data.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_not_poisoned_by_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
