//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization framework with serde-compatible *spelling*: the
//! [`Serialize`] / [`Deserialize`] traits and `#[derive(Serialize,
//! Deserialize)]` (via the vendored `serde_derive`). Instead of serde's
//! visitor-based zero-copy model, values round-trip through an owned
//! [`Content`] tree which `serde_json` renders to / parses from JSON.
//!
//! Coverage is intentionally limited to what this workspace uses: named
//! structs, externally tagged enums, primitives, `String`, `Vec`, `Option`,
//! 2/3-tuples, and `HashMap` with integer or string keys (serialized with
//! sorted keys so output is deterministic).

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate tree every value serializes into.
///
/// Mirrors the JSON data model: maps preserve insertion order and carry
/// string keys.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always `< 0` when produced by the serializer).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object: ordered `(key, value)` pairs.
    Map(Vec<(String, Content)>),
}

impl Content {
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus no position info (errors are rare
/// and always fatal for this workspace's trusted inputs).
#[derive(Clone, Debug)]
pub struct DeError(String);

impl DeError {
    /// Error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X" error.
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }

    /// Type mismatch while deserializing.
    pub fn mismatch(expected: &str, found: &Content) -> Self {
        DeError(format!("expected {expected}, found {}", found.kind()))
    }

    /// A required struct field is absent.
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field `{name}`"))
    }

    /// An enum tag names no known variant.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError(format!("unknown variant `{tag}` for enum {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the intermediate tree.
    fn to_content(&self) -> Content;
}

/// Conversion out of the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value from the intermediate tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Looks up and deserializes a struct field (used by generated code).
#[doc(hidden)]
pub fn __field<T: Deserialize>(content: &Content, name: &str) -> Result<T, DeError> {
    let Content::Map(entries) = content else {
        return Err(DeError::mismatch("object", content));
    };
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => Err(DeError::missing_field(name)),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

// `Content` round-trips through itself, making it the self-describing
// "any JSON value" type (the counterpart of `serde_json::Value`, which this
// stand-in otherwise omits): `serde_json::from_str::<Content>` parses
// arbitrary JSON for schema-agnostic inspection.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                content
                    .as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| DeError::mismatch(stringify!($t), content))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v < 0 { Content::I64(v) } else { Content::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                content
                    .as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| DeError::mismatch(stringify!($t), content))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_f64()
            .ok_or_else(|| DeError::mismatch("f64", content))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::mismatch("f32", content))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(DeError::mismatch("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::from_content(&items[0])?,
                B::from_content(&items[1])?,
                C::from_content(&items[2])?,
            )),
            other => Err(DeError::mismatch("3-element array", other)),
        }
    }
}

/// Types usable as JSON object keys (JSON keys are always strings, so
/// integer keys go through their decimal representation, as in real
/// `serde_json`).
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn parse_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn parse_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn parse_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::custom(format!(
                    "invalid {} map key `{s}`", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: MapKey,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_content(&self) -> Content {
        // Sorted keys: hash order is nondeterministic, and downstream
        // consumers compare serialized artifacts byte-for-byte.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let Content::Map(entries) = content else {
            return Err(DeError::mismatch("object", content));
        };
        let mut map = HashMap::with_capacity_and_hasher(entries.len(), S::default());
        for (k, v) in entries {
            map.insert(K::parse_key(k)?, V::from_content(v)?);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f32::from_content(&1.5f32.to_content()).unwrap(), 1.5);
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn unsigned_rejects_negative() {
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn float_accepts_integer_content() {
        assert_eq!(f64::from_content(&Content::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u8, 2], vec![3]];
        assert_eq!(Vec::<Vec<u8>>::from_content(&v.to_content()).unwrap(), v);

        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_content(&o.to_content()).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_content(&Some(2.0).to_content()).unwrap(),
            Some(2.0)
        );

        let t = (3usize, 4.5f64);
        assert_eq!(<(usize, f64)>::from_content(&t.to_content()).unwrap(), t);
    }

    #[test]
    fn hashmap_sorted_and_round_trips() {
        let mut m: HashMap<u32, Vec<u32>> = HashMap::new();
        m.insert(10, vec![1]);
        m.insert(2, vec![2, 3]);
        let c = m.to_content();
        if let Content::Map(entries) = &c {
            let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, ["10", "2"], "lexicographically sorted keys");
        } else {
            panic!("expected map");
        }
        assert_eq!(HashMap::<u32, Vec<u32>>::from_content(&c).unwrap(), m);
    }

    #[test]
    fn missing_field_reported() {
        let c = Content::Map(vec![("a".to_string(), Content::U64(1))]);
        let err = __field::<u32>(&c, "b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
