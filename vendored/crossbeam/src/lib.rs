//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::scope` with the 0.8 API shape — the spawn closure
//! receives a `&Scope` argument, and panics in worker threads surface as an
//! `Err` from `scope` rather than unwinding — implemented on top of
//! `std::thread::scope`.

#![warn(missing_docs)]

use std::panic::AssertUnwindSafe;

/// Scoped-thread handle passed to the `scope` closure and to each spawned
/// worker (crossbeam spawns take a `|scope| ...` argument; std's do not).
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker thread scoped to this scope.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Join handle for a scoped worker thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result (or the panic
    /// payload as `Err`).
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned; all
/// spawned threads are joined before `scope` returns. A panic in any worker
/// (or in `f`) is caught and returned as `Err` with the panic payload,
/// matching crossbeam's contract.
///
/// # Errors
///
/// Returns the panic payload if `f` or any unjoined worker thread panics.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// `crossbeam::thread` module alias (the 0.8 layout re-exports `scope` at
/// the crate root; some code paths spell it `crossbeam::thread::scope`).
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("no panics");
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn join_returns_value() {
        let v =
            super::scope(|scope| scope.spawn(|_| 7usize).join().expect("join")).expect("no panics");
        assert_eq!(v, 7);
    }
}
