//! `mdes-serve` — network serving daemon for a frozen model snapshot.
//!
//! ```text
//! mdes-serve --snapshot model.mdsn [--addr 127.0.0.1:7400]
//!            [--admin-addr 127.0.0.1:7401] [--threads N]
//!            [--idle-ttl-secs 300] [--queue-capacity 64]
//!            [--read-timeout-secs 10] [--obs FILE.jsonl]
//! mdes-serve --model model.json ...      # JSON Mdes, frozen at startup
//! ```
//!
//! Serves the framed binary ingest protocol on `--addr` and the text admin
//! plane on `--admin-addr` (see `DESIGN.md` §12). Runs until an admin
//! `shutdown` command arrives. New snapshots can be hot-swapped at runtime
//! through the admin `publish` command; a snapshot that fails validation is
//! rejected and the running model stays live.

use mdes::core::{read_snapshot, GraphSnapshot, Mdes, ServingEngine};
use mdes::net::{start, ServeConfig};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return Ok(());
    }
    let snapshot = load_snapshot(args)?;
    let width = snapshot.min_width();
    let threads: usize = parse_num(args, "threads", 0)?;
    let mut engine = ServingEngine::new(snapshot);
    if threads > 0 {
        engine = engine.with_threads(threads);
    }

    if let Some(path) = opt(args, "obs") {
        let recorder = mdes::obs::Recorder::with_jsonl_path(Path::new(&path))
            .map_err(|e| format!("cannot open obs sink `{path}`: {e}"))?;
        mdes::obs::install(Arc::new(recorder));
    } else {
        mdes::obs::install(Arc::new(mdes::obs::Recorder::new()));
    }

    let cfg = ServeConfig {
        addr: opt(args, "addr").unwrap_or_else(|| "127.0.0.1:7400".to_owned()),
        admin_addr: Some(opt(args, "admin-addr").unwrap_or_else(|| "127.0.0.1:7401".to_owned())),
        queue_capacity: parse_num(args, "queue-capacity", 64)?,
        idle_ttl: Duration::from_secs(parse_num(args, "idle-ttl-secs", 300)?),
        read_timeout: Duration::from_secs(parse_num(args, "read-timeout-secs", 10)?),
        ..ServeConfig::default()
    };
    let server = start(engine, cfg)?;
    println!(
        "mdes-serve: ingest on {}, admin on {}, model width {width}",
        server.addr(),
        server
            .admin_addr()
            .map_or_else(|| "-".to_owned(), |a| a.to_string()),
    );
    println!("mdes-serve: send `shutdown` to the admin port to stop");
    server.wait();
    server.stop();
    println!("mdes-serve: stopped");
    Ok(())
}

fn load_snapshot(args: &[String]) -> Result<GraphSnapshot, Box<dyn std::error::Error>> {
    match (opt(args, "snapshot"), opt(args, "model")) {
        (Some(path), None) => Ok(read_snapshot(Path::new(&path))?),
        (None, Some(path)) => {
            let data = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read model file `{path}`: {e}"))?;
            let mdes: Mdes = serde_json::from_str(&data)
                .map_err(|e| format!("cannot parse model file `{path}`: {e}"))?;
            Ok(GraphSnapshot::freeze(&mdes))
        }
        (Some(_), Some(_)) => Err("--snapshot and --model are mutually exclusive".into()),
        (None, None) => {
            print_usage();
            Err("one of --snapshot or --model is required".into())
        }
    }
}

fn print_usage() {
    eprintln!(
        "mdes-serve — network serving daemon (DSN 2020 reproduction)\n\
         \n\
         USAGE: mdes-serve (--snapshot FILE.mdsn | --model FILE.json)\n\
                [--addr HOST:PORT] [--admin-addr HOST:PORT] [--threads N]\n\
                [--idle-ttl-secs S] [--queue-capacity N]\n\
                [--read-timeout-secs S] [--obs FILE.jsonl]"
    );
}

/// Returns the value of `--key=value` or `--key value`.
fn opt(args: &[String], key: &str) -> Option<String> {
    let eq = format!("--{key}=");
    let flag = format!("--{key}");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_owned());
        }
        if a == &flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

fn parse_num<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match opt(args, key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad numeric value for --{key}: `{v}`")),
    }
}
