//! `mdes` — command-line interface to the analytics framework.
//!
//! Workflows:
//!
//! ```text
//! mdes simulate-plant --out traces.json --sensors 16 --days 14
//! mdes fit    --traces traces.json --train 0..4032 --dev 4032..6048 --out model.json
//! mdes detect --model model.json --traces traces.json --range 6048..8064 --threshold 0.5
//! mdes discover --model model.json --range 80..90 --dot graph.dot
//! mdes diagnose --model model.json --traces traces.json --range 6048..8064
//! ```
//!
//! Traces are JSON arrays of `{ "name": ..., "events": [...] }`; a fitted
//! model is the JSON serialization of [`mdes::core::Mdes`].

use mdes::core::{Mdes, MdesConfig, TranslatorConfig};
use mdes::graph::{to_dot, walktrap, DotOptions, ScoreRange, WalktrapConfig};
use mdes::lang::{RawTrace, WindowConfig};
use mdes::synth::hdd::{self, HddConfig};
use mdes::synth::plant::{self, PlantConfig};
use std::collections::HashSet;
use std::ops::Range;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn run(args: &[String]) -> CliResult {
    let Some(command) = args.first() else {
        print_usage();
        return Err("missing command".into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "simulate-plant" => simulate_plant(rest),
        "simulate-hdd" => simulate_hdd(rest),
        "fit" => fit(rest),
        "detect" => detect(rest),
        "discover" => discover(rest),
        "diagnose" => diagnose(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(format!("unknown command `{other}`").into())
        }
    }
}

fn print_usage() {
    eprintln!(
        "mdes — mining multivariate discrete event sequences (DSN 2020)\n\
         \n\
         USAGE: mdes <command> [--key=value ...]\n\
         \n\
         commands:\n\
           simulate-plant  --out FILE [--sensors N] [--days D] [--minutes M] [--seed S]\n\
           simulate-hdd    --out FILE [--drives N] [--days D] [--seed S]\n\
           fit             --traces FILE --train A..B --dev A..B --out FILE\n\
                           [--word-len N] [--sent-len N] [--translator ngram|nmt]\n\
                           [--valid LO..HI]\n\
           detect          --model FILE --traces FILE --range A..B [--threshold T]\n\
           discover        --model FILE [--range LO..HI] [--dot FILE]\n\
           diagnose        --model FILE --traces FILE --range A..B [--window K]"
    );
}

/// Returns the value of `--key=value` or `--key value`.
fn opt(args: &[String], key: &str) -> Option<String> {
    let eq = format!("--{key}=");
    let flag = format!("--{key}");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_owned());
        }
        if a == &flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

fn require(args: &[String], key: &str) -> Result<String, String> {
    opt(args, key).ok_or_else(|| format!("missing required option --{key}"))
}

fn parse_range(s: &str) -> Result<Range<usize>, String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("range `{s}` must be A..B"))?;
    let a: usize = a
        .trim()
        .parse()
        .map_err(|_| format!("bad range start `{a}`"))?;
    let b: usize = b
        .trim()
        .parse()
        .map_err(|_| format!("bad range end `{b}`"))?;
    if a >= b {
        return Err(format!("empty range `{s}`"));
    }
    Ok(a..b)
}

fn parse_score_range(s: &str) -> Result<ScoreRange, String> {
    let r = parse_range(s)?;
    let (lo, hi) = (r.start as f64, r.end as f64);
    if hi > 100.0 {
        return Err(format!("score range `{s}` exceeds 100"));
    }
    Ok(if (hi - 100.0).abs() < f64::EPSILON {
        ScoreRange::closed(lo, hi)
    } else {
        ScoreRange::half_open(lo, hi)
    })
}

fn parse_num<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match opt(args, key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad numeric value for --{key}: `{v}`")),
    }
}

fn load_traces(path: &str) -> Result<Vec<RawTrace>, Box<dyn std::error::Error>> {
    let data = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read traces file `{path}`: {e}"))?;
    let traces: Vec<RawTrace> = serde_json::from_str(&data)
        .map_err(|e| format!("cannot parse traces file `{path}`: {e}"))?;
    if traces.is_empty() {
        return Err("traces file contains no sensors".into());
    }
    Ok(traces)
}

fn load_model(path: &str) -> Result<Mdes, Box<dyn std::error::Error>> {
    let data = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read model file `{path}`: {e}"))?;
    Ok(
        serde_json::from_str(&data)
            .map_err(|e| format!("cannot parse model file `{path}`: {e}"))?,
    )
}

fn simulate_plant(args: &[String]) -> CliResult {
    let out = require(args, "out")?;
    let cfg = PlantConfig {
        n_sensors: parse_num(args, "sensors", 16)?,
        days: parse_num(args, "days", 14)?,
        minutes_per_day: parse_num(args, "minutes", 288)?,
        seed: parse_num(args, "seed", 2017u64)?,
        ..PlantConfig::default()
    };
    let data = plant::generate(&cfg);
    std::fs::write(&out, serde_json::to_string(&data.traces)?)?;
    println!(
        "wrote {} sensors x {} samples to {out} (anomaly days: {:?})",
        data.traces.len(),
        cfg.samples(),
        cfg.anomaly_days
    );
    Ok(())
}

fn simulate_hdd(args: &[String]) -> CliResult {
    let out = require(args, "out")?;
    let cfg = HddConfig {
        n_drives: parse_num(args, "drives", 24)?,
        days: parse_num(args, "days", 200)?,
        seed: parse_num(args, "seed", 7u64)?,
        ..HddConfig::default()
    };
    let fleet = hdd::generate(&cfg);
    std::fs::write(&out, serde_json::to_string(&fleet)?)?;
    let failed = fleet.drives.iter().filter(|d| d.failed).count();
    println!(
        "wrote {} drives ({failed} failing) to {out}",
        fleet.drives.len()
    );
    Ok(())
}

fn fit(args: &[String]) -> CliResult {
    let traces = load_traces(&require(args, "traces")?)?;
    let train = parse_range(&require(args, "train")?)?;
    let dev = parse_range(&require(args, "dev")?)?;
    let out = require(args, "out")?;
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: parse_num(args, "word-len", 8)?,
            word_stride: 1,
            sent_len: parse_num(args, "sent-len", 10)?,
            sent_stride: parse_num(args, "sent-len", 10)?,
        },
        ..MdesConfig::default()
    };
    cfg.build.translator = match opt(args, "translator").as_deref() {
        Some("nmt") => TranslatorConfig::neural(),
        Some("ngram") | None => TranslatorConfig::fast(),
        Some(other) => return Err(format!("unknown translator `{other}`").into()),
    };
    if let Some(v) = opt(args, "valid") {
        cfg.detection.valid_range = parse_score_range(&v)?;
    }
    let model = Mdes::fit(&traces, train, dev, cfg)?;
    std::fs::write(&out, serde_json::to_string(&model)?)?;
    println!(
        "fitted {} sensors, {} directional models; wrote {out}",
        model.language().sensor_count(),
        model.trained().models().len()
    );
    Ok(())
}

fn detect(args: &[String]) -> CliResult {
    let model = load_model(&require(args, "model")?)?;
    let traces = load_traces(&require(args, "traces")?)?;
    let range = parse_range(&require(args, "range")?)?;
    let threshold: f64 = parse_num(args, "threshold", 0.5)?;
    let result = model.detect_range(&traces, range.clone())?;
    println!("window | start | a_t | broken");
    for (t, (&score, &start)) in result.scores.iter().zip(&result.starts).enumerate() {
        let mark = if score >= threshold {
            "  <-- anomaly"
        } else {
            ""
        };
        println!(
            "{t:6} | {:5} | {score:.3} | {}{mark}",
            range.start + start,
            result.alerts[t].len()
        );
    }
    let hits = result.detections(threshold);
    println!(
        "\n{} of {} windows over threshold {threshold} ({} valid models)",
        hits.len(),
        result.scores.len(),
        result.valid_models
    );
    Ok(())
}

fn discover(args: &[String]) -> CliResult {
    let model = load_model(&require(args, "model")?)?;
    let range = match opt(args, "range") {
        Some(v) => parse_score_range(&v)?,
        None => ScoreRange::best_detection(),
    };
    let sub = model.global_subgraph(&range);
    let thr = sub.scaled_popular_threshold();
    let popular = sub.popular(thr);
    println!(
        "global subgraph {range}: {} sensors, {} relationships",
        sub.active_nodes().len(),
        sub.edge_count()
    );
    println!("popular sensors (in-degree >= {thr}):");
    for &p in &popular {
        println!("  {} (in-degree {})", sub.name(p), sub.in_degree(p));
    }
    let local = sub.without_nodes(&popular);
    let comms = walktrap(&local, &WalktrapConfig::default());
    println!("communities (modularity {:.2}):", comms.modularity);
    for (i, group) in comms.groups.iter().enumerate() {
        let names: Vec<&str> = group.iter().map(|&s| local.name(s)).collect();
        println!("  {i}: {names:?}");
    }
    if let Some(path) = opt(args, "dot") {
        let dot = to_dot(
            &sub,
            &DotOptions {
                title: format!("global subgraph {range}"),
                highlight_nodes: popular.into_iter().collect::<HashSet<_>>(),
                ..DotOptions::default()
            },
        );
        std::fs::write(&path, dot)?;
        println!("wrote {path}");
    }
    Ok(())
}

fn diagnose(args: &[String]) -> CliResult {
    let model = load_model(&require(args, "model")?)?;
    let traces = load_traces(&require(args, "traces")?)?;
    let range = parse_range(&require(args, "range")?)?;
    let result = model.detect_range(&traces, range)?;
    let window = match opt(args, "window") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad --window `{v}`"))?,
        None => (0..result.scores.len())
            .max_by(|&a, &b| result.scores[a].total_cmp(&result.scores[b]))
            .ok_or("no detection windows")?,
    };
    if window >= result.scores.len() {
        return Err(format!("window {window} out of range 0..{}", result.scores.len()).into());
    }
    let diag = model.diagnose_alerts(&result.alerts[window]);
    println!(
        "window {window}: a_t = {:.3}, {} broken pairs, {:.0}% of local subgraph broken{}",
        result.scores[window],
        result.alerts[window].len(),
        100.0 * diag.broken_fraction,
        if diag.is_severe(0.8) { " (SEVERE)" } else { "" }
    );
    for (i, cluster) in diag.faulty_clusters.iter().enumerate() {
        let names: Vec<&str> = cluster.iter().map(|&s| model.graph().name(s)).collect();
        println!("faulty cluster {i}: {names:?}");
    }
    println!("suspect sensors:");
    for (sensor, count) in diag.sensor_ranking.iter().take(10) {
        println!(
            "  {} ({count} broken relationships)",
            model.graph().name(*sensor)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn opt_parses_both_forms() {
        let args = s(&["--a=1", "--b", "2", "--flag"]);
        assert_eq!(opt(&args, "a").as_deref(), Some("1"));
        assert_eq!(opt(&args, "b").as_deref(), Some("2"));
        assert_eq!(opt(&args, "missing"), None);
    }

    #[test]
    fn parse_range_accepts_well_formed() {
        assert_eq!(parse_range("3..10").unwrap(), 3..10);
        assert!(parse_range("10..3").is_err());
        assert!(parse_range("5").is_err());
        assert!(parse_range("a..b").is_err());
    }

    #[test]
    fn parse_score_range_distinguishes_top_bucket() {
        let r = parse_score_range("80..90").unwrap();
        assert!(r.contains(80.0) && !r.contains(90.0));
        let top = parse_score_range("90..100").unwrap();
        assert!(top.contains(100.0));
        assert!(parse_score_range("90..120").is_err());
    }

    #[test]
    fn parse_num_defaults_and_rejects() {
        let args = s(&["--n=7"]);
        assert_eq!(parse_num(&args, "n", 1usize).unwrap(), 7);
        assert_eq!(parse_num(&args, "m", 5usize).unwrap(), 5);
        assert!(parse_num(&s(&["--n=x"]), "n", 1usize).is_err());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn missing_required_option_fails() {
        assert!(fit(&s(&["--traces", "nope.json"])).is_err());
        assert!(simulate_plant(&[]).is_err());
    }
}
