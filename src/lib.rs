//! # mdes
//!
//! A Rust implementation of *Mining Multivariate Discrete Event Sequences
//! for Knowledge Discovery and Anomaly Detection* (Nie, Xu, Alter, Chen,
//! Smirni — DSN 2020).
//!
//! The framework views each sensor's discrete event sequence as a "natural
//! language", trains a translation model per ordered sensor pair, and uses
//! translation quality (BLEU) as the strength of the pairwise relationship.
//! The resulting *multivariate relationship graph* supports:
//!
//! * **knowledge discovery** — popular sensors (system-health indicators),
//!   sensor clusters (physical components) via subgraphs and random-walk
//!   community detection;
//! * **anomaly detection** — timestamps where trained relationships break;
//! * **fault diagnosis** — the broken-edge clusters that localize a fault.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `mdes-core` | translators, Algorithms 1 & 2, diagnosis, [`core::Mdes`] facade |
//! | [`lang`] | `mdes-lang` | encryption, words/sentences, vocabularies, discretization |
//! | [`bleu`] | `mdes-bleu` | corpus- and sentence-level BLEU |
//! | [`graph`] | `mdes-graph` | relationship graph, subgraphs, Walktrap, DOT export |
//! | [`nn`] | `mdes-nn` | autodiff, LSTM, seq2seq with attention |
//! | [`ml`] | `mdes-ml` | random forest, one-class SVM, k-means, metrics |
//! | [`synth`] | `mdes-synth` | plant and HDD workload generators |
//! | [`obs`] | `mdes-obs` | tracing spans, counters, latency histograms, JSONL sink |
//! | [`net`] | `mdes-serve` | network serving daemon: framed ingest + text admin planes |
//!
//! # Quickstart
//!
//! ```
//! use mdes::core::{Mdes, MdesConfig};
//! use mdes::lang::{RawTrace, WindowConfig};
//!
//! # fn main() -> Result<(), mdes::core::CoreError> {
//! let mk = |phase: usize| RawTrace::new(
//!     format!("s{phase}"),
//!     (0..600)
//!         .map(|t| if ((t + phase) / 5).is_multiple_of(2) { "on" } else { "off" }.to_owned())
//!         .collect(),
//! );
//! let traces = vec![mk(0), mk(2)];
//! let mut cfg = MdesConfig {
//!     window: WindowConfig { word_len: 4, word_stride: 1, sent_len: 5, sent_stride: 5 },
//!     ..MdesConfig::default()
//! };
//! // Toy sensors translate near-perfectly; widen the validity range so
//! // their models participate (the default is the paper's [80, 90)).
//! cfg.detection.valid_range = mdes::graph::ScoreRange::closed(60.0, 100.0);
//! let mdes = Mdes::fit(&traces, 0..300, 300..450, cfg)?;
//! let result = mdes.detect_range(&traces, 450..600)?;
//! assert!(result.scores.iter().all(|s| (0.0..=1.0).contains(s)));
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for full scenarios (plant monitoring, disk
//! failure prediction, knowledge discovery) and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

#![warn(missing_docs)]

pub use mdes_bleu as bleu;
pub use mdes_core as core;
pub use mdes_graph as graph;
pub use mdes_lang as lang;
pub use mdes_ml as ml;
pub use mdes_nn as nn;
pub use mdes_obs as obs;
pub use mdes_serve as net;
pub use mdes_synth as synth;
