//! Algorithm 2 — Anomaly Detection.
//!
//! At each test timestamp (sentence index) every *valid* pair model — one
//! whose training BLEU `s(i, j)` lies in the user's validity range, best
//! `[80, 90)` per the paper — translates the source sensor's test sentence
//! and scores it against the target's actual sentence with sentence-level
//! BLEU `f(i, j)`. A relationship is *broken* when `f(i, j) < s(i, j)`; the
//! anomaly score `a_t` is the fraction of valid relationships broken at `t`,
//! and the alert set `W_t` lists the broken pairs for diagnosis.

use crate::algorithm1::TrainedGraph;
use crate::error::CoreError;
use mdes_bleu::{sentence_bleu_pre, BleuConfig, RefNgrams};
use mdes_graph::ScoreRange;
use mdes_lang::SentenceSet;
use mdes_nn::InferArena;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a broken relationship is decided from the test score `f(i, j)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum BrokenRule {
    /// The paper's rule: broken when `f < s(i, j)` (the corpus dev BLEU),
    /// minus the configured margin.
    #[default]
    CorpusScore,
    /// Calibrated rule: broken when `f` falls below the pair's stored
    /// development-quantile floor (see
    /// [`GraphBuildConfig::floor_quantile`](crate::algorithm1::GraphBuildConfig)),
    /// minus the margin. Normal-window fluctuation rarely crosses the floor,
    /// so false positives drop (ablation A8).
    DevQuantileFloor,
}

/// Configuration of online detection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DetectionConfig {
    /// Validity range on training scores: only models inside participate.
    pub valid_range: ScoreRange,
    /// Sentence-BLEU configuration for test scoring (smoothed by default).
    pub bleu: BleuConfig,
    /// Extra slack subtracted from the threshold before comparison. Zero
    /// reproduces the paper exactly.
    pub margin: f64,
    /// Threshold rule.
    pub rule: BrokenRule,
    /// Worker threads for the per-model detection loop (0 = number of
    /// available CPUs). Results are byte-identical at any thread count, so
    /// this is purely a scheduling knob; it is not serialized (a restored
    /// model picks up the deserializing host's default).
    #[serde(skip)]
    pub threads: usize,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        Self {
            valid_range: ScoreRange::best_detection(),
            bleu: BleuConfig::sentence(),
            margin: 0.0,
            rule: BrokenRule::CorpusScore,
            threads: 0,
        }
    }
}

impl DetectionConfig {
    /// Replaces the validity range (builder style).
    #[must_use]
    pub fn with_valid_range(mut self, range: ScoreRange) -> Self {
        self.valid_range = range;
        self
    }

    /// Replaces the threshold margin (builder style).
    #[must_use]
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin;
        self
    }

    /// Replaces the broken-relationship rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: BrokenRule) -> Self {
        self.rule = rule;
        self
    }

    /// Replaces the worker thread count (builder style; 0 = all CPUs).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Result of Algorithm 2 over a test segment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectionResult {
    /// Anomaly score `a_t` per test sentence index, each in `[0, 1]`.
    pub scores: Vec<f64>,
    /// Broken sensor pairs `W_t` per test sentence index.
    pub alerts: Vec<Vec<(usize, usize)>>,
    /// Character offset of each sentence within the test segment (timestamp).
    pub starts: Vec<usize>,
    /// Number of valid models that participated.
    pub valid_models: usize,
    /// Fraction of valid models that actually participated, in `[0, 1]`.
    /// [`detect`] always reports `1.0`; [`detect_excluding`] reports less
    /// when dropped sensors removed pairs from the valid set, quantifying
    /// how much evidence backs the scores.
    pub coverage: f64,
}

impl DetectionResult {
    /// Sentence indices whose anomaly score is at least `threshold`.
    pub fn detections(&self, threshold: f64) -> Vec<usize> {
        (0..self.scores.len())
            .filter(|&t| self.scores[t] >= threshold)
            .collect()
    }

    /// The maximum anomaly score observed.
    pub fn max_score(&self) -> f64 {
        self.scores.iter().cloned().fold(0.0, f64::max)
    }
}

/// Runs Algorithm 2 on aligned test sentence sets.
///
/// # Errors
///
/// Returns an error if corpora are empty/misaligned or no model's training
/// score falls inside `cfg.valid_range`.
pub fn detect(
    trained: &TrainedGraph,
    test_sets: &[SentenceSet],
    cfg: &DetectionConfig,
) -> Result<DetectionResult, CoreError> {
    detect_excluding(trained, test_sets, cfg, &[])
}

/// Runs Algorithm 2 with some sensors excluded — the degraded-mode entry
/// point used when sensors have dropped out online.
///
/// `excluded_sensors` are graph node indices (the pipeline's surviving
/// sensor order); every valid pair touching one is removed from the
/// participating set, and the result's `coverage` reports the fraction of
/// valid models that remained. With every valid model excluded a degenerate
/// result is returned (all scores `0.0`, `coverage` `0.0`) rather than an
/// error: upstream dropout detection already explains *why* there is no
/// evidence, and a monitoring loop must keep running through it.
///
/// # Errors
///
/// As [`detect`]: empty/misaligned corpora, or no model in the validity
/// range *before* exclusions ([`CoreError::NoValidModels`] — a broken
/// configuration, not a degraded plant).
pub fn detect_excluding(
    trained: &TrainedGraph,
    test_sets: &[SentenceSet],
    cfg: &DetectionConfig,
    excluded_sensors: &[usize],
) -> Result<DetectionResult, CoreError> {
    detect_with_bank(
        trained,
        test_sets,
        cfg,
        excluded_sensors,
        DetectStrategy::Parallel,
    )
}

/// Just enough of a pair model for thresholding and alert attribution.
pub(crate) struct PairMeta {
    /// Source sensor node index.
    pub src: usize,
    /// Target sensor node index.
    pub dst: usize,
    /// Training (dev corpus BLEU) score `s(i, j)`.
    pub train_score: f64,
    /// Development-quantile floor for [`BrokenRule::DevQuantileFloor`].
    pub dev_floor: f64,
}

/// A source of pair models for Algorithm 2 — the single detection entry
/// point's view of either a training-side [`TrainedGraph`] (tape-backed
/// translators with per-model caches) or a frozen
/// [`GraphSnapshot`](crate::serve::GraphSnapshot) (spec-only translators
/// decoded through a caller-supplied [`InferArena`]).
pub(crate) trait ModelBank: Sync {
    /// Number of graph nodes (aligned corpora expected per detect call).
    fn node_count(&self) -> usize;

    /// Total number of pair models.
    fn model_count(&self) -> usize;

    /// Metadata of model `k`.
    fn meta(&self, k: usize) -> PairMeta;

    /// The precomputed valid-model index, if this bank froze one at build
    /// time; `None` makes [`detect_with_bank`] filter on
    /// `cfg.valid_range` per call.
    fn frozen_valid(&self) -> Option<&[usize]>;

    /// Decodes a batch of source sentences with model `k`. Banks whose
    /// translators carry their own scratch state may ignore `arena`.
    fn decode_batch(
        &self,
        k: usize,
        srcs: &[&[u32]],
        out_len: usize,
        arena: &mut InferArena,
    ) -> Vec<Vec<u32>>;
}

impl ModelBank for TrainedGraph {
    fn node_count(&self) -> usize {
        self.graph.len()
    }

    fn model_count(&self) -> usize {
        self.models().len()
    }

    fn meta(&self, k: usize) -> PairMeta {
        let m = &self.models()[k];
        PairMeta {
            src: m.src,
            dst: m.dst,
            train_score: m.train_score,
            dev_floor: m.dev_floor,
        }
    }

    fn frozen_valid(&self) -> Option<&[usize]> {
        None
    }

    fn decode_batch(
        &self,
        k: usize,
        srcs: &[&[u32]],
        out_len: usize,
        _arena: &mut InferArena,
    ) -> Vec<Vec<u32>> {
        self.models()[k].translate_batch(srcs, out_len)
    }
}

/// How [`detect_with_bank`] schedules the per-model loop. Results are
/// byte-identical across strategies and thread counts: the merge always
/// walks models in participating order.
pub(crate) enum DetectStrategy<'a> {
    /// Crossbeam worker pool (`cfg.threads`, 0 = all CPUs), one private
    /// [`InferArena`] per worker — the batch/offline path.
    Parallel,
    /// The calling thread, decoding through the supplied arena — used by a
    /// serving worker that is already one of many and must not nest pools.
    Serial(&'a mut InferArena),
}

/// The single snapshot-aware Algorithm 2 entry point. [`detect`],
/// [`detect_excluding`], [`Mdes::detect_range`](crate::Mdes::detect_range)
/// and the serving layer ([`crate::serve`]) all route through here.
pub(crate) fn detect_with_bank<B: ModelBank + ?Sized>(
    bank: &B,
    test_sets: &[SentenceSet],
    cfg: &DetectionConfig,
    excluded_sensors: &[usize],
    strategy: DetectStrategy<'_>,
) -> Result<DetectionResult, CoreError> {
    let n = bank.node_count();
    if test_sets.len() != n {
        return Err(CoreError::MisalignedCorpora {
            expected: n,
            found: test_sets.len(),
        });
    }
    let count = test_sets.first().map_or(0, SentenceSet::len);
    if count == 0 {
        return Err(CoreError::EmptyCorpus);
    }
    for s in test_sets {
        if s.len() != count {
            return Err(CoreError::MisalignedCorpora {
                expected: count,
                found: s.len(),
            });
        }
    }
    let valid: Vec<usize> = match bank.frozen_valid() {
        Some(v) => v.to_vec(),
        None => (0..bank.model_count())
            .filter(|&k| cfg.valid_range.contains(bank.meta(k).train_score))
            .collect(),
    };
    if valid.is_empty() {
        return Err(CoreError::NoValidModels);
    }
    let participating: Vec<usize> = valid
        .iter()
        .copied()
        .filter(|&k| {
            let m = bank.meta(k);
            !excluded_sensors.contains(&m.src) && !excluded_sensors.contains(&m.dst)
        })
        .collect();
    let coverage = participating.len() as f64 / valid.len() as f64;
    let mut detect_span = mdes_obs::span("algo2.detect");
    detect_span.field("windows", count);
    detect_span.field("valid", valid.len());
    detect_span.field("participating", participating.len());
    detect_span.field("excluded", excluded_sensors.len());
    mdes_obs::counter("algo2.windows", count as u64);
    mdes_obs::counter("algo2.evaluations", (participating.len() * count) as u64);
    if participating.is_empty() {
        return Ok(DetectionResult {
            scores: vec![0.0; count],
            alerts: vec![Vec::new(); count],
            starts: test_sets[0].starts.clone(),
            valid_models: 0,
            coverage,
        });
    }

    // Every model targeting destination sensor `j` scores its hypotheses
    // against the same test sentences of `j`, so the reference-side n-gram
    // counts are shared: precompute them once per participating destination
    // instead of once per (model, window) BLEU call.
    let mut ref_grams: Vec<Option<Vec<RefNgrams<u32>>>> = vec![None; n];
    for &k in &participating {
        let dst = bank.meta(k).dst;
        if ref_grams[dst].is_none() {
            ref_grams[dst] = Some(
                test_sets[dst]
                    .sentences
                    .iter()
                    .map(|r| RefNgrams::new(r, cfg.bleu.max_n))
                    .collect(),
            );
        }
    }

    // Per-window broken flags of one participating model; pure given the
    // bank, so the scheduling strategy below cannot change results.
    let eval = |w: usize, arena: &mut InferArena| -> Vec<bool> {
        let k = participating[w];
        let m = bank.meta(k);
        let refs = &test_sets[m.dst].sentences;
        let grams = ref_grams[m.dst].as_deref().expect("precomputed above");
        let srcs: Vec<&[u32]> = test_sets[m.src]
            .sentences
            .iter()
            .map(Vec::as_slice)
            .collect();
        // Group windows by required output length so ragged segments still
        // decode in batches (one GEMM per step per group for the NMT
        // family) instead of window-at-a-time. Uniform segments form a
        // single group covering everything.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (t, r) in refs.iter().enumerate() {
            groups.entry(r.len()).or_default().push(t);
        }
        let mut hyps: Vec<Vec<u32>> = vec![Vec::new(); count];
        let decode_timer = mdes_obs::timer("algo2.model_decode_us");
        for (&out_len, rows) in &groups {
            let batch: Vec<&[u32]> = rows.iter().map(|&t| srcs[t]).collect();
            mdes_obs::observe("algo2.batch_size", batch.len() as f64);
            for (&t, h) in rows
                .iter()
                .zip(bank.decode_batch(k, &batch, out_len, arena))
            {
                hyps[t] = h;
            }
        }
        drop(decode_timer);
        let threshold = match cfg.rule {
            BrokenRule::CorpusScore => m.train_score,
            BrokenRule::DevQuantileFloor => m.dev_floor,
        };
        hyps.iter()
            .zip(grams)
            .map(|(hyp, g)| sentence_bleu_pre(hyp, g, &cfg.bleu) < threshold - cfg.margin)
            .collect()
    };

    // Per-model detection is embarrassingly parallel: workers pull model
    // indices from an atomic counter and each fills its own slot with
    // per-window broken flags. The merge below walks slots in
    // `participating` order, so scores, alert order and coverage are
    // byte-identical to a serial run at any thread count.
    let slots: Vec<Option<Vec<bool>>> = match strategy {
        DetectStrategy::Serial(arena) => (0..participating.len())
            .map(|w| Some(eval(w, arena)))
            .collect(),
        DetectStrategy::Parallel => {
            let slots: Mutex<Vec<Option<Vec<bool>>>> = Mutex::new(vec![None; participating.len()]);
            let next = AtomicUsize::new(0);
            let threads = if cfg.threads == 0 {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            } else {
                cfg.threads
            };
            crossbeam::scope(|scope| {
                for _ in 0..threads.max(1) {
                    scope.spawn(|_| {
                        let mut arena = InferArena::new();
                        loop {
                            let w = next.fetch_add(1, Ordering::Relaxed);
                            if w >= participating.len() {
                                break;
                            }
                            let broken = eval(w, &mut arena);
                            slots.lock()[w] = Some(broken);
                        }
                    });
                }
            })
            .expect("detection worker panicked");
            slots.into_inner()
        }
    };

    let mut alerts: Vec<Vec<(usize, usize)>> = vec![Vec::new(); count];
    for (w, &k) in participating.iter().enumerate() {
        let m = bank.meta(k);
        let broken = slots[w].as_ref().expect("worker filled every slot");
        for (t, &b) in broken.iter().enumerate() {
            if b {
                alerts[t].push((m.src, m.dst));
            }
        }
    }
    let scores: Vec<f64> = alerts
        .iter()
        .map(|b| b.len() as f64 / participating.len() as f64)
        .collect();
    let broken: usize = alerts.iter().map(Vec::len).sum();
    detect_span.field("broken", broken);
    mdes_obs::counter("algo2.broken", broken as u64);
    Ok(DetectionResult {
        scores,
        alerts,
        starts: test_sets[0].starts.clone(),
        valid_models: participating.len(),
        coverage,
    })
}

/// One detection request of a cross-session batch: aligned test sentence
/// sets plus the graph node indices to exclude (dropped sensors).
pub(crate) struct DetectJob<'a> {
    /// Aligned test sentence sets, one per graph node.
    pub test_sets: &'a [SentenceSet],
    /// Graph node indices excluded from the participating set.
    pub excluded_sensors: &'a [usize],
}

/// Runs Algorithm 2 over many jobs against one shared bank, batching decode
/// work *across* jobs: every window that needs model `k` — no matter which
/// job it came from — is gathered, grouped by `(source length, output
/// length)` and decoded in one `decode_batch` call. For the NMT family that
/// turns B same-shape decode steps from B stream sessions into one GEMM per
/// step instead of B, which is where serving throughput goes at high stream
/// counts.
///
/// Result `j` is exactly what
/// [`detect_with_bank`]`(bank, jobs[j].test_sets, cfg, jobs[j].excluded_sensors, _)`
/// would return — bit-identical, because every GEMM output element is an
/// independent accumulation chain (batch invariance, pinned by
/// `mdes-nn`'s `quantized_matmul_is_batch_invariant` and the serving
/// parity tests), and the per-job merge below walks models in the same
/// participating order. Per-job validation errors (misaligned corpora, no
/// valid models) land in that job's slot without poisoning the others.
/// Per-model output of the batched pool: one `(job index, broken flags)`
/// entry for every session that pulled the model.
type ModelFlags = Vec<(usize, Vec<bool>)>;

pub(crate) fn detect_many_with_bank<B: ModelBank + ?Sized>(
    bank: &B,
    jobs: &[DetectJob<'_>],
    cfg: &DetectionConfig,
    threads: usize,
) -> Vec<Result<DetectionResult, CoreError>> {
    let n = bank.node_count();
    let valid: Vec<usize> = match bank.frozen_valid() {
        Some(v) => v.to_vec(),
        None => (0..bank.model_count())
            .filter(|&k| cfg.valid_range.contains(bank.meta(k).train_score))
            .collect(),
    };

    /// Per-job state that survives into the batched decode phase.
    struct Prep {
        count: usize,
        participating: Vec<usize>,
        coverage: f64,
        ref_grams: Vec<Option<Vec<RefNgrams<u32>>>>,
    }

    let mut results: Vec<Option<Result<DetectionResult, CoreError>>> =
        jobs.iter().map(|_| None).collect();
    let mut spans: Vec<Option<mdes_obs::Span>> = jobs.iter().map(|_| None).collect();
    let mut preps: Vec<Option<Prep>> = jobs.iter().map(|_| None).collect();

    for (j, job) in jobs.iter().enumerate() {
        // Same validation, in the same order, as `detect_with_bank`.
        if job.test_sets.len() != n {
            results[j] = Some(Err(CoreError::MisalignedCorpora {
                expected: n,
                found: job.test_sets.len(),
            }));
            continue;
        }
        let count = job.test_sets.first().map_or(0, SentenceSet::len);
        if count == 0 {
            results[j] = Some(Err(CoreError::EmptyCorpus));
            continue;
        }
        if let Some(s) = job.test_sets.iter().find(|s| s.len() != count) {
            results[j] = Some(Err(CoreError::MisalignedCorpora {
                expected: count,
                found: s.len(),
            }));
            continue;
        }
        if valid.is_empty() {
            results[j] = Some(Err(CoreError::NoValidModels));
            continue;
        }
        let participating: Vec<usize> = valid
            .iter()
            .copied()
            .filter(|&k| {
                let m = bank.meta(k);
                !job.excluded_sensors.contains(&m.src) && !job.excluded_sensors.contains(&m.dst)
            })
            .collect();
        let coverage = participating.len() as f64 / valid.len() as f64;
        let mut span = mdes_obs::span("algo2.detect");
        span.field("windows", count);
        span.field("valid", valid.len());
        span.field("participating", participating.len());
        span.field("excluded", job.excluded_sensors.len());
        mdes_obs::counter("algo2.windows", count as u64);
        mdes_obs::counter("algo2.evaluations", (participating.len() * count) as u64);
        if participating.is_empty() {
            results[j] = Some(Ok(DetectionResult {
                scores: vec![0.0; count],
                alerts: vec![Vec::new(); count],
                starts: job.test_sets[0].starts.clone(),
                valid_models: 0,
                coverage,
            }));
            continue;
        }
        let mut ref_grams: Vec<Option<Vec<RefNgrams<u32>>>> = vec![None; n];
        for &k in &participating {
            let dst = bank.meta(k).dst;
            if ref_grams[dst].is_none() {
                ref_grams[dst] = Some(
                    job.test_sets[dst]
                        .sentences
                        .iter()
                        .map(|r| RefNgrams::new(r, cfg.bleu.max_n))
                        .collect(),
                );
            }
        }
        spans[j] = Some(span);
        preps[j] = Some(Prep {
            count,
            participating,
            coverage,
            ref_grams,
        });
    }

    // One work item per *distinct* model across all live jobs: this is the
    // cross-session fan-in. The map is ordered so work assignment (and the
    // batch-size observations) are deterministic.
    let mut model_jobs: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (j, prep) in preps.iter().enumerate() {
        if let Some(p) = prep {
            for &k in &p.participating {
                model_jobs.entry(k).or_default().push(j);
            }
        }
    }
    let work: Vec<(usize, Vec<usize>)> = model_jobs.into_iter().collect();

    // Evaluates one model against every job that needs it: per-job broken
    // flags, decoded through shared `(src_len, out_len)` batches. Pure
    // given the bank, so scheduling cannot change results.
    let eval = |k: usize, js: &[usize], arena: &mut InferArena| -> Vec<(usize, Vec<bool>)> {
        let m = bank.meta(k);
        // Group windows of every job by decode shape. Fixed window configs
        // (the online case) put all B jobs' windows in the same group.
        let mut groups: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
        let mut hyps: BTreeMap<usize, Vec<Vec<u32>>> = BTreeMap::new();
        for &j in js {
            let sets = jobs[j].test_sets;
            for (t, r) in sets[m.dst].sentences.iter().enumerate() {
                let src_len = sets[m.src].sentences[t].len();
                groups.entry((src_len, r.len())).or_default().push((j, t));
            }
            hyps.insert(
                j,
                vec![Vec::new(); preps[j].as_ref().expect("live job").count],
            );
        }
        let decode_timer = mdes_obs::timer("algo2.model_decode_us");
        for ((_, out_len), entries) in &groups {
            let batch: Vec<&[u32]> = entries
                .iter()
                .map(|&(j, t)| jobs[j].test_sets[m.src].sentences[t].as_slice())
                .collect();
            mdes_obs::observe("algo2.batch_size", batch.len() as f64);
            for (&(j, t), h) in entries
                .iter()
                .zip(bank.decode_batch(k, &batch, *out_len, arena))
            {
                hyps.get_mut(&j).expect("inserted above")[t] = h;
            }
        }
        drop(decode_timer);
        let threshold = match cfg.rule {
            BrokenRule::CorpusScore => m.train_score,
            BrokenRule::DevQuantileFloor => m.dev_floor,
        };
        js.iter()
            .map(|&j| {
                let grams = preps[j].as_ref().expect("live job").ref_grams[m.dst]
                    .as_deref()
                    .expect("precomputed above");
                let flags = hyps[&j]
                    .iter()
                    .zip(grams)
                    .map(|(hyp, g)| sentence_bleu_pre(hyp, g, &cfg.bleu) < threshold - cfg.margin)
                    .collect();
                (j, flags)
            })
            .collect()
    };

    // Model-parallel over distinct models, exactly like `detect_with_bank`'s
    // pool — but each pull now serves every session wanting that model.
    let slots: Mutex<Vec<Option<ModelFlags>>> = Mutex::new(vec![None; work.len()]);
    let next = AtomicUsize::new(0);
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    crossbeam::scope(|scope| {
        for _ in 0..threads.clamp(1, work.len().max(1)) {
            scope.spawn(|_| {
                let mut arena = InferArena::new();
                loop {
                    let w = next.fetch_add(1, Ordering::Relaxed);
                    if w >= work.len() {
                        break;
                    }
                    let (k, js) = &work[w];
                    let flags = eval(*k, js, &mut arena);
                    slots.lock()[w] = Some(flags);
                }
            });
        }
    })
    .expect("detection worker panicked");

    // Scatter the per-(model, job) flags, then merge each job in its own
    // participating order — the same walk `detect_with_bank` does.
    let mut flags_by_job: Vec<BTreeMap<usize, Vec<bool>>> =
        jobs.iter().map(|_| BTreeMap::new()).collect();
    for (w, slot) in slots.into_inner().into_iter().enumerate() {
        let k = work[w].0;
        for (j, flags) in slot.expect("worker filled every slot") {
            flags_by_job[j].insert(k, flags);
        }
    }
    for (j, prep) in preps.into_iter().enumerate() {
        let Some(p) = prep else { continue };
        let mut alerts: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p.count];
        for &k in &p.participating {
            let m = bank.meta(k);
            let broken = &flags_by_job[j][&k];
            for (t, &b) in broken.iter().enumerate() {
                if b {
                    alerts[t].push((m.src, m.dst));
                }
            }
        }
        let scores: Vec<f64> = alerts
            .iter()
            .map(|b| b.len() as f64 / p.participating.len() as f64)
            .collect();
        let broken: usize = alerts.iter().map(Vec::len).sum();
        if let Some(span) = spans[j].as_mut() {
            span.field("broken", broken);
        }
        mdes_obs::counter("algo2.broken", broken as u64);
        results[j] = Some(Ok(DetectionResult {
            scores,
            alerts,
            starts: jobs[j].test_sets[0].starts.clone(),
            valid_models: p.participating.len(),
            coverage: p.coverage,
        }));
    }
    results
        .into_iter()
        .map(|r| r.expect("every job resolved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::{build_graph, GraphBuildConfig};
    use mdes_lang::{LanguagePipeline, RawTrace, WindowConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two phase-locked sensors; the test half optionally decouples them.
    fn scenario(decouple_after: Option<usize>) -> (Vec<f64>, usize) {
        let n = 900;
        let mut rng = StdRng::seed_from_u64(5);
        let mk = |phase: usize, decouple: Option<usize>| -> RawTrace {
            let mut extra = 0usize;
            let events = (0..n)
                .map(|t| {
                    if Some(t) == decouple {
                        extra = 3; // sudden phase slip
                    }
                    let state = ((t + phase + extra) / 5) % 2;
                    if state == 0 { "on" } else { "off" }.to_owned()
                })
                .collect();
            RawTrace::new(format!("p{phase}"), events)
        };
        let traces = vec![mk(0, None), mk(2, decouple_after), mk(4, None), {
            // An unrelated noisy sensor to fill the graph.
            let events = (0..n)
                .map(|_| if rng.gen::<f64>() < 0.5 { "a" } else { "b" }.to_owned())
                .collect();
            RawTrace::new("noise", events)
        }];
        let wcfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..300, wcfg).expect("fit");
        let train = p.encode_segment(&traces, 0..300).expect("train");
        let dev = p.encode_segment(&traces, 300..500).expect("dev");
        let test = p.encode_segment(&traces, 500..900).expect("test");
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        // Use a wide validity range so the strong pairs participate.
        let cfg = DetectionConfig {
            valid_range: ScoreRange::closed(60.0, 100.0),
            ..DetectionConfig::default()
        };
        let result = detect(&trained, &test, &cfg).expect("detect");
        (result.scores, result.valid_models)
    }

    #[test]
    fn normal_test_data_scores_low() {
        let (scores, valid) = scenario(None);
        assert!(valid > 0);
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(mean < 0.35, "normal-period mean anomaly score {mean}");
    }

    #[test]
    fn decoupling_raises_scores_after_the_event() {
        // Decouple at sample 700 = test-segment offset 200 = sentence 10.
        let (scores, _) = scenario(Some(700));
        let before: f64 = scores[..8].iter().sum::<f64>() / 8.0;
        let after: f64 = scores[11..].iter().sum::<f64>() / (scores.len() - 11) as f64;
        assert!(
            after > before + 0.2,
            "anomaly should raise score: before {before}, after {after}"
        );
    }

    #[test]
    fn alerts_identify_the_decoupled_sensor() {
        let (_, _) = scenario(None); // warm path
                                     // Rebuild with alerts inspection.
        let n = 900;
        let mk = |phase: usize, slip: bool| -> RawTrace {
            let events = (0..n)
                .map(|t| {
                    let extra = if slip && t >= 700 { 3 } else { 0 };
                    let state = ((t + phase + extra) / 5) % 2;
                    if state == 0 { "on" } else { "off" }.to_owned()
                })
                .collect();
            RawTrace::new(format!("p{phase}{slip}"), events)
        };
        let traces = vec![mk(0, false), mk(2, true), mk(4, false)];
        let wcfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..300, wcfg).expect("fit");
        let train = p.encode_segment(&traces, 0..300).expect("train");
        let dev = p.encode_segment(&traces, 300..500).expect("dev");
        let test = p.encode_segment(&traces, 500..900).expect("test");
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        let cfg = DetectionConfig {
            valid_range: ScoreRange::closed(60.0, 100.0),
            ..DetectionConfig::default()
        };
        let result = detect(&trained, &test, &cfg).expect("detect");
        // After the slip (sentence 10+), broken pairs should involve sensor 1.
        let late_alerts: Vec<&(usize, usize)> = result.alerts[11..].iter().flatten().collect();
        assert!(
            !late_alerts.is_empty(),
            "expected broken pairs after the slip"
        );
        let involving_1 = late_alerts
            .iter()
            .filter(|(s, d)| *s == 1 || *d == 1)
            .count();
        assert!(
            involving_1 * 2 >= late_alerts.len(),
            "sensor 1 should dominate alerts: {involving_1}/{}",
            late_alerts.len()
        );
    }

    #[test]
    fn scores_bounded_and_detections_thresholded() {
        let (scores, _) = scenario(Some(700));
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        let r = DetectionResult {
            scores: scores.clone(),
            alerts: vec![Vec::new(); scores.len()],
            starts: (0..scores.len()).collect(),
            valid_models: 1,
            coverage: 1.0,
        };
        let hits = r.detections(0.5);
        assert!(hits.iter().all(|&t| scores[t] >= 0.5));
        assert!(r.max_score() <= 1.0);
    }

    #[test]
    fn no_valid_models_is_an_error() {
        let n = 600;
        let mk = |phase: usize| -> RawTrace {
            let events = (0..n)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect();
            RawTrace::new(format!("p{phase}"), events)
        };
        let traces = vec![mk(0), mk(2)];
        let wcfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..300, wcfg).expect("fit");
        let train = p.encode_segment(&traces, 0..300).expect("train");
        let dev = p.encode_segment(&traces, 300..450).expect("dev");
        let test = p.encode_segment(&traces, 450..600).expect("test");
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        // Perfectly coupled sensors score ~100, outside [0, 10).
        let cfg = DetectionConfig {
            valid_range: ScoreRange::half_open(0.0, 10.0),
            ..DetectionConfig::default()
        };
        assert!(matches!(
            detect(&trained, &test, &cfg),
            Err(CoreError::NoValidModels)
        ));
    }

    #[test]
    fn detect_many_matches_individual_detects_bitwise() {
        let n = 600;
        let mk = |phase: usize| -> RawTrace {
            let events = (0..n)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect();
            RawTrace::new(format!("p{phase}"), events)
        };
        let traces = vec![mk(0), mk(2), mk(4)];
        let wcfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..300, wcfg).expect("fit");
        let train = p.encode_segment(&traces, 0..300).expect("train");
        let dev = p.encode_segment(&traces, 300..450).expect("dev");
        let a = p.encode_segment(&traces, 450..525).expect("test a");
        let b = p.encode_segment(&traces, 500..575).expect("test b");
        let c = p.encode_segment(&traces, 525..600).expect("test c");
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        let cfg = DetectionConfig {
            valid_range: ScoreRange::closed(60.0, 100.0),
            ..DetectionConfig::default()
        };
        let excl = [1usize];
        let jobs = [
            DetectJob {
                test_sets: &a,
                excluded_sensors: &[],
            },
            DetectJob {
                test_sets: &b,
                excluded_sensors: &excl,
            },
            DetectJob {
                test_sets: &c,
                excluded_sensors: &[],
            },
            // A misaligned job must fail alone without poisoning the batch.
            DetectJob {
                test_sets: &a[..2],
                excluded_sensors: &[],
            },
        ];
        for threads in [1, 4] {
            let many = detect_many_with_bank(&trained, &jobs, &cfg, threads);
            assert_eq!(
                many[0].as_ref().expect("job a"),
                &detect(&trained, &a, &cfg).expect("lone a")
            );
            assert_eq!(
                many[1].as_ref().expect("job b"),
                &detect_excluding(&trained, &b, &cfg, &excl).expect("lone b")
            );
            assert_eq!(
                many[2].as_ref().expect("job c"),
                &detect(&trained, &c, &cfg).expect("lone c")
            );
            assert!(matches!(many[3], Err(CoreError::MisalignedCorpora { .. })));
        }
    }

    #[test]
    fn excluding_sensors_shrinks_coverage_and_never_errors() {
        let n = 600;
        let mk = |phase: usize| -> RawTrace {
            let events = (0..n)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect();
            RawTrace::new(format!("p{phase}"), events)
        };
        let traces = vec![mk(0), mk(2), mk(4)];
        let wcfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..300, wcfg).expect("fit");
        let train = p.encode_segment(&traces, 0..300).expect("train");
        let dev = p.encode_segment(&traces, 300..450).expect("dev");
        let test = p.encode_segment(&traces, 450..600).expect("test");
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        let cfg = DetectionConfig {
            valid_range: ScoreRange::closed(60.0, 100.0),
            ..DetectionConfig::default()
        };

        let full = detect(&trained, &test, &cfg).expect("full");
        assert_eq!(full.coverage, 1.0);
        assert_eq!(full.valid_models, 6);

        // Dropping sensor 1 removes the 4 pairs touching it: 2 of 6 remain.
        let partial = detect_excluding(&trained, &test, &cfg, &[1]).expect("partial");
        assert_eq!(partial.valid_models, 2);
        assert!((partial.coverage - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(partial.scores.len(), full.scores.len());
        assert!(partial
            .alerts
            .iter()
            .flatten()
            .all(|&(s, d)| s != 1 && d != 1));

        // Dropping everything degrades to a zero-evidence result, not an
        // error: the monitoring loop must survive a fully dark plant.
        let dark = detect_excluding(&trained, &test, &cfg, &[0, 1, 2]).expect("dark");
        assert_eq!(dark.coverage, 0.0);
        assert_eq!(dark.valid_models, 0);
        assert!(dark.scores.iter().all(|&s| s == 0.0));
        assert!(dark.alerts.iter().all(Vec::is_empty));
    }
}
