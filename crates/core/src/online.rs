//! Streaming (online) detection: feed one multivariate sample per tick and
//! receive a detection every time a sentence window completes.
//!
//! [`Mdes::detect_range`] scores a batch of historical samples;
//! [`OnlineMonitor`] is the production-facing equivalent of the paper's
//! *online testing phase* (Fig. 1): it buffers just enough trailing samples
//! to form one sentence per sensor and runs Algorithm 2 on each completed
//! window, so detections arrive with the granularity the sentence stride
//! configures (every 20 minutes with the paper's plant settings).
//!
//! Since the serving split, the monitor is a convenience wrapper over the
//! real machinery in [`crate::serve`]: it freezes the fitted model into a
//! [`GraphSnapshot`](crate::serve::GraphSnapshot), starts a private
//! [`ServingEngine`](crate::serve::ServingEngine) and opens one
//! [`StreamSession`](crate::serve::StreamSession). Monitoring many streams —
//! or hot-swapping a retrained model under a live stream — is what the
//! engine API is for; use it directly.
//!
//! # Degraded input
//!
//! Real telemetry is imperfect: records go missing, sensors die silently or
//! freeze on one value. The monitor absorbs all of it instead of erroring:
//!
//! * [`OnlineMonitor::push_opt`] accepts `None` per sensor (a missing
//!   record), substituting the [`MISSING_RECORD`](mdes_lang::MISSING_RECORD)
//!   sentinel — which encodes to the unknown letter, like any garbled record
//!   the alphabet has never seen;
//! * per-sensor counters track consecutive missing (and, optionally, stuck)
//!   samples; a sensor crossing the [`DegradationConfig`] limits is marked
//!   *dropped*, its pairs are excluded from detection, and each emitted
//!   [`OnlineDetection`] reports the surviving evidence as `coverage` plus
//!   the dropped original sensor indices;
//! * a dropped sensor that resumes delivering records is readmitted
//!   automatically once its counters reset.

use crate::error::CoreError;
use crate::pipeline::Mdes;
use crate::serve::{GraphSnapshot, ServingEngine, StreamSession};
use serde::{Deserialize, Serialize};

/// When an online sensor is considered *dropped* and excluded from
/// detection until it recovers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Consecutive missing records (`None` pushed via
    /// [`OnlineMonitor::push_opt`]) after which a sensor counts as dropped.
    pub missing_limit: usize,
    /// Consecutive *identical* records after which a sensor counts as
    /// stuck-at and dropped; `None` (the default) disables stuck detection,
    /// because legitimately quiet sensors — a valve that stays closed all
    /// shift — would otherwise be flagged.
    pub stuck_limit: Option<usize>,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self {
            missing_limit: 3,
            stuck_limit: None,
        }
    }
}

/// One emitted detection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineDetection {
    /// Index of the sample (0-based, counted from monitor creation) at which
    /// the window completed.
    pub sample_index: usize,
    /// Anomaly score `a_t` of the completed window.
    pub score: f64,
    /// Broken sensor pairs of the completed window.
    pub alerts: Vec<(usize, usize)>,
    /// Fraction of valid pair models that produced this detection, in
    /// `[0, 1]`; `1.0` when no sensor is dropped, `0.0` when dropout has
    /// silenced every valid pair (then `score` is `0.0` by construction and
    /// carries no evidence).
    pub coverage: f64,
    /// Original (push-order) indices of sensors currently dropped.
    pub dropped_sensors: Vec<usize>,
}

/// A stateful streaming detector wrapping a fitted [`Mdes`].
///
/// Samples are pushed in the *original trace order used at fit time*
/// (including sensors that were filtered out as constant — their values are
/// simply ignored).
///
/// This is single-stream sugar over [`crate::serve`]: construction freezes
/// the model once, and every push delegates to a private engine. The frozen
/// path is bit-identical to scoring against the training-state graph.
#[derive(Clone, Debug)]
pub struct OnlineMonitor {
    mdes: Mdes,
    engine: ServingEngine,
    session: StreamSession,
}

impl OnlineMonitor {
    /// Wraps a fitted model. `width` is the number of sensors per pushed
    /// sample — the length of the trace array used at fit time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WidthMismatch`] if `width` is smaller than the
    /// largest original sensor index the model references.
    pub fn try_new(mdes: Mdes, width: usize) -> Result<Self, CoreError> {
        let engine = ServingEngine::new(GraphSnapshot::freeze(&mdes));
        let session = engine.open_session(width)?;
        Ok(Self {
            mdes,
            engine,
            session,
        })
    }

    /// Replaces the dropout-detection thresholds (builder style).
    #[must_use]
    pub fn with_degradation(mut self, degradation: DegradationConfig) -> Self {
        self.session = self.session.with_degradation(degradation);
        self
    }

    /// The wrapped model (full training state, not the frozen artifact).
    pub fn mdes(&self) -> &Mdes {
        &self.mdes
    }

    /// The serving engine this monitor pushes through. Exposed so a caller
    /// that outgrew the single-stream wrapper can publish retrained
    /// snapshots or open further sessions without rebuilding.
    pub fn engine(&self) -> &ServingEngine {
        &self.engine
    }

    /// Samples needed before the first detection can be emitted.
    pub fn warmup(&self) -> usize {
        self.session.warmup()
    }

    /// Original indices of sensors currently considered dropped.
    pub fn dropped_sensors(&self) -> Vec<usize> {
        self.session.dropped_sensors()
    }

    /// Consumes one multivariate sample (one record per sensor, in the
    /// original fit order). Returns a detection when this sample completes a
    /// sentence window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MisalignedCorpora`] when the sample width is
    /// wrong, and propagates detection errors (e.g. no valid models).
    pub fn push(&mut self, records: &[String]) -> Result<Option<OnlineDetection>, CoreError> {
        self.engine.push(&mut self.session, records)
    }

    /// Consumes one possibly-incomplete multivariate sample: `None` marks a
    /// sensor that delivered no record this tick. Missing records enter the
    /// window as the [`MISSING_RECORD`](mdes_lang::MISSING_RECORD) sentinel
    /// (encoding to the unknown letter); sensors missing or stuck past the
    /// [`DegradationConfig`] limits are excluded from detection until they
    /// recover, and the emitted detection's `coverage` shrinks accordingly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MisalignedCorpora`] when the sample width is
    /// wrong, and propagates detection errors (e.g. no valid models).
    pub fn push_opt(
        &mut self,
        records: &[Option<String>],
    ) -> Result<Option<OnlineDetection>, CoreError> {
        self.engine.push_opt(&mut self.session, records)
    }
}

impl Mdes {
    /// Converts the fitted model into a streaming monitor over samples of
    /// `width` sensors (the original trace count used at fit time).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WidthMismatch`] if `width` is smaller than the
    /// model's largest original sensor index.
    pub fn try_into_online_monitor(self, width: usize) -> Result<OnlineMonitor, CoreError> {
        OnlineMonitor::try_new(self, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MdesConfig;
    use mdes_graph::ScoreRange;
    use mdes_lang::{RawTrace, WindowConfig};

    fn square(name: &str, n: usize, phase: usize) -> RawTrace {
        RawTrace::new(
            name,
            (0..n)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    }

    fn fitted() -> (Mdes, Vec<RawTrace>) {
        let traces = vec![
            square("a", 700, 0),
            square("b", 700, 2),
            square("c", 700, 4),
        ];
        let mut cfg = MdesConfig {
            window: WindowConfig {
                word_len: 4,
                word_stride: 1,
                sent_len: 5,
                sent_stride: 5,
            },
            ..MdesConfig::default()
        };
        cfg.detection.valid_range = ScoreRange::closed(60.0, 100.0);
        let m = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit");
        (m, traces)
    }

    fn monitor(m: Mdes, width: usize) -> OnlineMonitor {
        m.try_into_online_monitor(width).expect("monitor")
    }

    #[test]
    fn streaming_matches_batch_detection() {
        let (m, traces) = fitted();
        let batch = m.detect_range(&traces, 450..700).expect("batch");
        let mut monitor = monitor(m, 3);
        let mut streamed: Vec<f64> = Vec::new();
        for t in 450..700 {
            let sample: Vec<String> = traces.iter().map(|tr| tr.events[t].clone()).collect();
            if let Some(d) = monitor.push(&sample).expect("push") {
                assert_eq!(d.coverage, 1.0);
                assert!(d.dropped_sensors.is_empty());
                streamed.push(d.score);
            }
        }
        assert_eq!(streamed.len(), batch.scores.len());
        for (s, b) in streamed.iter().zip(&batch.scores) {
            assert!((s - b).abs() < 1e-12, "streamed {s} vs batch {b}");
        }
    }

    #[test]
    fn fallible_constructor_accepts_a_valid_width() {
        let (m, traces) = fitted();
        let mut monitor = m.try_into_online_monitor(3).expect("width 3 is valid");
        for t in 450..480 {
            let sample: Vec<String> = traces.iter().map(|tr| tr.events[t].clone()).collect();
            monitor.push(&sample).expect("push");
        }
    }

    #[test]
    fn warmup_then_periodic_emissions() {
        let (m, traces) = fitted();
        let warmup = {
            let cfg = *m.language().config();
            cfg.min_samples()
        };
        let mut monitor = monitor(m, 3);
        assert_eq!(monitor.warmup(), warmup);
        let mut emissions = Vec::new();
        for t in 0..(warmup + 11) {
            let sample: Vec<String> = traces.iter().map(|tr| tr.events[t].clone()).collect();
            if monitor.push(&sample).expect("push").is_some() {
                emissions.push(t);
            }
        }
        // First emission exactly at warmup - 1; then every step samples.
        assert_eq!(emissions[0], warmup - 1);
        assert_eq!(emissions[1], warmup - 1 + 5);
    }

    #[test]
    fn wrong_width_is_an_error() {
        let (m, _) = fitted();
        let mut monitor = monitor(m, 3);
        let r = monitor.push(&["on".to_owned()]);
        assert!(matches!(
            r,
            Err(CoreError::MisalignedCorpora {
                expected: 3,
                found: 1
            })
        ));
    }

    #[test]
    fn narrow_width_is_a_typed_error_not_a_panic() {
        let (m, _) = fitted();
        assert!(matches!(
            m.try_into_online_monitor(1),
            Err(CoreError::WidthMismatch {
                width: 1,
                needed: 3
            })
        ));
    }

    #[test]
    fn alerts_stream_with_scores() {
        let (m, traces) = fitted();
        let mut monitor = monitor(m, 3);
        for t in 450..600 {
            // Decouple sensor b mid-stream.
            let sample: Vec<String> = traces
                .iter()
                .enumerate()
                .map(|(k, tr)| {
                    if k == 1 && t >= 520 {
                        tr.events[t + 3].clone() // phase slip
                    } else {
                        tr.events[t].clone()
                    }
                })
                .collect();
            if let Some(d) = monitor.push(&sample).expect("push") {
                assert!((0.0..=1.0).contains(&d.score));
                if d.sample_index > 90 && d.score > 0.5 {
                    assert!(!d.alerts.is_empty());
                }
            }
        }
    }

    #[test]
    fn dropout_shrinks_coverage_then_recovery_restores_it() {
        let (m, traces) = fitted();
        let mut monitor = monitor(m, 3);
        let mut coverages: Vec<(usize, f64, Vec<usize>)> = Vec::new();
        for t in 450..700 {
            // Sensor 1 goes silent for samples 520..570, then recovers.
            let sample: Vec<Option<String>> = traces
                .iter()
                .enumerate()
                .map(|(k, tr)| {
                    if k == 1 && (520..570).contains(&t) {
                        None
                    } else {
                        Some(tr.events[t].clone())
                    }
                })
                .collect();
            if let Some(d) = monitor.push_opt(&sample).expect("never a hard error") {
                coverages.push((t, d.coverage, d.dropped_sensors));
            }
        }
        let during: Vec<&(usize, f64, Vec<usize>)> = coverages
            .iter()
            .filter(|(t, _, _)| (525..570).contains(t))
            .collect();
        assert!(!during.is_empty(), "detections keep flowing during dropout");
        for (_, cov, dropped) in &during {
            assert!(*cov < 1.0, "dropout must reduce coverage, got {cov}");
            assert_eq!(dropped, &vec![1]);
        }
        let after: Vec<&(usize, f64, Vec<usize>)> =
            coverages.iter().filter(|(t, _, _)| *t >= 575).collect();
        assert!(!after.is_empty());
        for (_, cov, dropped) in &after {
            assert_eq!(*cov, 1.0, "recovery must restore coverage");
            assert!(dropped.is_empty());
        }
    }

    #[test]
    fn garbled_records_degrade_scores_not_the_process() {
        let (m, traces) = fitted();
        let mut monitor = monitor(m, 3);
        for t in 450..600 {
            let sample: Vec<String> = traces
                .iter()
                .enumerate()
                .map(|(k, tr)| {
                    if k == 2 && t % 7 == 0 {
                        "!!corrupt!!".to_owned() // never in the alphabet
                    } else {
                        tr.events[t].clone()
                    }
                })
                .collect();
            let d = monitor.push(&sample).expect("garbage is not an error");
            if let Some(d) = d {
                assert!((0.0..=1.0).contains(&d.score));
            }
        }
    }

    #[test]
    fn stuck_sensor_is_dropped_when_enabled() {
        let (m, traces) = fitted();
        let mut monitor = monitor(m, 3).with_degradation(DegradationConfig {
            missing_limit: 3,
            stuck_limit: Some(12),
        });
        let mut saw_drop = false;
        for t in 450..600 {
            let sample: Vec<String> = traces
                .iter()
                .enumerate()
                .map(|(k, tr)| {
                    if k == 0 && t >= 500 {
                        "on".to_owned() // frozen output
                    } else {
                        tr.events[t].clone()
                    }
                })
                .collect();
            if let Some(d) = monitor.push(&sample).expect("push") {
                if t >= 520 {
                    assert!(d.dropped_sensors.contains(&0), "stuck sensor flagged");
                    assert!(d.coverage < 1.0);
                    saw_drop = true;
                }
            }
        }
        assert!(saw_drop);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// The monitor must absorb arbitrary record strings, missing
            /// records and wrong widths without panicking: every push is
            /// `Ok` or a typed `CoreError`.
            #[test]
            fn push_never_panics(
                samples in proptest::collection::vec(
                    proptest::collection::vec("[a-z!?0-9]{0,6}", 0..5),
                    1..60,
                ),
                missing_mask in proptest::collection::vec(0u8..4, 1..60),
            ) {
                let (m, _) = fitted();
                let mut monitor = m.try_into_online_monitor(3).expect("monitor");
                for (s, mask) in samples.iter().zip(&missing_mask) {
                    let opt: Vec<Option<String>> = s
                        .iter()
                        .enumerate()
                        .map(|(i, r)| {
                            if i == *mask as usize { None } else { Some(r.clone()) }
                        })
                        .collect();
                    match monitor.push_opt(&opt) {
                        Ok(_) => {}
                        Err(CoreError::MisalignedCorpora { expected, found }) => {
                            prop_assert_eq!(expected, 3);
                            prop_assert_eq!(found, s.len());
                        }
                        Err(e) => {
                            // Any other failure must still be a typed error.
                            prop_assert!(!e.to_string().is_empty());
                        }
                    }
                }
            }
        }
    }
}
