//! Streaming (online) detection: feed one multivariate sample per tick and
//! receive a detection every time a sentence window completes.
//!
//! [`Mdes::detect_range`] scores a batch of historical samples;
//! [`OnlineMonitor`] is the production-facing equivalent of the paper's
//! *online testing phase* (Fig. 1): it buffers just enough trailing samples
//! to form one sentence per sensor and runs Algorithm 2 on each completed
//! window, so detections arrive with the granularity the sentence stride
//! configures (every 20 minutes with the paper's plant settings).

use crate::algorithm2::detect;
use crate::error::CoreError;
use crate::pipeline::Mdes;
use mdes_lang::RawTrace;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One emitted detection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineDetection {
    /// Index of the sample (0-based, counted from monitor creation) at which
    /// the window completed.
    pub sample_index: usize,
    /// Anomaly score `a_t` of the completed window.
    pub score: f64,
    /// Broken sensor pairs of the completed window.
    pub alerts: Vec<(usize, usize)>,
}

/// A stateful streaming detector wrapping a fitted [`Mdes`].
///
/// Samples are pushed in the *original trace order used at fit time*
/// (including sensors that were filtered out as constant — their values are
/// simply ignored).
#[derive(Clone, Debug)]
pub struct OnlineMonitor {
    mdes: Mdes,
    /// Trailing samples per original sensor index.
    buffers: Vec<VecDeque<String>>,
    /// Samples required to form one sentence.
    window: usize,
    /// Samples between consecutive sentence completions.
    step: usize,
    /// Total samples consumed.
    seen: usize,
    /// Number of sensors expected per pushed sample.
    width: usize,
}

impl OnlineMonitor {
    /// Wraps a fitted model. `width` is the number of sensors per pushed
    /// sample — the length of the trace array used at fit time.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the largest original sensor index
    /// the model references.
    pub fn new(mdes: Mdes, width: usize) -> Self {
        let needed = mdes
            .language()
            .languages()
            .iter()
            .map(|l| l.source_index + 1)
            .max()
            .unwrap_or(0);
        assert!(
            width >= needed,
            "width {width} smaller than the model's largest source index {needed}"
        );
        let cfg = *mdes.language().config();
        Self {
            buffers: vec![VecDeque::new(); width],
            window: cfg.min_samples(),
            step: cfg.sent_stride * cfg.word_stride,
            mdes,
            seen: 0,
            width,
        }
    }

    /// The wrapped model.
    pub fn mdes(&self) -> &Mdes {
        &self.mdes
    }

    /// Samples needed before the first detection can be emitted.
    pub fn warmup(&self) -> usize {
        self.window
    }

    /// Consumes one multivariate sample (one record per sensor, in the
    /// original fit order). Returns a detection when this sample completes a
    /// sentence window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MisalignedCorpora`] when the sample width is
    /// wrong, and propagates detection errors (e.g. no valid models).
    pub fn push(&mut self, records: &[String]) -> Result<Option<OnlineDetection>, CoreError> {
        if records.len() != self.width {
            return Err(CoreError::MisalignedCorpora {
                expected: self.width,
                found: records.len(),
            });
        }
        for (buf, rec) in self.buffers.iter_mut().zip(records) {
            buf.push_back(rec.clone());
            if buf.len() > self.window {
                buf.pop_front();
            }
        }
        self.seen += 1;
        if self.seen < self.window || !(self.seen - self.window).is_multiple_of(self.step) {
            return Ok(None);
        }

        // The trailing buffer is exactly one sentence per sensor.
        let traces: Vec<RawTrace> = self
            .buffers
            .iter()
            .enumerate()
            .map(|(i, buf)| RawTrace::new(format!("b{i}"), buf.iter().cloned().collect()))
            .collect();
        let sets = self
            .mdes
            .language()
            .encode_segment(&traces, 0..self.window)?;
        let result = detect(self.mdes.trained(), &sets, &self.mdes.config().detection)?;
        Ok(Some(OnlineDetection {
            sample_index: self.seen - 1,
            score: result.scores[0],
            alerts: result.alerts.into_iter().next().unwrap_or_default(),
        }))
    }
}

impl Mdes {
    /// Converts the fitted model into a streaming monitor over samples of
    /// `width` sensors (the original trace count used at fit time).
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the model's largest original
    /// sensor index.
    pub fn into_online_monitor(self, width: usize) -> OnlineMonitor {
        OnlineMonitor::new(self, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MdesConfig;
    use mdes_graph::ScoreRange;
    use mdes_lang::WindowConfig;

    fn square(name: &str, n: usize, phase: usize) -> RawTrace {
        RawTrace::new(
            name,
            (0..n)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    }

    fn fitted() -> (Mdes, Vec<RawTrace>) {
        let traces = vec![
            square("a", 700, 0),
            square("b", 700, 2),
            square("c", 700, 4),
        ];
        let mut cfg = MdesConfig {
            window: WindowConfig {
                word_len: 4,
                word_stride: 1,
                sent_len: 5,
                sent_stride: 5,
            },
            ..MdesConfig::default()
        };
        cfg.detection.valid_range = ScoreRange::closed(60.0, 100.0);
        let m = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit");
        (m, traces)
    }

    #[test]
    fn streaming_matches_batch_detection() {
        let (m, traces) = fitted();
        let batch = m.detect_range(&traces, 450..700).expect("batch");
        let mut monitor = m.into_online_monitor(3);
        let mut streamed: Vec<f64> = Vec::new();
        for t in 450..700 {
            let sample: Vec<String> = traces.iter().map(|tr| tr.events[t].clone()).collect();
            if let Some(d) = monitor.push(&sample).expect("push") {
                streamed.push(d.score);
            }
        }
        assert_eq!(streamed.len(), batch.scores.len());
        for (s, b) in streamed.iter().zip(&batch.scores) {
            assert!((s - b).abs() < 1e-12, "streamed {s} vs batch {b}");
        }
    }

    #[test]
    fn warmup_then_periodic_emissions() {
        let (m, traces) = fitted();
        let warmup = {
            let cfg = *m.language().config();
            cfg.min_samples()
        };
        let mut monitor = m.into_online_monitor(3);
        assert_eq!(monitor.warmup(), warmup);
        let mut emissions = Vec::new();
        for t in 0..(warmup + 11) {
            let sample: Vec<String> = traces.iter().map(|tr| tr.events[t].clone()).collect();
            if monitor.push(&sample).expect("push").is_some() {
                emissions.push(t);
            }
        }
        // First emission exactly at warmup - 1; then every step samples.
        assert_eq!(emissions[0], warmup - 1);
        assert_eq!(emissions[1], warmup - 1 + 5);
    }

    #[test]
    fn wrong_width_is_an_error() {
        let (m, _) = fitted();
        let mut monitor = m.into_online_monitor(3);
        let r = monitor.push(&["on".to_owned()]);
        assert!(matches!(
            r,
            Err(CoreError::MisalignedCorpora {
                expected: 3,
                found: 1
            })
        ));
    }

    #[test]
    fn alerts_stream_with_scores() {
        let (m, traces) = fitted();
        let mut monitor = m.into_online_monitor(3);
        for t in 450..600 {
            // Decouple sensor b mid-stream.
            let sample: Vec<String> = traces
                .iter()
                .enumerate()
                .map(|(k, tr)| {
                    if k == 1 && t >= 520 {
                        tr.events[t + 3].clone() // phase slip
                    } else {
                        tr.events[t].clone()
                    }
                })
                .collect();
            if let Some(d) = monitor.push(&sample).expect("push") {
                assert!((0.0..=1.0).contains(&d.score));
                if d.sample_index > 90 && d.score > 0.5 {
                    assert!(!d.alerts.is_empty());
                }
            }
        }
    }
}
