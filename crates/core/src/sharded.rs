//! Sharded Algorithm 1 — stage two of the scalable sweep.
//!
//! [`build_graph_sharded`] trains an explicit pair list (typically the
//! survivors of [`prescreen_pairs`](crate::prescreen::prescreen_pairs)) in
//! independently checkpointed partitions:
//!
//! * **Streamed corpora** — each shard encodes only the sensors its pairs
//!   touch, via [`LanguagePipeline::encode_sensor_segment`], and drops them
//!   before the next shard starts. Peak corpus memory is bounded by the
//!   shard's sensor union, not the fleet; the [`ShardedSweepReport`]
//!   measures both so callers can assert the bound.
//! * **Per-shard checkpoints** — with a checkpoint directory configured,
//!   shard `k` persists to `shard_{k:05}.mdck` using the MDCK
//!   prefix-recovery format. A killed run resumes shard by shard; completed
//!   shards replay from disk without retraining.
//! * **Fingerprint-gated resume** — every shard file's fingerprint covers
//!   the shard's exact pair slice (via
//!   [`sweep_fingerprint`](crate::algorithm1)), so a checkpoint written
//!   over a *different prescreen selection* (or different sharding) is
//!   rejected instead of silently resuming stale models.
//!
//! Because each pair trains deterministically in isolation, a resumed
//! sharded run produces a graph byte-identical to an uninterrupted one, and
//! a sharded run over all pairs equals a monolithic [`build_graph`]
//! (modulo per-model wall-clock timings).

use crate::algorithm1::{
    assemble_graph, sweep_fingerprint, sweep_pairs, validate_alignment_sparse, GraphBuildConfig,
    TrainedGraph,
};
use crate::checkpoint::CheckpointConfig;
use crate::error::CoreError;
use mdes_lang::{LanguagePipeline, RawTrace, SentenceSet};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Configuration of a sharded sweep.
#[derive(Clone, Debug)]
pub struct ShardedSweepConfig {
    /// Per-pair training configuration (translator, BLEU, retries, failure
    /// policy, threads). Its `checkpoint` field is ignored — sharded sweeps
    /// derive one checkpoint file per shard from `checkpoint_dir` instead.
    pub build: GraphBuildConfig,
    /// Pairs per shard (clamped to at least 1). Smaller shards bound memory
    /// and recover more granularly; larger shards amortize encoding.
    pub pairs_per_shard: usize,
    /// Directory for per-shard MDCK checkpoint files (`shard_00000.mdck`,
    /// …), created if absent. `None` disables checkpointing.
    pub checkpoint_dir: Option<String>,
    /// Within-shard checkpoint cadence (persist after every `n` completed
    /// pairs), as [`CheckpointConfig::every`].
    pub checkpoint_every: usize,
}

impl Default for ShardedSweepConfig {
    fn default() -> Self {
        Self {
            build: GraphBuildConfig::default(),
            pairs_per_shard: 512,
            checkpoint_dir: None,
            checkpoint_every: 32,
        }
    }
}

/// Measurements from one [`build_graph_sharded`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedSweepReport {
    /// Number of shards swept.
    pub shards: usize,
    /// Total pairs requested (after canonical sort/dedup).
    pub pairs_total: usize,
    /// Pairs restored from shard checkpoints instead of retrained.
    pub resumed: usize,
    /// Largest per-shard resident corpus footprint, in bytes.
    pub peak_shard_corpus_bytes: usize,
    /// Largest per-shard sensor-union size.
    pub peak_shard_sensors: usize,
    /// Combined corpus bytes of every distinct sensor any shard touched —
    /// what a monolithic sweep would have held resident at once.
    pub fleet_corpus_bytes: usize,
    /// Distinct sensors across all shards.
    pub distinct_sensors: usize,
}

/// Trains an explicit ordered-pair list shard by shard and assembles the
/// relationship graph.
///
/// `pairs` is canonicalized (sorted by `(src, dst)`, duplicates removed)
/// before sharding, so shard contents — and therefore checkpoint
/// fingerprints — do not depend on the caller's ordering.
///
/// # Errors
///
/// Returns [`CoreError::TooFewSensors`] for fewer than two surviving
/// sensors, [`CoreError::NoValidModels`] for an empty pair list (an
/// over-aggressive prescreen), corpus/encoding errors per shard, and the
/// same failure-policy and checkpoint errors as [`build_graph`]
/// (`crate::algorithm1::build_graph`) — including
/// [`CoreError::Checkpoint`] when a shard file's fingerprint belongs to a
/// different pair selection.
///
/// # Panics
///
/// Panics if any pair references an out-of-range sensor index or is a
/// self-pair — programmer errors, not runtime conditions.
pub fn build_graph_sharded(
    pipeline: &LanguagePipeline,
    traces: &[RawTrace],
    train: Range<usize>,
    dev: Range<usize>,
    pairs: &[(usize, usize)],
    cfg: &ShardedSweepConfig,
) -> Result<(TrainedGraph, ShardedSweepReport), CoreError> {
    let n = pipeline.sensor_count();
    if n < 2 {
        return Err(CoreError::TooFewSensors { available: n });
    }
    if pairs.is_empty() {
        return Err(CoreError::NoValidModels);
    }
    for &(i, j) in pairs {
        assert!(
            i < n && j < n && i != j,
            "sharded pair ({i} -> {j}) invalid for {n} sensors"
        );
    }
    let mut pairs: Vec<(usize, usize)> = pairs.to_vec();
    pairs.sort_unstable();
    pairs.dedup();

    if let Some(dir) = &cfg.checkpoint_dir {
        std::fs::create_dir_all(dir).map_err(|e| CoreError::Checkpoint {
            path: dir.clone(),
            detail: format!("cannot create checkpoint directory: {e}"),
        })?;
    }

    let per_shard = cfg.pairs_per_shard.max(1);
    let shard_count = pairs.len().div_ceil(per_shard);
    let mut report = ShardedSweepReport {
        shards: shard_count,
        pairs_total: pairs.len(),
        ..ShardedSweepReport::default()
    };
    // Corpus bytes per distinct sensor, accumulated across shards to
    // estimate what a monolithic sweep would hold resident at once.
    let mut sensor_bytes: BTreeMap<usize, usize> = BTreeMap::new();

    let mut slots = Vec::with_capacity(pairs.len());
    for (k, shard) in pairs.chunks(per_shard).enumerate() {
        let sensors: BTreeSet<usize> = shard.iter().flat_map(|&(i, j)| [i, j]).collect();
        let mut shard_span = mdes_obs::span("algo1.shard");
        shard_span.field("shard", k);
        shard_span.field("pairs", shard.len());
        shard_span.field("sensors", sensors.len());

        // Stream in only this shard's sensors; dropped at end of iteration.
        let mut train_sets: Vec<Option<SentenceSet>> = (0..n).map(|_| None).collect();
        let mut dev_sets: Vec<Option<SentenceSet>> = (0..n).map(|_| None).collect();
        let mut shard_bytes = 0usize;
        for &s in &sensors {
            let t = pipeline.encode_sensor_segment(traces, train.clone(), s)?;
            let d = pipeline.encode_sensor_segment(traces, dev.clone(), s)?;
            let bytes = t.approx_bytes() + d.approx_bytes();
            shard_bytes += bytes;
            sensor_bytes.insert(s, bytes);
            train_sets[s] = Some(t);
            dev_sets[s] = Some(d);
        }
        report.peak_shard_corpus_bytes = report.peak_shard_corpus_bytes.max(shard_bytes);
        report.peak_shard_sensors = report.peak_shard_sensors.max(sensors.len());
        shard_span.field("corpus_bytes", shard_bytes);

        let train_refs: Vec<Option<&SentenceSet>> = train_sets.iter().map(Option::as_ref).collect();
        let dev_refs: Vec<Option<&SentenceSet>> = dev_sets.iter().map(Option::as_ref).collect();
        validate_alignment_sparse(&train_refs)?;
        validate_alignment_sparse(&dev_refs)?;

        let mut shard_cfg = cfg.build.clone();
        shard_cfg.checkpoint = cfg.checkpoint_dir.as_ref().map(|dir| CheckpointConfig {
            path: format!("{dir}/shard_{k:05}.mdck"),
            every: cfg.checkpoint_every.max(1),
        });
        // The fingerprint covers this shard's exact pair slice: any change
        // to the prescreen selection or the sharding re-slices the list and
        // invalidates the file.
        let fingerprint = sweep_fingerprint(pipeline, &shard_cfg, shard);
        let out = sweep_pairs(
            pipeline,
            &train_refs,
            &dev_refs,
            shard,
            &shard_cfg,
            fingerprint,
        )?;
        report.resumed += out.resumed;
        shard_span.field("resumed", out.resumed);
        slots.extend(out.slots);
        mdes_obs::counter("algo1.shards_completed", 1);
    }

    report.distinct_sensors = sensor_bytes.len();
    report.fleet_corpus_bytes = sensor_bytes.values().sum();
    let trained = assemble_graph(pipeline, slots, pairs.len(), cfg.build.policy)?;
    Ok((trained, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::build_graph;
    use mdes_lang::WindowConfig;

    fn toggling(name: &str, n: usize, period: usize, phase: usize) -> RawTrace {
        RawTrace::new(
            name,
            (0..n)
                .map(|t| {
                    if ((t + phase) / period).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    }

    fn setup() -> (LanguagePipeline, Vec<RawTrace>) {
        let traces = vec![
            toggling("a", 600, 5, 0),
            toggling("b", 600, 5, 2),
            toggling("c", 600, 7, 0),
            toggling("d", 600, 11, 3),
        ];
        let cfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..300, cfg).expect("fit");
        (p, traces)
    }

    fn all_pairs(n: usize) -> Vec<(usize, usize)> {
        (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|(i, j)| i != j)
            .collect()
    }

    /// Serialized graph with the nondeterministic `runtime_secs` stripped.
    fn canonical_json(g: &TrainedGraph) -> String {
        let mut s = serde_json::to_string(g).expect("serialize");
        while let Some(i) = s.find("\"runtime_secs\":") {
            let end = s[i..].find(',').map(|d| i + d + 1).expect("field follows");
            s.replace_range(i..end, "");
        }
        s
    }

    #[test]
    fn sharded_over_all_pairs_equals_monolithic() {
        let (p, traces) = setup();
        let train = p.encode_segment(&traces, 0..300).expect("train");
        let dev = p.encode_segment(&traces, 300..450).expect("dev");
        let mono = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("mono");

        let cfg = ShardedSweepConfig {
            pairs_per_shard: 5, // 12 pairs -> 3 uneven shards
            ..ShardedSweepConfig::default()
        };
        let (sharded, report) =
            build_graph_sharded(&p, &traces, 0..300, 300..450, &all_pairs(4), &cfg)
                .expect("sharded");
        assert_eq!(canonical_json(&mono), canonical_json(&sharded));
        assert_eq!(report.shards, 3);
        assert_eq!(report.pairs_total, 12);
        assert_eq!(report.resumed, 0);
        assert_eq!(report.distinct_sensors, 4);
        assert!(report.peak_shard_corpus_bytes <= report.fleet_corpus_bytes);
        assert!(report.peak_shard_sensors <= 4);
    }

    #[test]
    fn shard_memory_is_bounded_by_shard_sensor_union() {
        let (p, traces) = setup();
        // One pair per shard: each shard holds exactly two sensors' corpora.
        let cfg = ShardedSweepConfig {
            pairs_per_shard: 1,
            ..ShardedSweepConfig::default()
        };
        let (_, report) = build_graph_sharded(&p, &traces, 0..300, 300..450, &all_pairs(4), &cfg)
            .expect("sharded");
        assert_eq!(report.peak_shard_sensors, 2);
        // Two sensors of four: peak must sit well under the fleet total
        // (sensor corpora here are near-uniform in size).
        assert!(
            report.peak_shard_corpus_bytes * 3 < report.fleet_corpus_bytes * 2,
            "peak {} vs fleet {}",
            report.peak_shard_corpus_bytes,
            report.fleet_corpus_bytes
        );
    }

    #[test]
    fn empty_pair_list_is_rejected() {
        let (p, traces) = setup();
        let r = build_graph_sharded(
            &p,
            &traces,
            0..300,
            300..450,
            &[],
            &ShardedSweepConfig::default(),
        );
        assert!(matches!(r, Err(CoreError::NoValidModels)));
    }

    #[test]
    fn pair_order_and_duplicates_are_canonicalized() {
        let (p, traces) = setup();
        let cfg = ShardedSweepConfig {
            pairs_per_shard: 2,
            ..ShardedSweepConfig::default()
        };
        let a = build_graph_sharded(
            &p,
            &traces,
            0..300,
            300..450,
            &[(2, 1), (0, 1), (1, 2), (0, 1)],
            &cfg,
        )
        .expect("scrambled");
        let b = build_graph_sharded(
            &p,
            &traces,
            0..300,
            300..450,
            &[(0, 1), (1, 2), (2, 1)],
            &cfg,
        )
        .expect("sorted");
        assert_eq!(canonical_json(&a.0), canonical_json(&b.0));
        assert_eq!(a.1.pairs_total, 3);
    }
}
