//! Sweep checkpointing: crash-safe persistence of partially-built graphs.
//!
//! An Algorithm 1 sweep over `M` sensors trains `M·(M-1)` pair models; at
//! the paper's 128-sensor scale that is an hours-long job whose death (OOM
//! kill, host reboot, deploy) previously lost every completed pair. This
//! module persists completed [`PairModel`]s (and quarantined pairs) so
//! [`build_graph`](crate::algorithm1::build_graph) can resume a sweep from
//! where it died, producing a graph identical to an uninterrupted run —
//! each pair is trained deterministically in isolation, so it does not
//! matter whether its model came from the checkpoint or a fresh run.
//!
//! # File format (version 2)
//!
//! A checkpoint is a header followed by one frame per completed pair:
//!
//! ```text
//! header:
//!   magic        4 bytes   b"MDCK"
//!   version      4 bytes   u32 LE, currently 2
//!   fingerprint  8 bytes   u64 LE, sweep-input fingerprint
//! frame (repeated):
//!   kind         1 byte    0 = PairModel, 1 = QuarantinedPair
//!   length       8 bytes   u64 LE, payload byte count
//!   checksum     8 bytes   u64 LE, FNV-1a of the payload
//!   payload      N bytes   JSON-serialized record
//! ```
//!
//! Version 1 stored all pairs in a single checksummed JSON payload, which
//! made every truncation fatal: a mid-write kill (or a torn page on a
//! non-atomic filesystem) lost *all* completed pairs even though only the
//! tail was damaged. With per-pair frames, [`read_checkpoint`] recovers the
//! longest valid frame prefix — a truncated or bit-rotted trailing frame
//! drops only the pairs at and after the damage, and the recovery is
//! reported through `mdes-obs` (`checkpoint.recovery` event,
//! `checkpoint.frames_recovered` / `checkpoint.frames_dropped` counters).
//! Only a corrupt header (bad magic, short file, unknown version) or an
//! undecodable checksum-valid payload — a codec bug, not damage — aborts
//! the resume; a fingerprint mismatch is still rejected by `build_graph`.
//!
//! Writes go to a `<path>.tmp` sibling first and are moved into place with
//! an atomic rename, so a crash mid-write never corrupts an existing
//! checkpoint on POSIX filesystems; frame recovery covers the rest.
//!
//! The same framed, checksummed, atomically-renamed layout also persists
//! frozen serving artifacts ([`write_snapshot`] / [`read_snapshot`], magic
//! `b"MDSN"`) — with the opposite damage policy: a sweep checkpoint
//! salvages its longest valid prefix, but a serving artifact is deployed
//! whole or not at all.

use crate::algorithm1::{PairModel, QuarantinedPair};
use crate::error::CoreError;
use crate::serve::GraphSnapshot;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"MDCK";
const VERSION: u32 = 2;
const HEADER_LEN: usize = 4 + 4 + 8;
/// kind + length + checksum.
const FRAME_HEADER_LEN: usize = 1 + 8 + 8;

const KIND_MODEL: u8 = 0;
const KIND_QUARANTINED: u8 = 1;

const SNAP_MAGIC: &[u8; 4] = b"MDSN";
/// Current snapshot layout. Version 2 payloads may carry a `quant`
/// calibration record (f16/int8 weight encodings); version 1 payloads are
/// identical minus that key, so the reader accepts both.
const SNAP_VERSION: u32 = 2;
const SNAP_MIN_VERSION: u32 = 1;
/// Serving artifacts reuse the frame layout with their own kind tag.
const KIND_SNAPSHOT: u8 = 2;

/// When and where [`build_graph`](crate::algorithm1::build_graph) persists
/// sweep progress.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Checkpoint file path. An existing, valid checkpoint at this path is
    /// resumed from; the file is rewritten as the sweep progresses.
    pub path: String,
    /// Persist after every `every` completed pairs (clamped to ≥ 1). The
    /// final state is always written when the sweep finishes.
    pub every: usize,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every 16 completed pairs.
    pub fn new(path: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            every: 16,
        }
    }
}

/// The persisted state of a partially-completed sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointData {
    /// Fingerprint of the sweep inputs (sensor names + build configuration);
    /// a mismatch on resume means the checkpoint belongs to a different
    /// sweep and must not be reused.
    pub fingerprint: u64,
    /// Completed pair models.
    pub models: Vec<PairModel>,
    /// Pairs quarantined so far (under a `Degrade` policy).
    pub quarantined: Vec<QuarantinedPair>,
}

/// FNV-1a 64-bit hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn ckpt_err(path: &Path, detail: impl Into<String>) -> CoreError {
    CoreError::Checkpoint {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

fn push_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Atomically writes `data` to `path` (tmp file + rename), with the framed
/// layout described in the [module docs](self).
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] on serialization or I/O failure.
pub fn write_checkpoint(path: &Path, data: &CheckpointData) -> Result<(), CoreError> {
    let mut span = mdes_obs::span("checkpoint.write");
    let mut framed = Vec::with_capacity(HEADER_LEN);
    framed.extend_from_slice(MAGIC);
    framed.extend_from_slice(&VERSION.to_le_bytes());
    framed.extend_from_slice(&data.fingerprint.to_le_bytes());
    for model in &data.models {
        let payload = serde_json::to_string(model)
            .map_err(|e| ckpt_err(path, format!("serialize model failed: {e}")))?;
        push_frame(&mut framed, KIND_MODEL, payload.as_bytes());
    }
    for pair in &data.quarantined {
        let payload = serde_json::to_string(pair)
            .map_err(|e| ckpt_err(path, format!("serialize quarantined failed: {e}")))?;
        push_frame(&mut framed, KIND_QUARANTINED, payload.as_bytes());
    }
    span.field("bytes", framed.len());
    span.field("frames", data.models.len() + data.quarantined.len());

    let tmp = path.with_extension("tmp");
    let mut file =
        fs::File::create(&tmp).map_err(|e| ckpt_err(path, format!("create tmp failed: {e}")))?;
    file.write_all(&framed)
        .map_err(|e| ckpt_err(path, format!("write failed: {e}")))?;
    file.sync_all()
        .map_err(|e| ckpt_err(path, format!("sync failed: {e}")))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| ckpt_err(path, format!("rename failed: {e}")))
}

/// Reads a checkpoint written by [`write_checkpoint`], recovering the
/// longest valid frame prefix.
///
/// A trailing frame truncated by a mid-write kill — or corrupted by bit rot
/// — ends the scan: everything before it is returned, the damaged tail is
/// dropped, and a `checkpoint.recovery` event (plus
/// `checkpoint.frames_recovered` / `checkpoint.frames_dropped` counters) is
/// emitted through `mdes-obs`.
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] only if the file cannot be read, the
/// 16-byte header is malformed (bad magic, short file, unknown version), or
/// a checksum-valid payload fails to decode — the latter is a codec bug,
/// not file damage, so recovery would hide it.
pub fn read_checkpoint(path: &Path) -> Result<CheckpointData, CoreError> {
    let mut span = mdes_obs::span("checkpoint.read");
    let bytes = fs::read(path).map_err(|e| ckpt_err(path, format!("read failed: {e}")))?;
    if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
        return Err(ckpt_err(path, "not a checkpoint file (bad magic)"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(ckpt_err(path, format!("unsupported version {version}")));
    }
    let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));

    let mut data = CheckpointData {
        fingerprint,
        models: Vec::new(),
        quarantined: Vec::new(),
    };
    let mut offset = HEADER_LEN;
    let mut damaged: Option<&'static str> = None;
    while offset < bytes.len() {
        let Some(frame) = bytes.get(offset..offset + FRAME_HEADER_LEN) else {
            damaged = Some("truncated frame header");
            break;
        };
        let kind = frame[0];
        let len = u64::from_le_bytes(frame[1..9].try_into().expect("8 bytes")) as usize;
        let checksum = u64::from_le_bytes(frame[9..17].try_into().expect("8 bytes"));
        let start = offset + FRAME_HEADER_LEN;
        let Some(payload) = bytes.get(start..start.saturating_add(len)) else {
            damaged = Some("truncated frame payload");
            break;
        };
        if fnv1a(payload) != checksum {
            damaged = Some("frame checksum mismatch");
            break;
        }
        // From here the frame is intact; a decode failure is a codec bug and
        // must surface, not be silently recovered past.
        let text = std::str::from_utf8(payload)
            .map_err(|_| ckpt_err(path, "frame payload is not valid UTF-8"))?;
        match kind {
            KIND_MODEL => data.models.push(
                serde_json::from_str(text)
                    .map_err(|e| ckpt_err(path, format!("model frame parse failed: {e}")))?,
            ),
            KIND_QUARANTINED => data.quarantined.push(
                serde_json::from_str(text)
                    .map_err(|e| ckpt_err(path, format!("quarantined frame parse failed: {e}")))?,
            ),
            other => return Err(ckpt_err(path, format!("unknown frame kind {other}"))),
        }
        offset = start + len;
    }

    let frames = data.models.len() + data.quarantined.len();
    span.field("frames", frames);
    span.field("recovered", damaged.is_some());
    if let Some(reason) = damaged {
        let dropped_bytes = bytes.len() - offset;
        mdes_obs::counter("checkpoint.frames_recovered", frames as u64);
        mdes_obs::counter("checkpoint.frames_dropped", 1);
        mdes_obs::event(
            "checkpoint.recovery",
            &[
                ("reason", reason.into()),
                ("recovered_frames", frames.into()),
                ("dropped_bytes", dropped_bytes.into()),
            ],
        );
    }
    Ok(data)
}

/// Atomically writes a frozen serving artifact to `path` (tmp file +
/// rename): a 16-byte header (`b"MDSN"`, version 2, 8 reserved bytes)
/// followed by one checksummed frame holding the JSON-serialized
/// [`GraphSnapshot`]. Version 2 adds the optional quantization calibration
/// record; version-1 artifacts (f32-only, no `quant` key) remain readable.
///
/// Unlike sweep checkpoints, a serving artifact is all-or-nothing — there
/// is no meaningful prefix to recover — so [`read_snapshot`] rejects any
/// damage outright instead of salvaging.
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] on serialization or I/O failure.
pub fn write_snapshot(path: &Path, snapshot: &GraphSnapshot) -> Result<(), CoreError> {
    let mut span = mdes_obs::span("checkpoint.snapshot_write");
    let framed = snapshot_to_bytes(snapshot).map_err(|e| match e {
        CoreError::Checkpoint { detail, .. } => ckpt_err(path, detail),
        other => other,
    })?;
    span.field("bytes", framed.len());

    let tmp = path.with_extension("tmp");
    let mut file =
        fs::File::create(&tmp).map_err(|e| ckpt_err(path, format!("create tmp failed: {e}")))?;
    file.write_all(&framed)
        .map_err(|e| ckpt_err(path, format!("write failed: {e}")))?;
    file.sync_all()
        .map_err(|e| ckpt_err(path, format!("sync failed: {e}")))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| ckpt_err(path, format!("rename failed: {e}")))
}

/// Reads a serving artifact written by [`write_snapshot`].
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] if the file cannot be read or shows
/// any damage (bad magic, unknown version, truncation, checksum mismatch):
/// a partially-valid serving artifact must never be deployed, so there is
/// no prefix recovery here.
pub fn read_snapshot(path: &Path) -> Result<GraphSnapshot, CoreError> {
    let mut span = mdes_obs::span("checkpoint.snapshot_read");
    let bytes = fs::read(path).map_err(|e| ckpt_err(path, format!("read failed: {e}")))?;
    span.field("bytes", bytes.len());
    snapshot_from_bytes(&bytes).map_err(|e| match e {
        CoreError::Checkpoint { detail, .. } => ckpt_err(path, detail),
        other => other,
    })
}

/// Encodes a frozen serving artifact into the `MDSN` byte layout used by
/// [`write_snapshot`] — for transports other than the filesystem (e.g. a
/// snapshot uploaded over a daemon's admin plane).
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] (with an empty path) on serialization
/// failure.
pub fn snapshot_to_bytes(snapshot: &GraphSnapshot) -> Result<Vec<u8>, CoreError> {
    let payload = serde_json::to_string(snapshot)
        .map_err(|e| ckpt_err(Path::new(""), format!("serialize snapshot failed: {e}")))?;
    let mut framed = Vec::with_capacity(HEADER_LEN + FRAME_HEADER_LEN + payload.len());
    framed.extend_from_slice(SNAP_MAGIC);
    framed.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    framed.extend_from_slice(&0u64.to_le_bytes());
    push_frame(&mut framed, KIND_SNAPSHOT, payload.as_bytes());
    Ok(framed)
}

/// Decodes a serving artifact from the `MDSN` byte layout; the in-memory
/// counterpart of [`read_snapshot`], with the same all-or-nothing damage
/// policy.
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] (with an empty path) on any damage:
/// bad magic, unknown version, truncation, or checksum mismatch.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<GraphSnapshot, CoreError> {
    let path = Path::new("");
    if bytes.len() < HEADER_LEN || &bytes[..4] != SNAP_MAGIC {
        return Err(ckpt_err(path, "not a snapshot file (bad magic)"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if !(SNAP_MIN_VERSION..=SNAP_VERSION).contains(&version) {
        return Err(ckpt_err(
            path,
            format!("unsupported snapshot version {version}"),
        ));
    }
    let Some(frame) = bytes.get(HEADER_LEN..HEADER_LEN + FRAME_HEADER_LEN) else {
        return Err(ckpt_err(path, "truncated snapshot frame header"));
    };
    if frame[0] != KIND_SNAPSHOT {
        return Err(ckpt_err(path, format!("unknown frame kind {}", frame[0])));
    }
    let len = u64::from_le_bytes(frame[1..9].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(frame[9..17].try_into().expect("8 bytes"));
    let start = HEADER_LEN + FRAME_HEADER_LEN;
    let Some(payload) = bytes.get(start..start.saturating_add(len)) else {
        return Err(ckpt_err(path, "truncated snapshot payload"));
    };
    if fnv1a(payload) != checksum {
        return Err(ckpt_err(path, "snapshot checksum mismatch"));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| ckpt_err(path, "snapshot payload is not valid UTF-8"))?;
    serde_json::from_str(text).map_err(|e| ckpt_err(path, format!("snapshot parse failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mdes_ckpt_test_{}_{tag}.ckpt", std::process::id()))
    }

    fn quarantined(src: usize, dst: usize) -> QuarantinedPair {
        QuarantinedPair {
            src,
            dst,
            error: "training diverged: non-finite loss at step 4".to_owned(),
            retries: 2,
        }
    }

    fn sample() -> CheckpointData {
        CheckpointData {
            fingerprint: 0xDEAD_BEEF,
            models: Vec::new(),
            quarantined: vec![quarantined(1, 2), quarantined(3, 4), quarantined(5, 6)],
        }
    }

    #[test]
    fn roundtrip_preserves_data() {
        let path = tmp_path("roundtrip");
        write_checkpoint(&path, &sample()).expect("write");
        let back = read_checkpoint(&path).expect("read");
        assert_eq!(back.fingerprint, 0xDEAD_BEEF);
        assert_eq!(back.quarantined, sample().quarantined);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_trailing_frame_recovers_prefix() {
        let path = tmp_path("corrupt");
        write_checkpoint(&path, &sample()).expect("write");
        let mut bytes = std::fs::read(&path).expect("read bytes");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        let back = read_checkpoint(&path).expect("recovering read");
        assert_eq!(back.quarantined, sample().quarantined[..2].to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_final_frame_recovers_prefix() {
        let path = tmp_path("truncated");
        write_checkpoint(&path, &sample()).expect("write");
        let bytes = std::fs::read(&path).expect("read bytes");
        // Kill mid-write at every possible length: each prefix must either
        // recover some number of whole frames or (below 16 bytes) reject the
        // header — never panic, never error past the header.
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).expect("rewrite");
            let result = read_checkpoint(&path);
            if cut < HEADER_LEN {
                assert!(matches!(result, Err(CoreError::Checkpoint { .. })));
            } else {
                let back = result.expect("recovering read");
                assert!(back.quarantined.len() <= 3);
                assert_eq!(
                    back.quarantined,
                    sample().quarantined[..back.quarantined.len()]
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_version_and_missing_file_are_rejected() {
        let path = tmp_path("magic");
        std::fs::write(&path, b"definitely not a checkpoint").expect("write");
        assert!(matches!(
            read_checkpoint(&path),
            Err(CoreError::Checkpoint { .. })
        ));
        // A version-1 file (old single-payload format) must be rejected, not
        // misparsed as frames.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &v1).expect("write");
        assert!(matches!(
            read_checkpoint(&path),
            Err(CoreError::Checkpoint { .. })
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CoreError::Checkpoint { .. })
        ));
    }

    #[test]
    fn empty_body_is_a_valid_empty_checkpoint() {
        let path = tmp_path("empty");
        write_checkpoint(
            &path,
            &CheckpointData {
                fingerprint: 7,
                models: Vec::new(),
                quarantined: Vec::new(),
            },
        )
        .expect("write");
        let back = read_checkpoint(&path).expect("read");
        assert_eq!(back.fingerprint, 7);
        assert!(back.models.is_empty() && back.quarantined.is_empty());
        std::fs::remove_file(&path).ok();
    }

    fn frozen_snapshot() -> GraphSnapshot {
        use crate::pipeline::{Mdes, MdesConfig};
        use mdes_lang::{RawTrace, WindowConfig};
        let mk = |phase: usize| {
            RawTrace::new(
                format!("s{phase}"),
                (0..600)
                    .map(|t| {
                        if ((t + phase) / 5).is_multiple_of(2) {
                            "on"
                        } else {
                            "off"
                        }
                        .to_owned()
                    })
                    .collect(),
            )
        };
        let cfg = MdesConfig {
            window: WindowConfig {
                word_len: 4,
                word_stride: 1,
                sent_len: 5,
                sent_stride: 5,
            },
            ..MdesConfig::default()
        };
        let m = Mdes::fit(&[mk(0), mk(2)], 0..300, 300..450, cfg).expect("fit");
        GraphSnapshot::freeze(&m)
    }

    #[test]
    fn snapshot_roundtrips() {
        let path = tmp_path("snapshot");
        let snap = frozen_snapshot();
        write_snapshot(&path, &snap).expect("write");
        let back = read_snapshot(&path).expect("read");
        assert_eq!(back.valid_models(), snap.valid_models());
        assert_eq!(back.models().len(), snap.models().len());
        assert_eq!(back.min_width(), snap.min_width());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_snapshot_is_rejected_not_recovered() {
        let path = tmp_path("snapshot_damaged");
        write_snapshot(&path, &frozen_snapshot()).expect("write");
        let bytes = std::fs::read(&path).expect("read bytes");
        // A flipped payload byte must fail the checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        std::fs::write(&path, &flipped).expect("rewrite");
        assert!(matches!(
            read_snapshot(&path),
            Err(CoreError::Checkpoint { .. })
        ));
        // Any truncation must be rejected, never partially deployed.
        for cut in [0, 3, HEADER_LEN, HEADER_LEN + 5, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).expect("rewrite");
            assert!(matches!(
                read_snapshot(&path),
                Err(CoreError::Checkpoint { .. })
            ));
        }
        // A sweep checkpoint is not a snapshot.
        write_checkpoint(&path, &sample()).expect("write checkpoint");
        assert!(matches!(
            read_snapshot(&path),
            Err(CoreError::Checkpoint { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    /// The fitted plant with its pair models swapped for real-sized
    /// (untrained) neural weights, then re-encoded to int8 — training an
    /// actual NMT here would dominate the suite's runtime, and the reader
    /// only cares about the bytes.
    fn quantized_snapshot() -> GraphSnapshot {
        use crate::serve::{FrozenNmt, FrozenPairModel, FrozenTranslator, QuantPolicy};
        use mdes_lang::Vocab;
        use mdes_nn::{QuantMode, Seq2Seq, Seq2SeqConfig};
        let base = frozen_snapshot();
        let lang = base.language().clone();
        let models: Vec<FrozenPairModel> = base
            .models()
            .iter()
            .map(|m| {
                let sv = lang.languages()[m.src].vocab.size();
                let tv = lang.languages()[m.dst].vocab.size();
                let spec =
                    Seq2Seq::new(sv, tv, Vocab::BOS as usize, Seq2SeqConfig::default()).freeze();
                FrozenPairModel::new(
                    m.src,
                    m.dst,
                    m.train_score,
                    m.dev_floor,
                    FrozenTranslator::Nmt(FrozenNmt::new(spec)),
                )
            })
            .collect();
        GraphSnapshot::from_frozen_parts(
            base.graph().clone(),
            lang,
            base.detection().clone(),
            models,
        )
        .quantize(QuantMode::Int8, &QuantPolicy::default())
        .expect("quantize")
    }

    #[test]
    fn snapshot_version_1_still_reads_and_future_versions_are_rejected() {
        let snap = frozen_snapshot();
        let mut bytes = snapshot_to_bytes(&snap).expect("encode");
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            SNAP_VERSION
        );
        // A v1 artifact is the same frame layout without the quantization
        // record; re-labelling an f32 payload exercises that read path.
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let back = snapshot_from_bytes(&bytes).expect("v1 read");
        assert_eq!(back.valid_models(), snap.valid_models());
        assert!(back.quant().is_none());
        bytes[4..8].copy_from_slice(&(SNAP_VERSION + 1).to_le_bytes());
        assert!(matches!(
            snapshot_from_bytes(&bytes),
            Err(CoreError::Checkpoint { .. })
        ));
    }

    #[test]
    fn snapshot_reader_rejects_random_bytes() {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
        for i in 0..200 {
            let len = (i * 13) % 600;
            let buf: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
            assert!(
                snapshot_from_bytes(&buf).is_err(),
                "random buffer {i} parsed"
            );
        }
        // Garbage behind a well-formed header must die at the frame layer,
        // not reach the model constructor.
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAP_MAGIC);
        buf.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        for _ in 0..400 {
            buf.push(rng.next_u32() as u8);
        }
        assert!(matches!(
            snapshot_from_bytes(&buf),
            Err(CoreError::Checkpoint { .. })
        ));
    }

    #[test]
    fn snapshot_reader_rejects_every_truncation_and_byte_flip() {
        for (tag, snap) in [("f32", frozen_snapshot()), ("int8", quantized_snapshot())] {
            let bytes = snapshot_to_bytes(&snap).expect("encode");
            let reference = serde_json::to_string(&snap).expect("json");
            // Every possible truncation: length checks catch all of them
            // before any payload work, so the full sweep is cheap.
            for cut in 0..bytes.len() {
                assert!(
                    snapshot_from_bytes(&bytes[..cut]).is_err(),
                    "{tag}: truncation at {cut} parsed"
                );
            }
            // Single-byte corruptions: the whole header/frame-header region
            // plus a stride through the payload (flipping every payload byte
            // would be quadratic in checksum work). FNV-1a's per-byte state
            // change is never cancelled by the following bijective
            // multiplies, so any single payload flip must fail the checksum.
            let mut targets: Vec<usize> = (0..bytes.len().min(40)).collect();
            targets.extend((40..bytes.len()).step_by(211));
            for i in targets {
                let mut damaged = bytes.clone();
                damaged[i] ^= 0x80;
                match snapshot_from_bytes(&damaged) {
                    // The 8 reserved header bytes [8, 16) are ignored by the
                    // reader; a flip there must still yield the identical
                    // model — anywhere else, acceptance would be silent
                    // corruption.
                    Ok(back) => {
                        assert!(
                            (8..16).contains(&i),
                            "{tag}: undetected corruption at byte {i}"
                        );
                        assert_eq!(
                            serde_json::to_string(&back).expect("json"),
                            reference,
                            "{tag}: reserved-byte flip changed the model"
                        );
                    }
                    Err(CoreError::Checkpoint { .. }) => {}
                    Err(other) => panic!("{tag}: wrong error family at byte {i}: {other}"),
                }
            }
        }
    }
}
