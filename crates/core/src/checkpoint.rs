//! Sweep checkpointing: crash-safe persistence of partially-built graphs.
//!
//! An Algorithm 1 sweep over `M` sensors trains `M·(M-1)` pair models; at
//! the paper's 128-sensor scale that is an hours-long job whose death (OOM
//! kill, host reboot, deploy) previously lost every completed pair. This
//! module persists completed [`PairModel`]s (and quarantined pairs) so
//! [`build_graph`](crate::algorithm1::build_graph) can resume a sweep from
//! where it died, producing a graph identical to an uninterrupted run —
//! each pair is trained deterministically in isolation, so it does not
//! matter whether its model came from the checkpoint or a fresh run.
//!
//! # File format
//!
//! A checkpoint is a single binary file:
//!
//! ```text
//! magic    4 bytes   b"MDCK"
//! version  4 bytes   u32 LE, currently 1
//! length   8 bytes   u64 LE, payload byte count
//! checksum 8 bytes   u64 LE, FNV-1a of the payload
//! payload  N bytes   JSON-serialized CheckpointData
//! ```
//!
//! The header makes truncated or bit-rotted files detectable before JSON
//! parsing; writes go to a `<path>.tmp` sibling first and are moved into
//! place with an atomic rename, so a crash mid-write never corrupts an
//! existing checkpoint.

use crate::algorithm1::{PairModel, QuarantinedPair};
use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"MDCK";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// When and where [`build_graph`](crate::algorithm1::build_graph) persists
/// sweep progress.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Checkpoint file path. An existing, valid checkpoint at this path is
    /// resumed from; the file is rewritten as the sweep progresses.
    pub path: String,
    /// Persist after every `every` completed pairs (clamped to ≥ 1). The
    /// final state is always written when the sweep finishes.
    pub every: usize,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every 16 completed pairs.
    pub fn new(path: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            every: 16,
        }
    }
}

/// The persisted state of a partially-completed sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointData {
    /// Fingerprint of the sweep inputs (sensor names + build configuration);
    /// a mismatch on resume means the checkpoint belongs to a different
    /// sweep and must not be reused.
    pub fingerprint: u64,
    /// Completed pair models.
    pub models: Vec<PairModel>,
    /// Pairs quarantined so far (under a `Degrade` policy).
    pub quarantined: Vec<QuarantinedPair>,
}

/// FNV-1a 64-bit hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn ckpt_err(path: &Path, detail: impl Into<String>) -> CoreError {
    CoreError::Checkpoint {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

/// Atomically writes `data` to `path` (tmp file + rename), with the framed
/// header described in the [module docs](self).
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] on serialization or I/O failure.
pub fn write_checkpoint(path: &Path, data: &CheckpointData) -> Result<(), CoreError> {
    let payload = serde_json::to_string(data)
        .map_err(|e| ckpt_err(path, format!("serialize failed: {e}")))?
        .into_bytes();
    let mut framed = Vec::with_capacity(HEADER_LEN + payload.len());
    framed.extend_from_slice(MAGIC);
    framed.extend_from_slice(&VERSION.to_le_bytes());
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    let mut file =
        fs::File::create(&tmp).map_err(|e| ckpt_err(path, format!("create tmp failed: {e}")))?;
    file.write_all(&framed)
        .map_err(|e| ckpt_err(path, format!("write failed: {e}")))?;
    file.sync_all()
        .map_err(|e| ckpt_err(path, format!("sync failed: {e}")))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| ckpt_err(path, format!("rename failed: {e}")))
}

/// Reads and validates a checkpoint written by [`write_checkpoint`].
///
/// # Errors
///
/// Returns [`CoreError::Checkpoint`] if the file cannot be read, the header
/// is malformed, the payload is truncated, the checksum does not match, or
/// the JSON body fails to parse.
pub fn read_checkpoint(path: &Path) -> Result<CheckpointData, CoreError> {
    let bytes = fs::read(path).map_err(|e| ckpt_err(path, format!("read failed: {e}")))?;
    if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
        return Err(ckpt_err(path, "not a checkpoint file (bad magic)"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(ckpt_err(path, format!("unsupported version {version}")));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != len {
        return Err(ckpt_err(
            path,
            format!(
                "truncated payload: header says {len} bytes, found {}",
                payload.len()
            ),
        ));
    }
    if fnv1a(payload) != checksum {
        return Err(ckpt_err(path, "checksum mismatch (corrupt payload)"));
    }
    let text =
        std::str::from_utf8(payload).map_err(|_| ckpt_err(path, "payload is not valid UTF-8"))?;
    serde_json::from_str(text).map_err(|e| ckpt_err(path, format!("parse failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mdes_ckpt_test_{}_{tag}.ckpt", std::process::id()))
    }

    fn sample() -> CheckpointData {
        CheckpointData {
            fingerprint: 0xDEAD_BEEF,
            models: Vec::new(),
            quarantined: vec![QuarantinedPair {
                src: 1,
                dst: 2,
                error: "training diverged: non-finite loss at step 4".to_owned(),
                retries: 2,
            }],
        }
    }

    #[test]
    fn roundtrip_preserves_data() {
        let path = tmp_path("roundtrip");
        write_checkpoint(&path, &sample()).expect("write");
        let back = read_checkpoint(&path).expect("read");
        assert_eq!(back.fingerprint, 0xDEAD_BEEF);
        assert_eq!(back.quarantined, sample().quarantined);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let path = tmp_path("corrupt");
        write_checkpoint(&path, &sample()).expect("write");
        let mut bytes = std::fs::read(&path).expect("read bytes");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(
            read_checkpoint(&path),
            Err(CoreError::Checkpoint { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp_path("truncated");
        write_checkpoint(&path, &sample()).expect("write");
        let bytes = std::fs::read(&path).expect("read bytes");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("rewrite");
        assert!(matches!(
            read_checkpoint(&path),
            Err(CoreError::Checkpoint { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_missing_file_are_rejected() {
        let path = tmp_path("magic");
        std::fs::write(&path, b"definitely not a checkpoint").expect("write");
        assert!(matches!(
            read_checkpoint(&path),
            Err(CoreError::Checkpoint { .. })
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CoreError::Checkpoint { .. })
        ));
    }
}
