//! Error type for the framework crate.

use mdes_lang::LangError;
use mdes_nn::NnError;
use std::error::Error;
use std::fmt;

/// Errors reported by the `mdes` framework.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Error from the language pipeline.
    Lang(LangError),
    /// Error from the neural substrate.
    Nn(NnError),
    /// Fewer than two sensors survive filtering — no pairs to model.
    TooFewSensors {
        /// Sensors available after filtering.
        available: usize,
    },
    /// The aligned corpora have inconsistent sentence counts.
    MisalignedCorpora {
        /// Sentence count of the first sensor.
        expected: usize,
        /// Offending count.
        found: usize,
    },
    /// A corpus segment produced no sentences.
    EmptyCorpus,
    /// No trained model's score falls in the configured validity range.
    NoValidModels,
    /// A monitor was created over fewer sensors than the model references.
    WidthMismatch {
        /// Sensors per sample offered by the caller.
        width: usize,
        /// Minimum width the fitted model requires (largest original sensor
        /// index plus one).
        needed: usize,
    },
    /// Training of one sensor pair failed (divergence after all retries, or
    /// a worker panic) and the pair was quarantined. Under
    /// [`FailurePolicy::FailFast`](crate::algorithm1::FailurePolicy) this
    /// aborts the sweep; under `Degrade` it is recorded on the graph instead.
    PairQuarantined {
        /// Source sensor index of the failed pair.
        src: usize,
        /// Target sensor index of the failed pair.
        dst: usize,
        /// The underlying training error, when the failure was a typed error
        /// rather than a panic.
        source: Option<Box<CoreError>>,
        /// Human-readable failure description (panic payload or error text).
        detail: String,
    },
    /// A sweep worker thread died *outside* the per-pair panic isolation —
    /// a panic escaped between [`std::panic::catch_unwind`] boundaries (slot
    /// merge, checkpoint plumbing) — so its claimed pairs never produced an
    /// outcome. Under [`FailurePolicy::FailFast`](crate::algorithm1::FailurePolicy)
    /// the sweep aborts with this error; under `Degrade` the orphaned pairs
    /// are quarantined instead and the sweep completes.
    WorkerLost {
        /// Pairs left without an outcome when the worker pool was joined.
        lost: usize,
        /// Panic payload text of the first lost worker.
        detail: String,
    },
    /// Too many pairs were quarantined for the sweep to meet the configured
    /// `Degrade` policy's minimum success fraction.
    TooManyFailedPairs {
        /// Number of quarantined pairs.
        failed: usize,
        /// Total pairs attempted.
        total: usize,
    },
    /// A snapshot offered to [`ModelStore::publish`](crate::serve::ModelStore::publish)
    /// is incompatible with the one currently being served (different
    /// windowing, or a wider minimum sensor width than open sessions were
    /// validated against), so hot-swapping it would corrupt live streams.
    IncompatibleSnapshot {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A quantized serving artifact drifted further from its f32 original
    /// than the policy allows — at quantization time (weight error measured
    /// by [`GraphSnapshot::quantize`](crate::serve::GraphSnapshot::quantize),
    /// score drift by `quantize_calibrated`) or at publish time (a snapshot
    /// whose recorded calibration violates its own recorded bound).
    QuantizationDrift {
        /// Which measurement exceeded its bound (`"weight error"` or
        /// `"score drift"`).
        metric: String,
        /// The measured drift.
        observed: f64,
        /// The bound it had to stay within.
        bound: f64,
    },
    /// A sweep checkpoint could not be written, read, or validated.
    Checkpoint {
        /// Checkpoint file path.
        path: String,
        /// What went wrong (I/O error text, corrupt header, fingerprint
        /// mismatch, …).
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lang(e) => write!(f, "language pipeline error: {e}"),
            CoreError::Nn(e) => write!(f, "neural model error: {e}"),
            CoreError::TooFewSensors { available } => {
                write!(
                    f,
                    "need at least two sensors after filtering, have {available}"
                )
            }
            CoreError::MisalignedCorpora { expected, found } => {
                write!(
                    f,
                    "misaligned corpora: expected {expected} sentences, found {found}"
                )
            }
            CoreError::EmptyCorpus => write!(f, "corpus segment produced no sentences"),
            CoreError::NoValidModels => {
                write!(f, "no model score falls inside the validity range")
            }
            CoreError::WidthMismatch { width, needed } => {
                write!(
                    f,
                    "sample width {width} smaller than the model's required width {needed}"
                )
            }
            CoreError::PairQuarantined {
                src, dst, detail, ..
            } => {
                write!(f, "pair ({src} -> {dst}) quarantined: {detail}")
            }
            CoreError::WorkerLost { lost, detail } => {
                write!(
                    f,
                    "sweep worker lost outside pair isolation ({lost} pair(s) without an \
                     outcome): {detail}"
                )
            }
            CoreError::TooManyFailedPairs { failed, total } => {
                write!(
                    f,
                    "too many failed pairs: {failed} of {total} quarantined, below the \
                     configured minimum success fraction"
                )
            }
            CoreError::IncompatibleSnapshot { detail } => {
                write!(f, "incompatible snapshot rejected: {detail}")
            }
            CoreError::QuantizationDrift {
                metric,
                observed,
                bound,
            } => {
                write!(
                    f,
                    "quantization {metric} {observed} exceeds the allowed bound {bound}"
                )
            }
            CoreError::Checkpoint { path, detail } => {
                write!(f, "checkpoint error at {path}: {detail}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Lang(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::PairQuarantined {
                source: Some(e), ..
            } => Some(&**e),
            _ => None,
        }
    }
}

impl From<LangError> for CoreError {
    fn from(e: LangError) -> Self {
        CoreError::Lang(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(LangError::EmptyInput);
        assert!(e.to_string().contains("language pipeline"));
        assert!(e.source().is_some());
        let e = CoreError::TooFewSensors { available: 1 };
        assert!(e.source().is_none());
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn quarantine_chains_its_source() {
        let inner = CoreError::from(NnError::Diverged { step: 3 });
        let e = CoreError::PairQuarantined {
            src: 1,
            dst: 2,
            source: Some(Box::new(inner.clone())),
            detail: inner.to_string(),
        };
        assert!(e.to_string().contains("(1 -> 2)"));
        assert!(e.to_string().contains("diverged"));
        let chained = e.source().expect("source");
        assert!(chained.to_string().contains("diverged"));
        // A panic-born quarantine has no typed source but still displays.
        let p = CoreError::PairQuarantined {
            src: 0,
            dst: 3,
            source: None,
            detail: "worker panicked: boom".to_owned(),
        };
        assert!(p.source().is_none());
        assert!(p.to_string().contains("boom"));
    }

    #[test]
    fn new_failure_modes_display() {
        for e in [
            CoreError::WidthMismatch {
                width: 2,
                needed: 5,
            },
            CoreError::TooManyFailedPairs {
                failed: 9,
                total: 12,
            },
            CoreError::WorkerLost {
                lost: 3,
                detail: "panicked in merge".to_owned(),
            },
            CoreError::Checkpoint {
                path: "/tmp/x.ckpt".to_owned(),
                detail: "bad checksum".to_owned(),
            },
            CoreError::IncompatibleSnapshot {
                detail: "window config changed".to_owned(),
            },
            CoreError::QuantizationDrift {
                metric: "score drift".to_owned(),
                observed: 0.4,
                bound: 0.25,
            },
        ] {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_none());
        }
    }
}
