//! Error type for the framework crate.

use mdes_lang::LangError;
use mdes_nn::NnError;
use std::error::Error;
use std::fmt;

/// Errors reported by the `mdes` framework.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Error from the language pipeline.
    Lang(LangError),
    /// Error from the neural substrate.
    Nn(NnError),
    /// Fewer than two sensors survive filtering — no pairs to model.
    TooFewSensors {
        /// Sensors available after filtering.
        available: usize,
    },
    /// The aligned corpora have inconsistent sentence counts.
    MisalignedCorpora {
        /// Sentence count of the first sensor.
        expected: usize,
        /// Offending count.
        found: usize,
    },
    /// A corpus segment produced no sentences.
    EmptyCorpus,
    /// No trained model's score falls in the configured validity range.
    NoValidModels,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lang(e) => write!(f, "language pipeline error: {e}"),
            CoreError::Nn(e) => write!(f, "neural model error: {e}"),
            CoreError::TooFewSensors { available } => {
                write!(
                    f,
                    "need at least two sensors after filtering, have {available}"
                )
            }
            CoreError::MisalignedCorpora { expected, found } => {
                write!(
                    f,
                    "misaligned corpora: expected {expected} sentences, found {found}"
                )
            }
            CoreError::EmptyCorpus => write!(f, "corpus segment produced no sentences"),
            CoreError::NoValidModels => {
                write!(f, "no model score falls inside the validity range")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Lang(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LangError> for CoreError {
    fn from(e: LangError) -> Self {
        CoreError::Lang(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(LangError::EmptyInput);
        assert!(e.to_string().contains("language pipeline"));
        assert!(e.source().is_some());
        let e = CoreError::TooFewSensors { available: 1 };
        assert!(e.source().is_none());
        assert!(!e.to_string().is_empty());
    }
}
