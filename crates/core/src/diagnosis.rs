//! Fault diagnosis from broken relationships (§III-C, Fig. 9).
//!
//! Once Algorithm 2 flags a timestamp, the broken pairs `W_t` are projected
//! onto the relationship graph: connected clusters of broken edges point at
//! the faulty component, and per-sensor broken-edge counts rank individual
//! sensors by suspicion.

use mdes_graph::RelGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Diagnosis of one detection timestamp.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Clusters of sensors connected by broken edges, each sorted; clusters
    /// ordered by their smallest sensor index (the paper's green circles).
    pub faulty_clusters: Vec<Vec<usize>>,
    /// `(sensor, broken edge count)` sorted by decreasing count.
    pub sensor_ranking: Vec<(usize, usize)>,
    /// Fraction of the subgraph's edges that are broken.
    pub broken_fraction: f64,
}

impl Diagnosis {
    /// Whether the anomaly is *severe*: broken edges cover at least
    /// `threshold` of the subgraph (the paper's day-28 pattern where almost
    /// all relationships break).
    pub fn is_severe(&self, threshold: f64) -> bool {
        self.broken_fraction >= threshold
    }
}

/// Projects broken pairs onto `subgraph` and extracts faulty clusters.
///
/// `subgraph` is typically the local subgraph at the detection range
/// (popular sensors removed); broken pairs not present in the subgraph are
/// still counted in the sensor ranking but cannot join clusters.
pub fn diagnose(subgraph: &RelGraph, broken: &[(usize, usize)]) -> Diagnosis {
    let broken_set: HashSet<(usize, usize)> = broken.iter().copied().collect();

    // Graph induced by broken edges (restricted to edges in the subgraph).
    let mut induced = RelGraph::new(subgraph.names().to_vec());
    for &(s, d) in &broken_set {
        if let Some(w) = subgraph.score(s, d) {
            induced.set_score(s, d, w);
        }
    }
    let faulty_clusters = induced.weakly_connected_components();

    let mut counts = vec![0usize; subgraph.len()];
    for &(s, d) in &broken_set {
        if s < counts.len() {
            counts[s] += 1;
        }
        if d < counts.len() {
            counts[d] += 1;
        }
    }
    let mut sensor_ranking: Vec<(usize, usize)> = counts
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect();
    sensor_ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let total = subgraph.edge_count();
    let broken_in_subgraph = induced.edge_count();
    let broken_fraction = if total == 0 {
        0.0
    } else {
        broken_in_subgraph as f64 / total as f64
    };
    Diagnosis {
        faulty_clusters,
        sensor_ranking,
        broken_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subgraph() -> RelGraph {
        let names: Vec<String> = (0..8).map(|i| format!("s{i}")).collect();
        let mut g = RelGraph::new(names);
        // Two clusters: {0,1,2} and {4,5,6}; node 3 and 7 spare.
        for (a, b) in [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)] {
            g.set_score(a, b, 85.0);
        }
        g
    }

    #[test]
    fn clusters_of_broken_edges() {
        let g = subgraph();
        let d = diagnose(&g, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(d.faulty_clusters, vec![vec![0, 1, 2], vec![4, 5]]);
        assert!((d.broken_fraction - 0.5).abs() < 1e-9);
        assert!(!d.is_severe(0.9));
    }

    #[test]
    fn severe_when_everything_breaks() {
        let g = subgraph();
        let all: Vec<(usize, usize)> = g.edges().map(|(s, d, _)| (s, d)).collect();
        let diag = diagnose(&g, &all);
        assert!((diag.broken_fraction - 1.0).abs() < 1e-9);
        assert!(diag.is_severe(0.9));
        assert_eq!(diag.faulty_clusters.len(), 2);
    }

    #[test]
    fn ranking_orders_by_broken_count() {
        let g = subgraph();
        let d = diagnose(&g, &[(0, 1), (1, 2), (2, 0)]);
        // Every node in the triangle touches 2 broken edges.
        assert_eq!(d.sensor_ranking.len(), 3);
        assert!(d.sensor_ranking.iter().all(|&(_, c)| c == 2));
    }

    #[test]
    fn broken_edges_outside_subgraph_rank_but_do_not_cluster() {
        let g = subgraph();
        // (3, 7) is not an edge of the subgraph.
        let d = diagnose(&g, &[(3, 7)]);
        assert!(d.faulty_clusters.is_empty());
        assert_eq!(d.sensor_ranking, vec![(3, 1), (7, 1)]);
        assert_eq!(d.broken_fraction, 0.0);
    }

    #[test]
    fn empty_alerts_mean_clean_bill() {
        let g = subgraph();
        let d = diagnose(&g, &[]);
        assert!(d.faulty_clusters.is_empty());
        assert!(d.sensor_ranking.is_empty());
        assert_eq!(d.broken_fraction, 0.0);
    }
}

/// One step of a fault-propagation timeline (§III-C: the paper proposes
/// rendering diagnosis at finer granularities to show how faults spread).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PropagationStep {
    /// Detection window index.
    pub window: usize,
    /// Anomaly score at this window.
    pub score: f64,
    /// All sensors touching a broken edge at this window, sorted.
    pub affected: Vec<usize>,
    /// Sensors affected here that were not affected in any earlier step.
    pub newly_affected: Vec<usize>,
}

/// Builds a fault-propagation timeline from consecutive detection windows:
/// for each window, which sensors participate in broken relationships and
/// which of them are newly reached — the spread front of the fault.
pub fn propagation_timeline(
    scores: &[f64],
    alerts: &[Vec<(usize, usize)>],
) -> Vec<PropagationStep> {
    assert_eq!(scores.len(), alerts.len(), "scores/alerts length mismatch");
    let mut seen: HashSet<usize> = HashSet::new();
    let mut steps = Vec::with_capacity(scores.len());
    for (window, (score, broken)) in scores.iter().zip(alerts).enumerate() {
        let mut affected: Vec<usize> = broken
            .iter()
            .flat_map(|&(s, d)| [s, d])
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        affected.sort_unstable();
        let mut newly: Vec<usize> = affected
            .iter()
            .copied()
            .filter(|s| !seen.contains(s))
            .collect();
        newly.sort_unstable();
        seen.extend(newly.iter().copied());
        steps.push(PropagationStep {
            window,
            score: *score,
            affected,
            newly_affected: newly,
        });
    }
    steps
}

#[cfg(test)]
mod propagation_tests {
    use super::*;

    #[test]
    fn timeline_tracks_spread_front() {
        let scores = vec![0.0, 0.3, 0.6, 0.6];
        let alerts = vec![
            vec![],
            vec![(0, 1)],
            vec![(0, 1), (1, 2)],
            vec![(1, 2), (2, 3)],
        ];
        let steps = propagation_timeline(&scores, &alerts);
        assert_eq!(steps.len(), 4);
        assert!(steps[0].affected.is_empty());
        assert_eq!(steps[1].newly_affected, vec![0, 1]);
        assert_eq!(steps[2].newly_affected, vec![2]);
        assert_eq!(steps[3].newly_affected, vec![3]);
        assert_eq!(steps[3].affected, vec![1, 2, 3]);
    }

    #[test]
    fn repeat_alerts_are_not_new() {
        let steps = propagation_timeline(&[0.5, 0.5], &[vec![(4, 5)], vec![(4, 5)]]);
        assert_eq!(steps[0].newly_affected, vec![4, 5]);
        assert!(steps[1].newly_affected.is_empty());
        assert_eq!(steps[1].affected, vec![4, 5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = propagation_timeline(&[0.0], &[]);
    }
}
