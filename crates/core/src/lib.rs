//! `mdes-core` — the analytics framework of *Mining Multivariate Discrete
//! Event Sequences for Knowledge Discovery and Anomaly Detection* (DSN 2020).
//!
//! The framework treats each sensor's discrete event sequence as a natural
//! language and quantifies pairwise sensor relationships by how well one
//! language translates into another:
//!
//! 1. [`Translator`] / [`train_translator`] — directional pair models:
//!    the paper's seq2seq LSTM with attention ([`TranslatorConfig::Nmt`])
//!    or a fast statistical surrogate ([`TranslatorConfig::Ngram`]);
//! 2. [`build_graph`] (Algorithm 1) — trains every ordered pair and
//!    assembles the multivariate relationship graph;
//! 3. [`detect`] (Algorithm 2) — flags timestamps whose test BLEU drops
//!    below the trained score for valid pairs, yielding the anomaly score
//!    `a_t` and alert sets `W_t`;
//! 4. [`diagnose`] — projects alerts onto the local subgraph to locate
//!    faulty sensor clusters;
//! 5. [`Mdes`] — the end-to-end facade tying the language pipeline and all
//!    of the above together;
//! 6. [`GraphSnapshot`] / [`ServingEngine`] — freeze the fitted model into
//!    an immutable, serializable serving artifact and multiplex many
//!    concurrent streams against it, hot-swapping retrained snapshots
//!    mid-stream without dropping buffered windows.
//!
//! # Example
//!
//! ```
//! use mdes_core::{Mdes, MdesConfig};
//! use mdes_lang::{RawTrace, WindowConfig};
//!
//! # fn main() -> Result<(), mdes_core::CoreError> {
//! // Two coupled square-wave sensors.
//! let mk = |phase: usize| RawTrace::new(
//!     format!("s{phase}"),
//!     (0..600)
//!         .map(|t| if ((t + phase) / 5).is_multiple_of(2) { "on" } else { "off" }.to_owned())
//!         .collect(),
//! );
//! let traces = vec![mk(0), mk(2)];
//! let cfg = MdesConfig {
//!     window: WindowConfig { word_len: 4, word_stride: 1, sent_len: 5, sent_stride: 5 },
//!     ..MdesConfig::default()
//! };
//! let mdes = Mdes::fit(&traces, 0..300, 300..450, cfg)?;
//! assert!(mdes.graph().score(0, 1).expect("edge") > 80.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod algorithm1;
pub mod algorithm2;
pub mod checkpoint;
pub mod diagnosis;
mod error;
pub mod online;
mod pipeline;
pub mod prescreen;
pub mod serve;
pub mod sharded;
pub mod translator;

pub use algorithm1::{
    build_graph, FailurePolicy, GraphBuildConfig, PairModel, QuarantinedPair, TrainedGraph,
};
pub use algorithm2::{detect, detect_excluding, BrokenRule, DetectionConfig, DetectionResult};
pub use checkpoint::{
    read_checkpoint, read_snapshot, snapshot_from_bytes, snapshot_to_bytes, write_checkpoint,
    write_snapshot, CheckpointConfig, CheckpointData,
};
pub use diagnosis::{diagnose, propagation_timeline, Diagnosis, PropagationStep};
pub use error::CoreError;
pub use online::{DegradationConfig, OnlineDetection, OnlineMonitor};
pub use pipeline::{Mdes, MdesConfig, ScalableFitConfig};
pub use prescreen::{prescreen_pairs, PrescreenConfig, PrescreenResult, PrescreenedPair};
pub use serve::{
    FrozenNmt, FrozenPairModel, FrozenTranslator, GraphSnapshot, ModelStore, QuantCalibration,
    QuantPolicy, ServingEngine, StreamSession,
};
pub use sharded::{build_graph_sharded, ShardedSweepConfig, ShardedSweepReport};

pub use mdes_nn::QuantMode;
pub use translator::{
    train_translator, AnyTranslator, NgramConfig, NgramTranslator, NmtTranslator, Translator,
    TranslatorConfig,
};
