//! Pair prescreening — stage one of the scalable Algorithm 1.
//!
//! An exhaustive Algorithm 1 sweep trains `N·(N-1)` translators; at 1,000
//! sensors that is ~10⁶ neural models and out of reach. The translator
//! ablation (`exp_ablation_translator`) showed the n-gram translator is
//! ~175× cheaper than NMT while preserving the score *ordering* — exactly
//! the cheap-screen-then-refine recipe large-scale graph construction uses.
//!
//! [`prescreen_pairs`] runs the n-gram translator over all ordered pairs,
//! predicts each pair's translatability score, and keeps only pairs whose
//! predicted score can plausibly land inside the valid [`ScoreRange`]
//! (widened by [`PrescreenConfig::margin`] on both sides to absorb the
//! n-gram-vs-NMT score shift). The surviving pairs are ranked by predicted
//! score and handed to the sharded NMT sweep
//! ([`build_graph_sharded`](crate::sharded::build_graph_sharded)).
//!
//! Corpus construction is *block-streamed*: sensors are encoded in blocks
//! of [`PrescreenConfig::block_sensors`], so at any moment at most two
//! blocks of corpora are resident — peak memory is bounded by the block
//! size, not the fleet. Re-encoding a block per (src, dst) block pairing is
//! cheap next to the N² n-gram fits.

use crate::error::CoreError;
use crate::translator::{NgramConfig, NgramTranslator, Translator};
use mdes_bleu::{corpus_bleu, BleuConfig};
use mdes_graph::ScoreRange;
use mdes_lang::{LanguagePipeline, RawTrace, SentenceSet};
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration of the n-gram prescreen stage.
#[derive(Clone, Debug)]
pub struct PrescreenConfig {
    /// The cheap translator family used for score prediction.
    pub ngram: NgramConfig,
    /// Corpus-BLEU configuration; use the same settings as the main sweep's
    /// [`GraphBuildConfig::bleu`](crate::algorithm1::GraphBuildConfig) so
    /// predicted and final scores live on the same scale.
    pub bleu: BleuConfig,
    /// The validity range the main sweep will apply — pairs that cannot
    /// plausibly land inside it are pruned.
    pub range: ScoreRange,
    /// Widening applied to both ends of `range` when deciding survival: a
    /// pair survives iff `range.lo() - margin <= predicted <= range.hi() +
    /// margin`. Absorbs the systematic shift between n-gram and NMT scores;
    /// larger margins trade sweep work for recall.
    pub margin: f64,
    /// Sensors encoded per corpus block (0 = all sensors in one block).
    /// Peak prescreen memory is about two blocks of corpora.
    pub block_sensors: usize,
    /// Worker threads for pair scoring (0 = number of available CPUs).
    pub threads: usize,
}

impl Default for PrescreenConfig {
    fn default() -> Self {
        Self {
            ngram: NgramConfig::default(),
            bleu: BleuConfig {
                smoothing: mdes_bleu::Smoothing::AddOne,
                ..BleuConfig::default()
            },
            range: ScoreRange::best_detection(),
            margin: 10.0,
            block_sensors: 128,
            threads: 0,
        }
    }
}

impl PrescreenConfig {
    /// Whether a predicted score survives the widened validity band.
    pub fn keeps(&self, predicted: f64) -> bool {
        predicted >= self.range.lo() - self.margin && predicted <= self.range.hi() + self.margin
    }
}

/// One surviving pair with its predicted translatability score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrescreenedPair {
    /// Source sensor index (into the pipeline's surviving sensors).
    pub src: usize,
    /// Target sensor index.
    pub dst: usize,
    /// Predicted dev-set corpus BLEU under the n-gram translator.
    pub predicted: f64,
}

/// Output of [`prescreen_pairs`].
#[derive(Clone, Debug)]
pub struct PrescreenResult {
    ranked: Vec<PrescreenedPair>,
    total_pairs: usize,
    peak_block_corpus_bytes: usize,
}

impl PrescreenResult {
    /// Surviving pairs ranked by predicted score, best first (ties broken
    /// by `(src, dst)` so the ranking is deterministic).
    pub fn ranked(&self) -> &[PrescreenedPair] {
        &self.ranked
    }

    /// Number of surviving pairs.
    pub fn kept(&self) -> usize {
        self.ranked.len()
    }

    /// All ordered pairs considered (`N·(N-1)`).
    pub fn total_pairs(&self) -> usize {
        self.total_pairs
    }

    /// Pairs pruned away.
    pub fn pruned(&self) -> usize {
        self.total_pairs - self.ranked.len()
    }

    /// Largest resident corpus footprint observed while screening, in
    /// bytes (at most two sensor blocks).
    pub fn peak_block_corpus_bytes(&self) -> usize {
        self.peak_block_corpus_bytes
    }

    /// The surviving pair list in canonical `(src, dst)` sweep order — the
    /// exact list whose hash gates sharded-checkpoint resume.
    pub fn survivors(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = self.ranked.iter().map(|p| (p.src, p.dst)).collect();
        pairs.sort_unstable();
        pairs
    }
}

/// Scores every ordered sensor pair with the n-gram translator and prunes
/// pairs that cannot plausibly land inside the valid score range.
///
/// `train` / `dev` are sample ranges of `traces` (the same ranges the main
/// sweep will use). Corpora are encoded block by block via
/// [`LanguagePipeline::encode_sensor_segment`], so peak memory is bounded
/// by [`PrescreenConfig::block_sensors`], not the fleet.
///
/// # Errors
///
/// Returns [`CoreError::TooFewSensors`] for fewer than two surviving
/// sensors and propagates encoding errors (bad ranges, segments too short).
pub fn prescreen_pairs(
    pipeline: &LanguagePipeline,
    traces: &[RawTrace],
    train: Range<usize>,
    dev: Range<usize>,
    cfg: &PrescreenConfig,
) -> Result<PrescreenResult, CoreError> {
    let n = pipeline.sensor_count();
    if n < 2 {
        return Err(CoreError::TooFewSensors { available: n });
    }
    let total_pairs = n * (n - 1);
    let mut span = mdes_obs::span("algo1.prescreen");
    span.field("sensors", n);
    span.field("pairs", total_pairs);
    mdes_obs::counter("algo1.prescreen.pairs", total_pairs as u64);

    let block = if cfg.block_sensors == 0 {
        n
    } else {
        cfg.block_sensors.min(n)
    };
    let blocks: Vec<Range<usize>> = (0..n.div_ceil(block))
        .map(|b| b * block..((b + 1) * block).min(n))
        .collect();
    span.field("blocks", blocks.len());

    // Encodes one block's (train, dev) corpora, per sensor.
    let encode_block =
        |range: &Range<usize>| -> Result<Vec<(SentenceSet, SentenceSet)>, CoreError> {
            range
                .clone()
                .map(|s| {
                    let t = pipeline.encode_sensor_segment(traces, train.clone(), s)?;
                    let d = pipeline.encode_sensor_segment(traces, dev.clone(), s)?;
                    if t.is_empty() || d.is_empty() {
                        return Err(CoreError::EmptyCorpus);
                    }
                    Ok((t, d))
                })
                .collect()
        };
    let block_bytes = |corpora: &[(SentenceSet, SentenceSet)]| -> usize {
        corpora
            .iter()
            .map(|(t, d)| t.approx_bytes() + d.approx_bytes())
            .sum()
    };

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };

    let mut ranked: Vec<PrescreenedPair> = Vec::new();
    let mut peak_bytes = 0usize;
    for (sb, src_range) in blocks.iter().enumerate() {
        let src_corpora = encode_block(src_range)?;
        for (db, dst_range) in blocks.iter().enumerate() {
            let dst_corpora = if db == sb {
                None // same block: reuse src_corpora
            } else {
                Some(encode_block(dst_range)?)
            };
            let dst_ref: &[(SentenceSet, SentenceSet)] =
                dst_corpora.as_deref().unwrap_or(&src_corpora);
            peak_bytes = peak_bytes
                .max(block_bytes(&src_corpora) + dst_corpora.as_deref().map_or(0, block_bytes));

            let pairs: Vec<(usize, usize)> = src_range
                .clone()
                .flat_map(|i| dst_range.clone().map(move |j| (i, j)))
                .filter(|(i, j)| i != j)
                .collect();
            let scores: Mutex<Vec<Option<f64>>> = Mutex::new(vec![None; pairs.len()]);
            let next = AtomicUsize::new(0);
            crossbeam::scope(|scope| {
                for _ in 0..threads.max(1) {
                    scope.spawn(|_| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= pairs.len() {
                            break;
                        }
                        let (i, j) = pairs[k];
                        let (src_train, src_dev) = &src_corpora[i - src_range.start];
                        let (dst_train, dst_dev) = &dst_ref[j - dst_range.start];
                        let predicted = predict_score(
                            src_train,
                            src_dev,
                            dst_train,
                            dst_dev,
                            pipeline.config().sent_len,
                            cfg,
                        );
                        scores.lock()[k] = Some(predicted);
                    });
                }
            })
            .expect("prescreen scoring does not panic");
            for (k, score) in scores.into_inner().into_iter().enumerate() {
                let predicted = score.expect("every pair scored");
                if cfg.keeps(predicted) {
                    let (src, dst) = pairs[k];
                    ranked.push(PrescreenedPair {
                        src,
                        dst,
                        predicted,
                    });
                }
            }
        }
    }

    ranked.sort_by(|a, b| {
        b.predicted
            .total_cmp(&a.predicted)
            .then_with(|| (a.src, a.dst).cmp(&(b.src, b.dst)))
    });
    span.field("kept", ranked.len());
    span.field("pruned", total_pairs - ranked.len());
    mdes_obs::counter("algo1.prescreen.kept", ranked.len() as u64);
    mdes_obs::counter(
        "algo1.prescreen.pruned",
        (total_pairs - ranked.len()) as u64,
    );
    Ok(PrescreenResult {
        ranked,
        total_pairs,
        peak_block_corpus_bytes: peak_bytes,
    })
}

/// Fits the n-gram translator on one directional pair's training sentences
/// and scores it on the dev set — the cheap stand-in for a full
/// `train_pair`.
fn predict_score(
    src_train: &SentenceSet,
    src_dev: &SentenceSet,
    dst_train: &SentenceSet,
    dst_dev: &SentenceSet,
    out_len: usize,
    cfg: &PrescreenConfig,
) -> f64 {
    let pairs: Vec<(Vec<u32>, Vec<u32>)> = src_train
        .sentences
        .iter()
        .zip(&dst_train.sentences)
        .map(|(s, t)| (s.clone(), t.clone()))
        .collect();
    let model = NgramTranslator::fit(&pairs, &cfg.ngram);
    let dev_srcs: Vec<&[u32]> = src_dev.sentences.iter().map(Vec::as_slice).collect();
    let hyps = model.translate_batch(&dev_srcs, out_len);
    corpus_bleu(&hyps, &dst_dev.sentences, &cfg.bleu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::{build_graph, GraphBuildConfig};
    use mdes_lang::WindowConfig;

    fn toggling(name: &str, n: usize, period: usize, phase: usize) -> RawTrace {
        RawTrace::new(
            name,
            (0..n)
                .map(|t| {
                    if ((t + phase) / period).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    }

    fn setup() -> (LanguagePipeline, Vec<RawTrace>) {
        let traces = vec![
            toggling("a", 600, 5, 0),
            toggling("b", 600, 5, 2),
            toggling("c", 600, 7, 0),
            toggling("d", 600, 11, 3),
        ];
        let cfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..300, cfg).expect("fit");
        (p, traces)
    }

    #[test]
    fn full_band_keeps_everything_and_ranks_by_score() {
        let (p, traces) = setup();
        let cfg = PrescreenConfig {
            range: ScoreRange::closed(0.0, 100.0),
            margin: 0.0,
            ..PrescreenConfig::default()
        };
        let r = prescreen_pairs(&p, &traces, 0..300, 300..450, &cfg).expect("prescreen");
        assert_eq!(r.total_pairs(), 12);
        assert_eq!(r.kept(), 12);
        assert_eq!(r.pruned(), 0);
        assert!(r.peak_block_corpus_bytes() > 0);
        for w in r.ranked().windows(2) {
            assert!(w[0].predicted >= w[1].predicted, "ranked descending");
        }
        let survivors = r.survivors();
        assert!(survivors.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
    }

    #[test]
    fn narrow_band_prunes_and_never_confuses_blocks() {
        let (p, traces) = setup();
        // Compare the one-block and two-sensor-block screens: identical
        // predictions regardless of streaming granularity.
        let base = PrescreenConfig {
            range: ScoreRange::closed(0.0, 100.0),
            margin: 0.0,
            threads: 1,
            ..PrescreenConfig::default()
        };
        let blocked = PrescreenConfig {
            block_sensors: 2,
            ..base.clone()
        };
        let a = prescreen_pairs(&p, &traces, 0..300, 300..450, &base).expect("one block");
        let b = prescreen_pairs(&p, &traces, 0..300, 300..450, &blocked).expect("blocked");
        let key = |r: &PrescreenResult| {
            let mut v: Vec<(usize, usize, f64)> = r
                .ranked()
                .iter()
                .map(|p| (p.src, p.dst, p.predicted))
                .collect();
            v.sort_by_key(|x| (x.0, x.1));
            v
        };
        assert_eq!(key(&a), key(&b));
        // Blocked screening's peak is bounded by two blocks, below the
        // whole-fleet footprint.
        assert!(b.peak_block_corpus_bytes() <= a.peak_block_corpus_bytes());

        // A band above every unrelated pair prunes something.
        let narrow = PrescreenConfig {
            range: ScoreRange::half_open(80.0, 90.0),
            margin: 5.0,
            ..base
        };
        let r = prescreen_pairs(&p, &traces, 0..300, 300..450, &narrow).expect("narrow");
        assert!(r.kept() < r.total_pairs(), "narrow band must prune");
    }

    #[test]
    fn margin_zero_same_family_prescreen_agrees_with_sweep() {
        // When the main sweep uses the SAME n-gram family, predictions equal
        // final scores, so a margin-0 prescreen must keep exactly the pairs
        // the sweep scores in range.
        let (p, traces) = setup();
        let train = p.encode_segment(&traces, 0..300).expect("train");
        let dev = p.encode_segment(&traces, 300..450).expect("dev");
        let range = ScoreRange::half_open(30.0, 95.0);
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("sweep");
        let in_range: Vec<(usize, usize)> = trained
            .models()
            .iter()
            .filter(|m| range.contains(m.train_score))
            .map(|m| (m.src, m.dst))
            .collect();
        let cfg = PrescreenConfig {
            range,
            margin: 0.0,
            ..PrescreenConfig::default()
        };
        let r = prescreen_pairs(&p, &traces, 0..300, 300..450, &cfg).expect("prescreen");
        let survivors = r.survivors();
        for pair in &in_range {
            assert!(
                survivors.contains(pair),
                "prescreen pruned in-range pair {pair:?}"
            );
        }
    }

    #[test]
    fn too_few_sensors_rejected() {
        let traces = vec![toggling("a", 400, 5, 0)];
        let cfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..200, cfg).expect("fit");
        let r = prescreen_pairs(&p, &traces, 0..200, 200..400, &PrescreenConfig::default());
        assert!(matches!(r, Err(CoreError::TooFewSensors { available: 1 })));
    }
}
