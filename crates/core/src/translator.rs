//! Pairwise sequence translators.
//!
//! The paper quantifies the relationship between two sensors by *training a
//! translation model* from one sensor's language to the other's and scoring
//! its translations with BLEU. This module defines the [`Translator`]
//! abstraction plus two implementations:
//!
//! * [`NmtTranslator`] — the paper's model: a seq2seq LSTM with Luong
//!   attention (from `mdes-nn`);
//! * [`NgramTranslator`] — a position-aligned statistical model with a
//!   target-bigram term. It trains in microseconds and preserves the score
//!   *ordering* (strongly coupled pairs score high, unrelated pairs low),
//!   which makes full 128-sensor sweeps feasible on one CPU core. The
//!   `exp_ablation_translator` experiment quantifies its agreement with the
//!   NMT scores.

use crate::error::CoreError;
use mdes_nn::{Seq2Seq, Seq2SeqConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A trained sentence translator from one sensor language to another.
pub trait Translator: Send {
    /// Translates a source sentence into `out_len` target word ids.
    fn translate(&self, src: &[u32], out_len: usize) -> Vec<u32>;

    /// Translates a batch of source sentences, one output row per input.
    ///
    /// Must return exactly what per-sentence [`Translator::translate`] calls
    /// would: implementations may batch for throughput (the NMT path decodes
    /// the whole batch through one GEMM per step) but not change results.
    fn translate_batch(&self, srcs: &[&[u32]], out_len: usize) -> Vec<Vec<u32>> {
        srcs.iter().map(|s| self.translate(s, out_len)).collect()
    }
}

/// Which translator family Algorithm 1 trains for every sensor pair.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TranslatorConfig {
    /// Statistical position-aligned model (fast path).
    Ngram(NgramConfig),
    /// Neural seq2seq with attention (the paper's model).
    Nmt(Seq2SeqConfig),
}

impl TranslatorConfig {
    /// The default fast configuration.
    #[must_use]
    pub fn fast() -> Self {
        TranslatorConfig::Ngram(NgramConfig::default())
    }

    /// The paper-faithful neural configuration (scaled-down dimensions).
    #[must_use]
    pub fn neural() -> Self {
        TranslatorConfig::Nmt(Seq2SeqConfig::default())
    }
}

/// A trained translator of either family, serializable for persistence.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AnyTranslator {
    /// Statistical position-aligned model.
    Ngram(NgramTranslator),
    /// Neural seq2seq with attention.
    Nmt(NmtTranslator),
}

impl Translator for AnyTranslator {
    fn translate(&self, src: &[u32], out_len: usize) -> Vec<u32> {
        match self {
            AnyTranslator::Ngram(t) => t.translate(src, out_len),
            AnyTranslator::Nmt(t) => t.translate(src, out_len),
        }
    }

    fn translate_batch(&self, srcs: &[&[u32]], out_len: usize) -> Vec<Vec<u32>> {
        match self {
            AnyTranslator::Ngram(t) => t.translate_batch(srcs, out_len),
            AnyTranslator::Nmt(t) => t.translate_batch(srcs, out_len),
        }
    }
}

/// Trains a translator of the configured family on aligned sentence pairs.
///
/// `src_vocab` / `tgt_vocab` are total vocabulary sizes (reserved tokens
/// included); `bos` is the target begin-of-sentence id.
///
/// # Errors
///
/// Returns an error if the corpus is empty or malformed.
pub fn train_translator(
    cfg: &TranslatorConfig,
    pairs: &[(Vec<u32>, Vec<u32>)],
    src_vocab: usize,
    tgt_vocab: usize,
    bos: u32,
) -> Result<AnyTranslator, CoreError> {
    if pairs.is_empty() {
        return Err(CoreError::EmptyCorpus);
    }
    match cfg {
        TranslatorConfig::Ngram(c) => Ok(AnyTranslator::Ngram(NgramTranslator::fit(pairs, c))),
        TranslatorConfig::Nmt(c) => {
            let usize_pairs: Vec<(Vec<usize>, Vec<usize>)> = pairs
                .iter()
                .map(|(s, t)| {
                    (
                        s.iter().map(|&w| w as usize).collect(),
                        t.iter().map(|&w| w as usize).collect(),
                    )
                })
                .collect();
            let mut model = Seq2Seq::new(src_vocab, tgt_vocab, bos as usize, c.clone());
            model.fit(&usize_pairs)?;
            Ok(AnyTranslator::Nmt(NmtTranslator { model }))
        }
    }
}

/// Neural translator wrapping [`Seq2Seq`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NmtTranslator {
    model: Seq2Seq,
}

impl NmtTranslator {
    /// The wrapped model.
    pub fn model(&self) -> &Seq2Seq {
        &self.model
    }
}

impl Translator for NmtTranslator {
    fn translate(&self, src: &[u32], out_len: usize) -> Vec<u32> {
        let src: Vec<usize> = src.iter().map(|&w| w as usize).collect();
        match self.model.translate(&src, out_len) {
            Ok(out) => out.into_iter().map(|w| w as u32).collect(),
            // Inference errors only arise from malformed input (empty/ragged
            // sentences); surface a deterministic degenerate translation.
            Err(_) => vec![0; out_len],
        }
    }

    fn translate_batch(&self, srcs: &[&[u32]], out_len: usize) -> Vec<Vec<u32>> {
        let usize_srcs: Vec<Vec<usize>> = srcs
            .iter()
            .map(|s| s.iter().map(|&w| w as usize).collect())
            .collect();
        let refs: Vec<&[usize]> = usize_srcs.iter().map(Vec::as_slice).collect();
        match self.model.translate_batch(&refs, out_len) {
            Ok(outs) => outs
                .into_iter()
                .map(|o| o.into_iter().map(|w| w as u32).collect())
                .collect(),
            // Batch decoding requires equal-length sentences; on malformed
            // input fall back to the per-sentence path, which degrades to a
            // deterministic degenerate translation sentence by sentence.
            Err(_) => srcs.iter().map(|s| self.translate(s, out_len)).collect(),
        }
    }
}

/// Hyper-parameters for [`NgramTranslator`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NgramConfig {
    /// Additive smoothing constant.
    pub alpha: f64,
    /// Weight of the target-bigram language-model term (the position-aligned
    /// channel term has weight 1).
    pub lm_weight: f64,
    /// Candidate beam for the marginal fallback: when the channel has no
    /// entry for a source word, only the `fallback_beam` most frequent
    /// target words at that position are scored.
    pub fallback_beam: usize,
}

impl Default for NgramConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            lm_weight: 0.3,
            fallback_beam: 50,
        }
    }
}

/// Position-aligned statistical translator with a target-bigram term.
///
/// For target position `p`, candidate scores combine `P(tgt | src_p, p)`
/// (channel) and `P(tgt | prev_tgt)` (language model), both with additive
/// smoothing; decoding is greedy left-to-right.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NgramTranslator {
    cfg: NgramConfig,
    /// channel[p][src] -> target counts at position p.
    channel: Vec<HashMap<u32, HashMap<u32, u32>>>,
    /// Position marginals of target words.
    marginal: Vec<HashMap<u32, u32>>,
    /// Top fallback candidates per position (most frequent first, then by
    /// id), capped at `cfg.fallback_beam`.
    marginal_top: Vec<Vec<u32>>,
    /// Top channel candidates per (position, source word), capped at
    /// `cfg.fallback_beam` (decode-time beam).
    channel_top: Vec<HashMap<u32, Vec<u32>>>,
    /// Target bigram counts.
    bigram: HashMap<u32, HashMap<u32, u32>>,
    tgt_len: usize,
}

impl NgramTranslator {
    /// Fits the count tables on aligned sentence pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty (call through [`train_translator`] for a
    /// `Result`-based entry point).
    pub fn fit(pairs: &[(Vec<u32>, Vec<u32>)], cfg: &NgramConfig) -> Self {
        assert!(
            !pairs.is_empty(),
            "ngram translator needs at least one pair"
        );
        let tgt_len = pairs[0].1.len();
        let src_len = pairs[0].0.len();
        let positions = tgt_len.min(src_len).max(tgt_len);
        let mut channel: Vec<HashMap<u32, HashMap<u32, u32>>> = vec![HashMap::new(); positions];
        let mut marginal: Vec<HashMap<u32, u32>> = vec![HashMap::new(); tgt_len];
        let mut bigram: HashMap<u32, HashMap<u32, u32>> = HashMap::new();
        for (src, tgt) in pairs {
            let mut prev: Option<u32> = None;
            for (p, &t) in tgt.iter().enumerate() {
                // Align by relative position when lengths differ.
                let sp = if tgt_len == src_len {
                    p
                } else {
                    p * src_len / tgt_len.max(1)
                };
                if let Some(&s) = src.get(sp) {
                    *channel[p.min(positions - 1)]
                        .entry(s)
                        .or_default()
                        .entry(t)
                        .or_insert(0) += 1;
                }
                *marginal[p].entry(t).or_insert(0) += 1;
                if let Some(pr) = prev {
                    *bigram.entry(pr).or_default().entry(t).or_insert(0) += 1;
                }
                prev = Some(t);
            }
        }
        let beam = cfg.fallback_beam.max(1);
        let top_k = |m: &HashMap<u32, u32>| -> Vec<u32> {
            let mut words: Vec<(u32, u32)> = m.iter().map(|(&w, &c)| (w, c)).collect();
            words.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            words.truncate(beam);
            words.into_iter().map(|(w, _)| w).collect()
        };
        let marginal_top = marginal.iter().map(&top_k).collect();
        let channel_top = channel
            .iter()
            .map(|pos| pos.iter().map(|(&src, m)| (src, top_k(m))).collect())
            .collect();
        Self {
            cfg: *cfg,
            channel,
            marginal,
            marginal_top,
            channel_top,
            bigram,
            tgt_len,
        }
    }

    /// Mean per-word natural-log likelihood of `tgt` given `src` under the
    /// position-aligned channel model with additive smoothing over a
    /// `tgt_vocab`-sized vocabulary (positional-marginal backoff when the
    /// source word was never seen at that position).
    ///
    /// This powers the *likelihood score* alternative to BLEU explored by
    /// the `exp_ablation_metric` experiment: BLEU judges the single decoded
    /// sentence, while the likelihood integrates over the model's whole
    /// predictive distribution.
    ///
    /// # Panics
    ///
    /// Panics if `tgt_vocab` is zero.
    pub fn log_likelihood(&self, src: &[u32], tgt: &[u32], tgt_vocab: usize) -> f64 {
        assert!(tgt_vocab > 0, "target vocabulary must be non-empty");
        if tgt.is_empty() {
            return 0.0;
        }
        let v = tgt_vocab as f64;
        let mut total = 0.0;
        for (p, &t) in tgt.iter().enumerate() {
            let mp = p.min(self.tgt_len.saturating_sub(1));
            let sp = if src.is_empty() {
                0
            } else {
                (p * src.len() / tgt.len().max(1)).min(src.len() - 1)
            };
            let counts = src
                .get(sp)
                .and_then(|sw| {
                    self.channel
                        .get(mp.min(self.channel.len().checked_sub(1)?))?
                        .get(sw)
                })
                .filter(|m| !m.is_empty())
                .or_else(|| self.marginal.get(mp));
            let (c, n) = match counts {
                Some(m) => (
                    *m.get(&t).unwrap_or(&0) as f64,
                    m.values().map(|&c| c as f64).sum::<f64>(),
                ),
                None => (0.0, 0.0),
            };
            total += ((c + self.cfg.alpha) / (n + self.cfg.alpha * v)).ln();
        }
        total / tgt.len() as f64
    }

    /// Likelihood score on a 0–100 scale comparable to BLEU: `100` times the
    /// geometric-mean per-word probability over a corpus of sentence pairs.
    ///
    /// # Panics
    ///
    /// Panics if `tgt_vocab` is zero.
    pub fn likelihood_score(&self, pairs: &[(&[u32], &[u32])], tgt_vocab: usize) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let mean_ll = pairs
            .iter()
            .map(|(s, t)| self.log_likelihood(s, t, tgt_vocab))
            .sum::<f64>()
            / pairs.len() as f64;
        100.0 * mean_ll.exp()
    }

    /// Approximate heap footprint of the count tables in bytes (entry
    /// counts times entry sizes; map overhead ignored). Used by the serving
    /// layer to report shared-snapshot memory.
    pub fn approx_bytes(&self) -> usize {
        let pair = std::mem::size_of::<(u32, u32)>();
        let chan: usize = self
            .channel
            .iter()
            .flat_map(|pos| pos.values())
            .map(|m| m.len() * pair)
            .sum();
        let marg: usize = self.marginal.iter().map(|m| m.len() * pair).sum();
        let tops: usize = (self.marginal_top.iter().map(Vec::len).sum::<usize>()
            + self
                .channel_top
                .iter()
                .flat_map(|pos| pos.values())
                .map(Vec::len)
                .sum::<usize>())
            * std::mem::size_of::<u32>();
        let bigr: usize = self.bigram.values().map(|m| m.len() * pair).sum();
        chan + marg + tops + bigr
    }

    fn score(&self, counts: Option<&HashMap<u32, u32>>, word: u32) -> f64 {
        let (c, n, v) = match counts {
            Some(m) => (
                *m.get(&word).unwrap_or(&0) as f64,
                m.values().map(|&c| c as f64).sum::<f64>(),
                m.len().max(1) as f64,
            ),
            None => (0.0, 0.0, 1.0),
        };
        ((c + self.cfg.alpha) / (n + self.cfg.alpha * v)).ln()
    }
}

impl Translator for NgramTranslator {
    fn translate(&self, src: &[u32], out_len: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(out_len);
        let mut prev: Option<u32> = None;
        for p in 0..out_len {
            let mp = p.min(self.tgt_len.saturating_sub(1));
            let sp = if src.is_empty() {
                0
            } else {
                (p * src.len() / out_len.max(1)).min(src.len() - 1)
            };
            let chan = src.get(sp).and_then(|s| {
                self.channel
                    .get(mp.min(self.channel.len().checked_sub(1)?))?
                    .get(s)
            });
            // Candidates: precomputed channel beam if the source word was
            // seen at this position, else the positional-marginal beam. The
            // beams have a deterministic order (count-desc, then id), so
            // tie-breaking does not depend on hash iteration order.
            let chan_candidates = src.get(sp).and_then(|s| {
                self.channel_top
                    .get(mp.min(self.channel_top.len().checked_sub(1)?))?
                    .get(s)
            });
            let candidates: &[u32] = match chan_candidates {
                Some(c) if !c.is_empty() => c,
                _ => self.marginal_top.get(mp).map(Vec::as_slice).unwrap_or(&[]),
            };
            if candidates.is_empty() {
                out.push(0);
                prev = Some(0);
                continue;
            }
            let lm_counts = prev.and_then(|pr| self.bigram.get(&pr));
            let mut best = (candidates[0], f64::NEG_INFINITY);
            for &cand in candidates {
                let s = self.score(chan, cand) + self.cfg.lm_weight * self.score(lm_counts, cand);
                if s > best.1 {
                    best = (cand, s);
                }
            }
            out.push(best.0);
            prev = Some(best.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pairs where tgt word = src word + 100, deterministic.
    fn mapped_pairs(n: usize, len: usize) -> Vec<(Vec<u32>, Vec<u32>)> {
        (0..n)
            .map(|i| {
                let src: Vec<u32> = (0..len).map(|p| ((i + p) % 5) as u32 + 2).collect();
                let tgt: Vec<u32> = src.iter().map(|&w| w + 100).collect();
                (src, tgt)
            })
            .collect()
    }

    #[test]
    fn ngram_learns_deterministic_mapping() {
        let pairs = mapped_pairs(30, 6);
        let t = NgramTranslator::fit(&pairs, &NgramConfig::default());
        for (src, tgt) in pairs.iter().take(5) {
            assert_eq!(&t.translate(src, 6), tgt);
        }
    }

    #[test]
    fn ngram_handles_unseen_source_words() {
        let pairs = mapped_pairs(10, 4);
        let t = NgramTranslator::fit(&pairs, &NgramConfig::default());
        let out = t.translate(&[999, 999, 999, 999], 4);
        assert_eq!(out.len(), 4);
        // Falls back to positional marginals: outputs known target words.
        assert!(out.iter().all(|&w| (102..=106).contains(&w)));
    }

    #[test]
    fn ngram_output_length_honored() {
        let pairs = mapped_pairs(10, 4);
        let t = NgramTranslator::fit(&pairs, &NgramConfig::default());
        assert_eq!(t.translate(&[2, 3, 4, 5], 7).len(), 7);
        assert_eq!(t.translate(&[2, 3, 4, 5], 1).len(), 1);
    }

    #[test]
    fn train_translator_rejects_empty() {
        let r = train_translator(&TranslatorConfig::fast(), &[], 10, 10, 1);
        assert!(matches!(r, Err(CoreError::EmptyCorpus)));
    }

    #[test]
    fn nmt_translator_via_factory() {
        let pairs = mapped_pairs(20, 4);
        let cfg = TranslatorConfig::Nmt(Seq2SeqConfig {
            embed_dim: 12,
            hidden: 12,
            train_steps: 60,
            ..Seq2SeqConfig::default()
        });
        let t = train_translator(&cfg, &pairs, 8, 108, 1).expect("train");
        let out = t.translate(&pairs[0].0, 4);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|&w| w < 108));
    }

    #[test]
    fn ngram_batch_matches_per_sentence() {
        let pairs = mapped_pairs(30, 6);
        let t = NgramTranslator::fit(&pairs, &NgramConfig::default());
        let srcs: Vec<&[u32]> = pairs.iter().take(8).map(|(s, _)| s.as_slice()).collect();
        let batched = t.translate_batch(&srcs, 6);
        for (src, hyp) in srcs.iter().zip(&batched) {
            assert_eq!(hyp, &t.translate(src, 6));
        }
    }

    #[test]
    fn nmt_batch_matches_per_sentence() {
        let pairs = mapped_pairs(20, 4);
        let cfg = TranslatorConfig::Nmt(Seq2SeqConfig {
            embed_dim: 12,
            hidden: 12,
            train_steps: 60,
            ..Seq2SeqConfig::default()
        });
        let t = train_translator(&cfg, &pairs, 8, 108, 1).expect("train");
        let srcs: Vec<&[u32]> = pairs.iter().take(6).map(|(s, _)| s.as_slice()).collect();
        // Batched decoding routes every step through one GEMM over the whole
        // batch; rows are independent, so outputs must match exactly.
        let batched = t.translate_batch(&srcs, 4);
        for (src, hyp) in srcs.iter().zip(&batched) {
            assert_eq!(hyp, &t.translate(src, 4));
        }
    }

    #[test]
    fn nmt_batch_falls_back_on_ragged_input() {
        let pairs = mapped_pairs(20, 4);
        let cfg = TranslatorConfig::Nmt(Seq2SeqConfig {
            embed_dim: 12,
            hidden: 12,
            train_steps: 10,
            ..Seq2SeqConfig::default()
        });
        let t = train_translator(&cfg, &pairs, 8, 108, 1).expect("train");
        let a: Vec<u32> = pairs[0].0.clone();
        let b: Vec<u32> = pairs[1].0[..2].to_vec();
        let out = t.translate_batch(&[a.as_slice(), b.as_slice()], 4);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], t.translate(&a, 4));
        assert_eq!(out[1], t.translate(&b, 4));
    }

    #[test]
    fn likelihood_ranks_coupled_above_uncoupled() {
        let coupled = mapped_pairs(30, 6);
        let t = NgramTranslator::fit(&coupled, &NgramConfig::default());
        let good: Vec<(&[u32], &[u32])> = coupled
            .iter()
            .map(|(s, g)| (s.as_slice(), g.as_slice()))
            .collect();
        // Scramble targets to simulate an unrelated sensor.
        let scrambled: Vec<(Vec<u32>, Vec<u32>)> = coupled
            .iter()
            .enumerate()
            .map(|(i, (s, _))| (s.clone(), coupled[(i + 7) % coupled.len()].1.clone()))
            .collect();
        let bad: Vec<(&[u32], &[u32])> = scrambled
            .iter()
            .map(|(s, g)| (s.as_slice(), g.as_slice()))
            .collect();
        let hi = t.likelihood_score(&good, 120);
        let lo = t.likelihood_score(&bad, 120);
        assert!(hi > lo, "coupled {hi} should beat scrambled {lo}");
        assert!((0.0..=100.0).contains(&hi));
        assert!((0.0..=100.0).contains(&lo));
    }

    #[test]
    fn log_likelihood_of_training_data_is_high() {
        let pairs = mapped_pairs(200, 5);
        let t = NgramTranslator::fit(&pairs, &NgramConfig::default());
        let ll = t.log_likelihood(&pairs[0].0, &pairs[0].1, 120);
        // Deterministic mapping with enough evidence to dominate the
        // additive smoothing: per-word probability well above chance.
        assert!(ll > -0.4, "mean log-likelihood {ll}");
    }

    #[test]
    fn ngram_bigram_term_breaks_ties() {
        // Channel is ambiguous (same src word everywhere), so the bigram LM
        // must carry the sequential structure tgt = 7,8,7,8...
        let pairs: Vec<(Vec<u32>, Vec<u32>)> = (0..20)
            .map(|_| (vec![3u32; 6], vec![7u32, 8, 7, 8, 7, 8]))
            .collect();
        let t = NgramTranslator::fit(&pairs, &NgramConfig::default());
        let out = t.translate(&[3; 6], 6);
        assert_eq!(out, vec![7, 8, 7, 8, 7, 8]);
    }
}
