//! End-to-end framework facade: fit on normal data, then monitor.
//!
//! [`Mdes::fit`] runs the full offline phase of Fig. 1 — sequence filtering,
//! encryption, word/sentence generation, the pairwise translation sweep
//! (Algorithm 1) — and holds the resulting relationship graph.
//! [`Mdes::detect_range`] runs the online phase (Algorithm 2) on any later
//! sample range, and the knowledge-discovery helpers expose the global/local
//! subgraph views of §II-B.

use crate::algorithm1::{build_graph, GraphBuildConfig, TrainedGraph};
use crate::algorithm2::{detect, DetectionConfig, DetectionResult};
use crate::diagnosis::{diagnose, Diagnosis};
use crate::error::CoreError;
use crate::prescreen::{prescreen_pairs, PrescreenConfig, PrescreenResult};
use crate::sharded::{build_graph_sharded, ShardedSweepConfig, ShardedSweepReport};
use mdes_graph::{walktrap, Communities, RelGraph, ScoreRange, WalktrapConfig};
use mdes_lang::{LanguagePipeline, RawTrace, WindowConfig};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Full framework configuration.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MdesConfig {
    /// Windowing (characters -> words -> sentences).
    pub window: WindowConfig,
    /// Pairwise training sweep.
    pub build: GraphBuildConfig,
    /// Online detection.
    pub detection: DetectionConfig,
}

/// Scaling knobs for [`Mdes::fit_prescreened`]: the n-gram prescreen plus
/// the sharding of the surviving sweep. The per-pair training configuration
/// comes from [`MdesConfig::build`] as usual.
#[derive(Clone, Debug)]
pub struct ScalableFitConfig {
    /// Prescreen stage. Its `range` should normally match (or contain) the
    /// detection validity range, since pairs outside it never become valid
    /// edges; [`ScalableFitConfig::for_detection`] sets this up.
    pub prescreen: PrescreenConfig,
    /// Pairs per sweep shard.
    pub pairs_per_shard: usize,
    /// Directory for per-shard resume checkpoints (`None` disables).
    pub checkpoint_dir: Option<String>,
    /// Within-shard checkpoint cadence.
    pub checkpoint_every: usize,
}

impl Default for ScalableFitConfig {
    fn default() -> Self {
        let sharded = ShardedSweepConfig::default();
        Self {
            prescreen: PrescreenConfig::default(),
            pairs_per_shard: sharded.pairs_per_shard,
            checkpoint_dir: None,
            checkpoint_every: sharded.checkpoint_every,
        }
    }
}

impl ScalableFitConfig {
    /// A configuration whose prescreen band is derived from `detection`'s
    /// validity range (widened by `margin` BLEU points on both sides).
    pub fn for_detection(detection: &DetectionConfig, margin: f64) -> Self {
        Self {
            prescreen: PrescreenConfig {
                range: detection.valid_range,
                margin,
                ..PrescreenConfig::default()
            },
            ..Self::default()
        }
    }
}

/// A fitted analytics framework instance.
///
/// Serializable: a trained instance can be persisted with `serde` and
/// restored for online monitoring without retraining.
#[derive(Clone, Serialize, Deserialize)]
pub struct Mdes {
    cfg: MdesConfig,
    lang: LanguagePipeline,
    trained: TrainedGraph,
}

impl std::fmt::Debug for Mdes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mdes")
            .field("sensors", &self.lang.sensor_count())
            .field("edges", &self.trained.graph.edge_count())
            .finish()
    }
}

impl Mdes {
    /// Offline phase: fits languages on `train`, trains a translator per
    /// ordered sensor pair, scores each on `dev`, and assembles the graph.
    ///
    /// # Errors
    ///
    /// Propagates language-pipeline and training errors (empty/constant
    /// data, bad ranges, fewer than two surviving sensors).
    pub fn fit(
        traces: &[RawTrace],
        train: Range<usize>,
        dev: Range<usize>,
        cfg: MdesConfig,
    ) -> Result<Self, CoreError> {
        // Reject invalid windowing at the construction boundary: a config
        // assembled in code (bypassing the validating `Deserialize`) must
        // surface `ZeroWindowParameter` here, not panic mid-windowing.
        cfg.window.validate().map_err(CoreError::from)?;
        let lang = LanguagePipeline::fit(traces, train.clone(), cfg.window)?;
        let train_sets = lang.encode_segment(traces, train)?;
        let dev_sets = lang.encode_segment(traces, dev)?;
        let trained = build_graph(&lang, &train_sets, &dev_sets, &cfg.build)?;
        Ok(Self { cfg, lang, trained })
    }

    /// Scalable offline phase: prescreens all ordered pairs with the n-gram
    /// translator, then trains only the survivors in independently
    /// checkpointed shards with per-shard streamed corpora. The fitted
    /// instance behaves exactly like one from [`Mdes::fit`], except pairs
    /// the prescreen pruned have no model (and no edge) — by construction
    /// those pairs could not have produced valid edges anyway.
    ///
    /// Returns the instance plus the prescreen and sweep reports, so
    /// callers can record recall, pruning, and memory measurements.
    ///
    /// # Errors
    ///
    /// Propagates language-pipeline, prescreen, and sharded-sweep errors;
    /// [`CoreError::NoValidModels`] when the prescreen prunes every pair.
    pub fn fit_prescreened(
        traces: &[RawTrace],
        train: Range<usize>,
        dev: Range<usize>,
        cfg: MdesConfig,
        scale: &ScalableFitConfig,
    ) -> Result<(Self, PrescreenResult, ShardedSweepReport), CoreError> {
        cfg.window.validate().map_err(CoreError::from)?;
        let lang = LanguagePipeline::fit(traces, train.clone(), cfg.window)?;
        let screened =
            prescreen_pairs(&lang, traces, train.clone(), dev.clone(), &scale.prescreen)?;
        let sharded_cfg = ShardedSweepConfig {
            build: cfg.build.clone(),
            pairs_per_shard: scale.pairs_per_shard,
            checkpoint_dir: scale.checkpoint_dir.clone(),
            checkpoint_every: scale.checkpoint_every,
        };
        let (trained, report) = build_graph_sharded(
            &lang,
            traces,
            train,
            dev,
            &screened.survivors(),
            &sharded_cfg,
        )?;
        Ok((Self { cfg, lang, trained }, screened, report))
    }

    /// Assembles an instance from an externally built graph (e.g. a sharded
    /// sweep driven through the lower-level
    /// [`build_graph_sharded`](crate::sharded::build_graph_sharded) API).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TooFewSensors`] when `trained` references a
    /// sensor index outside `lang`'s surviving languages — the graph and
    /// pipeline must come from the same fit.
    pub fn from_parts(
        cfg: MdesConfig,
        lang: LanguagePipeline,
        trained: TrainedGraph,
    ) -> Result<Self, CoreError> {
        let n = lang.sensor_count();
        let max_ref = trained
            .models()
            .iter()
            .flat_map(|m| [m.src, m.dst])
            .max()
            .map_or(0, |m| m + 1);
        if max_ref > n {
            return Err(CoreError::TooFewSensors { available: n });
        }
        Ok(Self { cfg, lang, trained })
    }

    /// The fitted language pipeline.
    pub fn language(&self) -> &LanguagePipeline {
        &self.lang
    }

    /// The trained pairwise models and graph.
    pub fn trained(&self) -> &TrainedGraph {
        &self.trained
    }

    /// The full multivariate relationship graph (Ori-MVRG).
    pub fn graph(&self) -> &RelGraph {
        &self.trained.graph
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MdesConfig {
        &self.cfg
    }

    /// Online phase: detects anomalies over `test` samples of the same
    /// traces.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid ranges or when no model falls in the
    /// validity range.
    pub fn detect_range(
        &self,
        traces: &[RawTrace],
        test: Range<usize>,
    ) -> Result<DetectionResult, CoreError> {
        let test_sets = self.lang.encode_segment(traces, test)?;
        detect(&self.trained, &test_sets, &self.cfg.detection)
    }

    /// Global subgraph at a score range (§III-B1).
    pub fn global_subgraph(&self, range: &ScoreRange) -> RelGraph {
        self.trained.graph.subgraph(range)
    }

    /// Local subgraph: global subgraph with popular sensors removed
    /// (§III-B2). `popular_threshold = None` uses the scaled paper threshold.
    pub fn local_subgraph(&self, range: &ScoreRange, popular_threshold: Option<usize>) -> RelGraph {
        let sub = self.global_subgraph(range);
        let thr = popular_threshold.unwrap_or_else(|| sub.scaled_popular_threshold());
        let popular = sub.popular(thr);
        sub.without_nodes(&popular)
    }

    /// Sensor communities of the local subgraph via Walktrap (§II-B).
    pub fn communities(&self, range: &ScoreRange, popular_threshold: Option<usize>) -> Communities {
        walktrap(
            &self.local_subgraph(range, popular_threshold),
            &WalktrapConfig::default(),
        )
    }

    /// Diagnoses one detection timestamp against the local subgraph at the
    /// detection validity range.
    pub fn diagnose_alerts(&self, alerts: &[(usize, usize)]) -> Diagnosis {
        let local = self.local_subgraph(&self.cfg.detection.valid_range, None);
        diagnose(&local, alerts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_synth::plant::{generate, PlantConfig};

    fn small_plant_cfg() -> MdesConfig {
        MdesConfig {
            window: WindowConfig {
                word_len: 5,
                word_stride: 1,
                sent_len: 6,
                sent_stride: 6,
            },
            ..MdesConfig::default()
        }
    }

    fn fitted() -> (Mdes, mdes_synth::plant::PlantData) {
        let plant = generate(&PlantConfig {
            n_sensors: 10,
            days: 12,
            minutes_per_day: 288,
            n_components: 3,
            anomaly_days: vec![11],
            precursor_days: vec![],
            ..PlantConfig::default()
        });
        let train = plant.days_range(1, 4);
        let dev = plant.days_range(5, 6);
        let m = Mdes::fit(&plant.traces, train, dev, small_plant_cfg()).expect("fit");
        (m, plant)
    }

    #[test]
    fn fit_builds_dense_graph() {
        let (m, _) = fitted();
        let n = m.language().sensor_count();
        assert!(n >= 2);
        assert_eq!(m.graph().edge_count(), n * (n - 1));
    }

    #[test]
    fn fit_prescreened_with_open_band_matches_fit() {
        let (m, plant) = fitted();
        let train = plant.days_range(1, 4);
        let dev = plant.days_range(5, 6);
        // The full BLEU band with zero margin keeps every pair, so the
        // prescreened + sharded path must reproduce the monolithic graph.
        let scale = ScalableFitConfig {
            prescreen: crate::prescreen::PrescreenConfig {
                range: ScoreRange::closed(0.0, 100.0),
                margin: 0.0,
                ..crate::prescreen::PrescreenConfig::default()
            },
            pairs_per_shard: 7,
            checkpoint_dir: None,
            checkpoint_every: 4,
        };
        let (m2, screened, report) =
            Mdes::fit_prescreened(&plant.traces, train, dev, small_plant_cfg(), &scale)
                .expect("prescreened fit");
        assert_eq!(screened.pruned(), 0);
        let n = m.language().sensor_count();
        assert_eq!(report.pairs_total, n * (n - 1));
        assert!(report.shards >= 2, "expected multiple shards");
        assert_eq!(m2.graph().edge_count(), m.graph().edge_count());
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    assert_eq!(m2.graph().score(i, j), m.graph().score(i, j));
                }
            }
        }
    }

    #[test]
    fn from_parts_reassembles_a_working_instance() {
        let (m, plant) = fitted();
        let Mdes {
            mut cfg,
            lang,
            trained,
        } = m;
        cfg.detection.valid_range = ScoreRange::closed(40.0, 100.0);
        let m2 = Mdes::from_parts(cfg, lang, trained).expect("matching parts");
        assert!(m2.graph().edge_count() > 0);
        m2.detect_range(&plant.traces, plant.day_range(8))
            .expect("reassembled instance detects");
    }

    #[test]
    fn anomalous_day_scores_higher_than_normal_day() {
        let (m, plant) = fitted();
        // Use a generous validity range — the miniature plant's score
        // distribution differs from the 128-sensor paper setup.
        let mut mdes = m;
        mdes.cfg.detection.valid_range = ScoreRange::closed(40.0, 100.0);
        let normal = mdes
            .detect_range(&plant.traces, plant.day_range(8))
            .expect("normal detection");
        let anomalous = mdes
            .detect_range(&plant.traces, plant.day_range(11))
            .expect("anomalous detection");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mn, ma) = (mean(&normal.scores), mean(&anomalous.scores));
        assert!(ma > mn, "anomalous {ma} should exceed normal {mn}");
    }

    #[test]
    fn knowledge_discovery_views_consistent() {
        let (m, _) = fitted();
        let range = ScoreRange::closed(0.0, 100.0);
        let global = m.global_subgraph(&range);
        assert_eq!(global.edge_count(), m.graph().edge_count());
        let local = m.local_subgraph(&range, Some(3));
        assert!(local.edge_count() <= global.edge_count());
        let comms = m.communities(&range, Some(global.len() + 1));
        // With no popular removal, every active node is in some community.
        let members: usize = comms.groups.iter().map(Vec::len).sum();
        assert_eq!(members, global.active_nodes().len());
    }

    #[test]
    fn serde_roundtrip_preserves_graph_and_detection() {
        let (mut m, plant) = fitted();
        m.cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
        let json = serde_json::to_string(&m).expect("serialize");
        let restored: Mdes = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(restored.graph(), m.graph());
        let ra = m
            .detect_range(&plant.traces, plant.day_range(8))
            .expect("orig");
        let rb = restored
            .detect_range(&plant.traces, plant.day_range(8))
            .expect("restored");
        assert_eq!(ra, rb);
    }

    #[test]
    fn diagnose_alerts_roundtrip() {
        let (mut m, plant) = fitted();
        m.cfg.detection.valid_range = ScoreRange::closed(40.0, 100.0);
        let res = m
            .detect_range(&plant.traces, plant.day_range(11))
            .expect("detect");
        let worst = (0..res.scores.len())
            .max_by(|&a, &b| res.scores[a].partial_cmp(&res.scores[b]).expect("finite"))
            .expect("non-empty");
        let diag = m.diagnose_alerts(&res.alerts[worst]);
        // Ranking lists every sensor that participates in a broken pair.
        let alerted: std::collections::HashSet<usize> = res.alerts[worst]
            .iter()
            .flat_map(|&(s, d)| [s, d])
            .collect();
        assert_eq!(diag.sensor_ranking.len(), alerted.len());
    }
}
