//! Algorithm 1 — Multivariate Relationship Graph Generation.
//!
//! For every ordered sensor pair `(i, j)` a directional translator is
//! trained on time-aligned training sentences and scored with corpus BLEU on
//! the development set; the score becomes edge `i -> j` of the
//! [`RelGraph`]. The sweep is embarrassingly parallel and runs on a small
//! thread pool (crossbeam scoped threads pulling pair indices from an atomic
//! counter).

use crate::error::CoreError;
use crate::translator::{train_translator, AnyTranslator, Translator, TranslatorConfig};
use mdes_bleu::{corpus_bleu, BleuConfig};
use mdes_graph::RelGraph;
use mdes_lang::{LanguagePipeline, SentenceSet, Vocab};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Configuration of the pairwise training sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphBuildConfig {
    /// Translator family and hyper-parameters (shared across all pairs, as
    /// the paper requires for BLEU comparability).
    pub translator: TranslatorConfig,
    /// Corpus-BLEU configuration for development scoring.
    pub bleu: BleuConfig,
    /// Worker threads (0 = number of available CPUs).
    pub threads: usize,
    /// Quantile of the per-sentence development BLEU distribution stored as
    /// each pair's *calibrated floor* (see
    /// [`BrokenRule::DevQuantileFloor`](crate::algorithm2::BrokenRule)).
    pub floor_quantile: f64,
}

impl Default for GraphBuildConfig {
    fn default() -> Self {
        Self {
            translator: TranslatorConfig::fast(),
            bleu: BleuConfig {
                smoothing: mdes_bleu::Smoothing::AddOne,
                ..BleuConfig::default()
            },
            threads: 0,
            floor_quantile: 0.1,
        }
    }
}

/// One trained directional pair model with its development score.
#[derive(Clone, Serialize, Deserialize)]
pub struct PairModel {
    /// Source sensor index (into the pipeline's surviving sensors).
    pub src: usize,
    /// Target sensor index.
    pub dst: usize,
    /// Development-set corpus BLEU (`s(i, j)` in the paper).
    pub train_score: f64,
    /// Calibrated floor: the `floor_quantile` quantile of the per-sentence
    /// development BLEU distribution. Normal windows rarely score below it,
    /// so comparing test sentences against this floor instead of the corpus
    /// mean sharply reduces false positives (ablation A8).
    pub dev_floor: f64,
    /// Wall-clock seconds spent training and scoring this model (Fig. 4a).
    pub runtime_secs: f64,
    translator: AnyTranslator,
}

impl PairModel {
    /// Translates a source sentence with this pair's model.
    pub fn translate(&self, src: &[u32], out_len: usize) -> Vec<u32> {
        self.translator.translate(src, out_len)
    }

    /// Translates a batch of source sentences with this pair's model.
    ///
    /// Results equal per-sentence [`PairModel::translate`] calls; the NMT
    /// family decodes the whole batch through one GEMM per step.
    pub fn translate_batch(&self, srcs: &[&[u32]], out_len: usize) -> Vec<Vec<u32>> {
        self.translator.translate_batch(srcs, out_len)
    }
}

impl std::fmt::Debug for PairModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairModel")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("train_score", &self.train_score)
            .field("runtime_secs", &self.runtime_secs)
            .finish()
    }
}

/// The output of Algorithm 1: the graph plus every pair model.
///
/// Serializable for persistence; the pair lookup index is rebuilt on
/// deserialization.
#[derive(Clone, Serialize, Deserialize)]
#[serde(from = "TrainedGraphShadow")]
pub struct TrainedGraph {
    /// The multivariate relationship graph (edge weights = dev BLEU).
    pub graph: RelGraph,
    models: Vec<PairModel>,
    #[serde(skip)]
    index: HashMap<(usize, usize), usize>,
}

#[derive(Deserialize)]
struct TrainedGraphShadow {
    graph: RelGraph,
    models: Vec<PairModel>,
}

impl From<TrainedGraphShadow> for TrainedGraph {
    fn from(shadow: TrainedGraphShadow) -> Self {
        let index = shadow
            .models
            .iter()
            .enumerate()
            .map(|(k, m)| ((m.src, m.dst), k))
            .collect();
        TrainedGraph {
            graph: shadow.graph,
            models: shadow.models,
            index,
        }
    }
}

impl TrainedGraph {
    /// All pair models.
    pub fn models(&self) -> &[PairModel] {
        &self.models
    }

    /// The model for pair `(src, dst)`, if trained.
    pub fn model(&self, src: usize, dst: usize) -> Option<&PairModel> {
        self.index.get(&(src, dst)).map(|&k| &self.models[k])
    }

    /// Per-model runtimes in seconds (for the Fig. 4a CDF).
    pub fn runtimes(&self) -> Vec<f64> {
        self.models.iter().map(|m| m.runtime_secs).collect()
    }

    /// All development BLEU scores (for the Fig. 4b histogram).
    pub fn scores(&self) -> Vec<f64> {
        self.models.iter().map(|m| m.train_score).collect()
    }
}

impl std::fmt::Debug for TrainedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedGraph")
            .field("nodes", &self.graph.len())
            .field("models", &self.models.len())
            .finish()
    }
}

/// Runs Algorithm 1: trains two directional models per sensor pair and
/// assembles the relationship graph.
///
/// `train_sets` and `dev_sets` must come from
/// [`LanguagePipeline::encode_segment`] on the same pipeline (one set per
/// surviving sensor, sentences time-aligned across sensors).
///
/// # Errors
///
/// Returns an error if fewer than two sensors survive, any corpus is empty,
/// or corpora are misaligned.
pub fn build_graph(
    pipeline: &LanguagePipeline,
    train_sets: &[SentenceSet],
    dev_sets: &[SentenceSet],
    cfg: &GraphBuildConfig,
) -> Result<TrainedGraph, CoreError> {
    let n = pipeline.sensor_count();
    if n < 2 {
        return Err(CoreError::TooFewSensors { available: n });
    }
    validate_alignment(train_sets, n)?;
    validate_alignment(dev_sets, n)?;

    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .filter(|(i, j)| i != j)
        .collect();

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<PairModel>>> =
        Mutex::new((0..pairs.len()).map(|_| None).collect());
    let failure: Mutex<Option<CoreError>> = Mutex::new(None);

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };

    crossbeam::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= pairs.len() || failure.lock().is_some() {
                    break;
                }
                let (i, j) = pairs[k];
                match train_pair(pipeline, train_sets, dev_sets, i, j, cfg) {
                    Ok(model) => results.lock()[k] = Some(model),
                    Err(e) => *failure.lock() = Some(e),
                }
            });
        }
    })
    .expect("worker threads do not panic");

    if let Some(e) = failure.into_inner() {
        return Err(e);
    }

    let names: Vec<String> = pipeline
        .languages()
        .iter()
        .map(|l| l.name.clone())
        .collect();
    let mut graph = RelGraph::new(names);
    let mut models = Vec::with_capacity(pairs.len());
    let mut index = HashMap::with_capacity(pairs.len());
    for model in results.into_inner().into_iter().flatten() {
        graph.set_score(model.src, model.dst, model.train_score);
        index.insert((model.src, model.dst), models.len());
        models.push(model);
    }
    Ok(TrainedGraph {
        graph,
        models,
        index,
    })
}

fn validate_alignment(sets: &[SentenceSet], n: usize) -> Result<(), CoreError> {
    if sets.len() != n {
        return Err(CoreError::MisalignedCorpora {
            expected: n,
            found: sets.len(),
        });
    }
    let count = sets.first().map_or(0, SentenceSet::len);
    if count == 0 {
        return Err(CoreError::EmptyCorpus);
    }
    for s in sets {
        if s.len() != count {
            return Err(CoreError::MisalignedCorpora {
                expected: count,
                found: s.len(),
            });
        }
    }
    Ok(())
}

fn train_pair(
    pipeline: &LanguagePipeline,
    train_sets: &[SentenceSet],
    dev_sets: &[SentenceSet],
    i: usize,
    j: usize,
    cfg: &GraphBuildConfig,
) -> Result<PairModel, CoreError> {
    let start = Instant::now();
    let pairs: Vec<(Vec<u32>, Vec<u32>)> = train_sets[i]
        .sentences
        .iter()
        .zip(&train_sets[j].sentences)
        .map(|(s, t)| (s.clone(), t.clone()))
        .collect();
    let src_vocab = pipeline.languages()[i].vocab.size();
    let tgt_vocab = pipeline.languages()[j].vocab.size();
    let translator = train_translator(&cfg.translator, &pairs, src_vocab, tgt_vocab, Vocab::BOS)?;

    let out_len = pipeline.config().sent_len;
    let dev_srcs: Vec<&[u32]> = dev_sets[i].sentences.iter().map(Vec::as_slice).collect();
    let hyps: Vec<Vec<u32>> = translator.translate_batch(&dev_srcs, out_len);
    let score = corpus_bleu(&hyps, &dev_sets[j].sentences, &cfg.bleu);
    // Per-sentence dev scores calibrate the broken-relationship floor.
    let sentence_cfg = mdes_bleu::BleuConfig::sentence();
    let mut sentence_scores: Vec<f64> = hyps
        .iter()
        .zip(&dev_sets[j].sentences)
        .map(|(h, r)| mdes_bleu::sentence_bleu(h, r, &sentence_cfg))
        .collect();
    sentence_scores.sort_by(f64::total_cmp);
    let q = cfg.floor_quantile.clamp(0.0, 1.0);
    let idx = ((sentence_scores.len() as f64 - 1.0) * q).round() as usize;
    let dev_floor = sentence_scores.get(idx).copied().unwrap_or(0.0);
    Ok(PairModel {
        src: i,
        dst: j,
        train_score: score,
        dev_floor,
        runtime_secs: start.elapsed().as_secs_f64(),
        translator,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_lang::{RawTrace, WindowConfig};

    fn toggling(name: &str, n: usize, period: usize, phase: usize) -> RawTrace {
        RawTrace::new(
            name,
            (0..n)
                .map(|t| {
                    if ((t + phase) / period).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    }

    fn setup() -> (
        LanguagePipeline,
        Vec<SentenceSet>,
        Vec<SentenceSet>,
        Vec<RawTrace>,
    ) {
        // Sensors a, b share a period (strongly related); c is unrelated.
        let traces = vec![
            toggling("a", 600, 5, 0),
            toggling("b", 600, 5, 2),
            toggling("c", 600, 7, 0),
        ];
        let cfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..300, cfg).expect("fit");
        let train = p.encode_segment(&traces, 0..300).expect("train");
        let dev = p.encode_segment(&traces, 300..450).expect("dev");
        (p, train, dev, traces)
    }

    #[test]
    fn builds_full_directed_graph() {
        let (p, train, dev, _) = setup();
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        assert_eq!(trained.graph.len(), 3);
        assert_eq!(trained.graph.edge_count(), 6);
        assert_eq!(trained.models().len(), 6);
        assert!(trained.model(0, 1).is_some());
        assert!(trained.model(0, 0).is_none());
    }

    #[test]
    fn related_pair_outscores_unrelated_pair() {
        let (p, train, dev, _) = setup();
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        let related = trained.graph.score(0, 1).expect("edge");
        let unrelated = trained.graph.score(0, 2).expect("edge");
        assert!(
            related > unrelated + 5.0,
            "related {related} should clearly beat unrelated {unrelated}"
        );
        assert!(
            related > 80.0,
            "phase-locked pair should translate well: {related}"
        );
    }

    #[test]
    fn scores_and_runtimes_populated() {
        let (p, train, dev, _) = setup();
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        assert_eq!(trained.scores().len(), 6);
        assert!(trained.scores().iter().all(|s| (0.0..=100.0).contains(s)));
        assert!(trained.runtimes().iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn single_sensor_rejected() {
        let traces = vec![toggling("a", 400, 5, 0)];
        let cfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..200, cfg).expect("fit");
        let train = p.encode_segment(&traces, 0..200).expect("train");
        let dev = p.encode_segment(&traces, 200..400).expect("dev");
        let r = build_graph(&p, &train, &dev, &GraphBuildConfig::default());
        assert!(matches!(r, Err(CoreError::TooFewSensors { available: 1 })));
    }

    #[test]
    fn misaligned_corpora_rejected() {
        let (p, train, dev, _) = setup();
        let r = build_graph(&p, &train[..2], &dev, &GraphBuildConfig::default());
        assert!(matches!(r, Err(CoreError::MisalignedCorpora { .. })));
    }

    #[test]
    fn multithreaded_matches_single_thread() {
        let (p, train, dev, _) = setup();
        let one = GraphBuildConfig {
            threads: 1,
            ..GraphBuildConfig::default()
        };
        let four = GraphBuildConfig {
            threads: 4,
            ..GraphBuildConfig::default()
        };
        let a = build_graph(&p, &train, &dev, &one).expect("1 thread");
        let b = build_graph(&p, &train, &dev, &four).expect("4 threads");
        assert_eq!(a.graph, b.graph);
    }
}
