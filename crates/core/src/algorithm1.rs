//! Algorithm 1 — Multivariate Relationship Graph Generation.
//!
//! For every ordered sensor pair `(i, j)` a directional translator is
//! trained on time-aligned training sentences and scored with corpus BLEU on
//! the development set; the score becomes edge `i -> j` of the
//! [`RelGraph`]. The sweep is embarrassingly parallel and runs on a small
//! thread pool (crossbeam scoped threads pulling pair indices from an atomic
//! counter).
//!
//! # Fault tolerance
//!
//! A full sweep trains `M·(M-1)` models, and a single bad pair — a diverging
//! optimization, a panic deep in a kernel — should not discard hours of
//! completed work. Three mechanisms contain per-pair failures:
//!
//! * **Divergence retries** — when a pair's training loss goes non-finite
//!   ([`NnError::Diverged`]), the pair is retrained up to
//!   [`GraphBuildConfig::max_retries`] times with a re-seeded initialization
//!   and a halved learning rate per attempt.
//! * **Panic isolation** — each pair's work runs under
//!   [`std::panic::catch_unwind`], so a panicking worker poisons one pair,
//!   not the process.
//! * **[`FailurePolicy`]** — when retries are exhausted (or a panic is
//!   caught), `FailFast` aborts the sweep with
//!   [`CoreError::PairQuarantined`], while `Degrade` records the pair as a
//!   [`QuarantinedPair`] on the [`TrainedGraph`] and keeps sweeping, failing
//!   only if too many pairs die ([`CoreError::TooManyFailedPairs`]).
//!
//! Long sweeps can additionally persist progress via
//! [`GraphBuildConfig::checkpoint`]; see the [`checkpoint`](crate::checkpoint)
//! module. Because each pair trains deterministically in isolation, a
//! resumed sweep produces a graph identical to an uninterrupted one.

use crate::checkpoint::{read_checkpoint, write_checkpoint, CheckpointConfig, CheckpointData};
use crate::error::CoreError;
use crate::translator::{train_translator, AnyTranslator, Translator, TranslatorConfig};
use mdes_bleu::{corpus_bleu, BleuConfig};
use mdes_graph::RelGraph;
use mdes_lang::{LanguagePipeline, SentenceSet, Vocab};
use mdes_nn::NnError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Odd constant (2^64 / φ) used to derive retry seeds; spreads successive
/// attempts across the seed space so a retry never repeats the failed
/// initialization.
const RESEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// How [`build_graph`] responds to a sensor pair whose training fails after
/// all retries (or whose worker panics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Abort the sweep on the first failed pair with
    /// [`CoreError::PairQuarantined`]. The default.
    #[default]
    FailFast,
    /// Quarantine failed pairs (recorded on
    /// [`TrainedGraph::quarantined`], their edges left absent) and keep
    /// sweeping.
    Degrade {
        /// Minimum fraction of pairs that must train successfully; when the
        /// success fraction drops below it the sweep fails with
        /// [`CoreError::TooManyFailedPairs`]. `0.0` accepts any number of
        /// failures, `1.0` tolerates none.
        min_success_fraction: f64,
    },
}

/// A sensor pair excluded from the graph because its training failed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedPair {
    /// Source sensor index of the failed pair.
    pub src: usize,
    /// Target sensor index of the failed pair.
    pub dst: usize,
    /// Final failure description (error text or panic payload).
    pub error: String,
    /// Retries performed before giving up (0 for panics, which are never
    /// retried — a panic means an invariant broke, not that the optimizer
    /// drew a bad initialization).
    pub retries: usize,
}

/// Configuration of the pairwise training sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphBuildConfig {
    /// Translator family and hyper-parameters (shared across all pairs, as
    /// the paper requires for BLEU comparability).
    pub translator: TranslatorConfig,
    /// Corpus-BLEU configuration for development scoring.
    pub bleu: BleuConfig,
    /// Worker threads (0 = number of available CPUs).
    pub threads: usize,
    /// Quantile of the per-sentence development BLEU distribution stored as
    /// each pair's *calibrated floor* (see
    /// [`BrokenRule::DevQuantileFloor`](crate::algorithm2::BrokenRule)).
    pub floor_quantile: f64,
    /// Response to pairs that fail training.
    pub policy: FailurePolicy,
    /// Retrain attempts for a pair whose loss diverges, each with a fresh
    /// seed and a halved learning rate. Only [`NnError::Diverged`] triggers
    /// a retry; structural errors (empty corpus, ragged batches) are
    /// deterministic and retrying them would waste the work.
    pub max_retries: usize,
    /// Periodic crash-safe persistence of completed pairs; `None` (default)
    /// disables checkpointing. With a checkpoint configured, a valid
    /// checkpoint file already at that path resumes the sweep.
    pub checkpoint: Option<CheckpointConfig>,
    /// Fault-injection hook for chaos tests: workers deliberately panic on
    /// these `(src, dst)` pairs. Leave empty (the default) outside tests.
    pub chaos_fail_pairs: Vec<(usize, usize)>,
    /// Fault-injection hook for chaos tests: a worker panics *outside* the
    /// per-pair `catch_unwind` isolation when it claims one of these pairs,
    /// simulating a panic in merge/checkpoint plumbing (the
    /// [`CoreError::WorkerLost`] path). Never serialized; leave empty
    /// outside tests.
    #[serde(skip)]
    pub chaos_lose_worker_pairs: Vec<(usize, usize)>,
}

impl Default for GraphBuildConfig {
    fn default() -> Self {
        Self {
            translator: TranslatorConfig::fast(),
            bleu: BleuConfig {
                smoothing: mdes_bleu::Smoothing::AddOne,
                ..BleuConfig::default()
            },
            threads: 0,
            floor_quantile: 0.1,
            policy: FailurePolicy::FailFast,
            max_retries: 2,
            checkpoint: None,
            chaos_fail_pairs: Vec::new(),
            chaos_lose_worker_pairs: Vec::new(),
        }
    }
}

/// One trained directional pair model with its development score.
#[derive(Clone, Serialize, Deserialize)]
pub struct PairModel {
    /// Source sensor index (into the pipeline's surviving sensors).
    pub src: usize,
    /// Target sensor index.
    pub dst: usize,
    /// Development-set corpus BLEU (`s(i, j)` in the paper).
    pub train_score: f64,
    /// Calibrated floor: the `floor_quantile` quantile of the per-sentence
    /// development BLEU distribution. Normal windows rarely score below it,
    /// so comparing test sentences against this floor instead of the corpus
    /// mean sharply reduces false positives (ablation A8).
    pub dev_floor: f64,
    /// Wall-clock seconds spent training and scoring this model (Fig. 4a).
    pub runtime_secs: f64,
    translator: AnyTranslator,
}

impl PairModel {
    /// Translates a source sentence with this pair's model.
    pub fn translate(&self, src: &[u32], out_len: usize) -> Vec<u32> {
        self.translator.translate(src, out_len)
    }

    /// Translates a batch of source sentences with this pair's model.
    ///
    /// Results equal per-sentence [`PairModel::translate`] calls; the NMT
    /// family decodes the whole batch through one GEMM per step.
    pub fn translate_batch(&self, srcs: &[&[u32]], out_len: usize) -> Vec<Vec<u32>> {
        self.translator.translate_batch(srcs, out_len)
    }

    /// The underlying translator (for freezing into a serving artifact).
    pub(crate) fn translator(&self) -> &AnyTranslator {
        &self.translator
    }
}

impl std::fmt::Debug for PairModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairModel")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("train_score", &self.train_score)
            .field("runtime_secs", &self.runtime_secs)
            .finish()
    }
}

/// The output of Algorithm 1: the graph plus every pair model.
///
/// Serializable for persistence; the pair lookup index is rebuilt on
/// deserialization.
#[derive(Clone, Serialize, Deserialize)]
#[serde(from = "TrainedGraphShadow")]
pub struct TrainedGraph {
    /// The multivariate relationship graph (edge weights = dev BLEU).
    pub graph: RelGraph,
    models: Vec<PairModel>,
    quarantined: Vec<QuarantinedPair>,
    #[serde(skip)]
    index: HashMap<(usize, usize), usize>,
}

#[derive(Deserialize)]
struct TrainedGraphShadow {
    graph: RelGraph,
    models: Vec<PairModel>,
    quarantined: Vec<QuarantinedPair>,
}

impl From<TrainedGraphShadow> for TrainedGraph {
    fn from(shadow: TrainedGraphShadow) -> Self {
        let index = shadow
            .models
            .iter()
            .enumerate()
            .map(|(k, m)| ((m.src, m.dst), k))
            .collect();
        TrainedGraph {
            graph: shadow.graph,
            models: shadow.models,
            quarantined: shadow.quarantined,
            index,
        }
    }
}

impl TrainedGraph {
    /// All pair models.
    pub fn models(&self) -> &[PairModel] {
        &self.models
    }

    /// The model for pair `(src, dst)`, if trained.
    pub fn model(&self, src: usize, dst: usize) -> Option<&PairModel> {
        self.index.get(&(src, dst)).map(|&k| &self.models[k])
    }

    /// Pairs whose training failed under a
    /// [`Degrade`](FailurePolicy::Degrade) policy, in deterministic
    /// `(src, dst)` sweep order. Their edges are absent from the graph.
    pub fn quarantined(&self) -> &[QuarantinedPair] {
        &self.quarantined
    }

    /// Per-model runtimes in seconds (for the Fig. 4a CDF).
    pub fn runtimes(&self) -> Vec<f64> {
        self.models.iter().map(|m| m.runtime_secs).collect()
    }

    /// All development BLEU scores (for the Fig. 4b histogram).
    pub fn scores(&self) -> Vec<f64> {
        self.models.iter().map(|m| m.train_score).collect()
    }
}

impl std::fmt::Debug for TrainedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedGraph")
            .field("nodes", &self.graph.len())
            .field("models", &self.models.len())
            .field("quarantined", &self.quarantined.len())
            .finish()
    }
}

/// Per-pair sweep outcome; slot order is the deterministic pair order, so
/// assembly does not depend on thread scheduling.
pub(crate) enum PairOutcome {
    Model(Box<PairModel>),
    Quarantined(QuarantinedPair),
}

/// Raw result of one [`sweep_pairs`] call: one outcome per requested pair,
/// in pair order, plus how many outcomes came from a resumed checkpoint.
pub(crate) struct SweepOutput {
    pub(crate) slots: Vec<Option<PairOutcome>>,
    pub(crate) resumed: usize,
}

/// Runs Algorithm 1: trains two directional models per sensor pair and
/// assembles the relationship graph.
///
/// `train_sets` and `dev_sets` must come from
/// [`LanguagePipeline::encode_segment`] on the same pipeline (one set per
/// surviving sensor, sentences time-aligned across sensors).
///
/// # Errors
///
/// Returns an error if fewer than two sensors survive, any corpus is empty,
/// or corpora are misaligned; [`CoreError::PairQuarantined`] under
/// [`FailurePolicy::FailFast`] when a pair fails training;
/// [`CoreError::TooManyFailedPairs`] under `Degrade` when the success
/// fraction falls below the configured minimum; [`CoreError::Checkpoint`]
/// when a configured checkpoint cannot be resumed or finalized.
pub fn build_graph(
    pipeline: &LanguagePipeline,
    train_sets: &[SentenceSet],
    dev_sets: &[SentenceSet],
    cfg: &GraphBuildConfig,
) -> Result<TrainedGraph, CoreError> {
    let n = pipeline.sensor_count();
    if n < 2 {
        return Err(CoreError::TooFewSensors { available: n });
    }
    validate_alignment(train_sets, n)?;
    validate_alignment(dev_sets, n)?;

    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .filter(|(i, j)| i != j)
        .collect();
    let train_refs: Vec<Option<&SentenceSet>> = train_sets.iter().map(Some).collect();
    let dev_refs: Vec<Option<&SentenceSet>> = dev_sets.iter().map(Some).collect();
    let fingerprint = sweep_fingerprint(pipeline, cfg, &pairs);
    let out = sweep_pairs(pipeline, &train_refs, &dev_refs, &pairs, cfg, fingerprint)?;
    assemble_graph(pipeline, out.slots, pairs.len(), cfg.policy)
}

/// Trains the given ordered pairs on a worker pool and returns one outcome
/// slot per pair, honoring retries, the failure policy, checkpointing and
/// resume. The corpus slices are indexed by surviving-sensor index; entries
/// for sensors no swept pair touches may be `None` (the sharded path
/// provides only the shard's sensors).
///
/// # Panics
///
/// Panics if a swept pair references an out-of-range sensor, a self-pair,
/// or a sensor whose corpus slot is `None` — those are caller bugs, not
/// runtime conditions.
pub(crate) fn sweep_pairs(
    pipeline: &LanguagePipeline,
    train_sets: &[Option<&SentenceSet>],
    dev_sets: &[Option<&SentenceSet>],
    pairs: &[(usize, usize)],
    cfg: &GraphBuildConfig,
    fingerprint: u64,
) -> Result<SweepOutput, CoreError> {
    let n = pipeline.sensor_count();
    for &(i, j) in pairs {
        assert!(
            i < n && j < n && i != j,
            "swept pair ({i} -> {j}) invalid for {n} sensors"
        );
        assert!(
            train_sets[i].is_some()
                && train_sets[j].is_some()
                && dev_sets[i].is_some()
                && dev_sets[j].is_some(),
            "corpora for pair ({i} -> {j}) not provided to the sweep"
        );
    }
    let total = pairs.len();

    let results: Mutex<Vec<Option<PairOutcome>>> = Mutex::new((0..total).map(|_| None).collect());
    let mut sweep_span = mdes_obs::span("algo1.sweep");
    sweep_span.field("sensors", n);
    sweep_span.field("pairs", total);
    let mut resumed = 0;

    // Resume: prefill slots from a valid checkpoint at the configured path.
    if let Some(ck) = &cfg.checkpoint {
        let path = Path::new(&ck.path);
        if path.exists() {
            let data = read_checkpoint(path)?;
            if data.fingerprint != fingerprint {
                return Err(CoreError::Checkpoint {
                    path: ck.path.clone(),
                    detail: format!(
                        "fingerprint mismatch: found {:#018x}, this sweep is {:#018x} \
                         (checkpoint belongs to a different sweep; delete it to start over)",
                        data.fingerprint, fingerprint
                    ),
                });
            }
            let index: HashMap<(usize, usize), usize> =
                pairs.iter().enumerate().map(|(k, &p)| (p, k)).collect();
            let mut slots = results.lock();
            for m in data.models {
                if let Some(&k) = index.get(&(m.src, m.dst)) {
                    slots[k] = Some(PairOutcome::Model(Box::new(m)));
                }
            }
            for q in data.quarantined {
                if let Some(&k) = index.get(&(q.src, q.dst)) {
                    slots[k] = Some(PairOutcome::Quarantined(q));
                }
            }
            resumed = slots.iter().filter(|s| s.is_some()).count();
            sweep_span.field("resumed", resumed);
            mdes_obs::counter("algo1.pairs_resumed", resumed as u64);
        }
    }

    let next = AtomicUsize::new(0);
    let failure: Mutex<Option<CoreError>> = Mutex::new(None);
    // Serializes checkpoint file writes; snapshots are taken under the
    // results lock, so writers racing on the same tmp path is the only
    // hazard left.
    let ckpt_io = Mutex::new(());

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };

    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= pairs.len() || failure.lock().is_some() {
                    break;
                }
                if results.lock()[k].is_some() {
                    continue; // restored from checkpoint
                }
                let (i, j) = pairs[k];
                if cfg.chaos_lose_worker_pairs.contains(&(i, j)) {
                    // Deliberately OUTSIDE the catch_unwind below: simulates
                    // a panic in merge/checkpoint plumbing, killing this
                    // worker with the pair claimed but no outcome recorded.
                    panic!("chaos: worker lost outside pair isolation at ({i} -> {j})");
                }
                let mut pair_span = mdes_obs::span("algo1.pair");
                pair_span.field("src", i);
                pair_span.field("dst", j);
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    if cfg.chaos_fail_pairs.contains(&(i, j)) {
                        panic!("chaos: injected worker failure for pair ({i} -> {j})");
                    }
                    train_pair_with_retries(pipeline, train_sets, dev_sets, i, j, cfg)
                }));
                let outcome = match attempt {
                    Ok((Ok(model), retries)) => {
                        pair_span.field("outcome", "trained");
                        pair_span.field("retries", retries);
                        pair_span.field("score", model.train_score);
                        mdes_obs::counter("algo1.pairs_trained", 1);
                        mdes_obs::counter("algo1.retries", retries as u64);
                        PairOutcome::Model(Box::new(model))
                    }
                    Ok((Err(e), retries)) => {
                        pair_span.field("retries", retries);
                        mdes_obs::counter("algo1.retries", retries as u64);
                        match cfg.policy {
                            FailurePolicy::FailFast => {
                                pair_span.field("outcome", "failfast");
                                *failure.lock() = Some(CoreError::PairQuarantined {
                                    src: i,
                                    dst: j,
                                    detail: e.to_string(),
                                    source: Some(Box::new(e)),
                                });
                                break;
                            }
                            FailurePolicy::Degrade { .. } => {
                                pair_span.field("outcome", "quarantined");
                                mdes_obs::counter("algo1.pairs_quarantined", 1);
                                PairOutcome::Quarantined(QuarantinedPair {
                                    src: i,
                                    dst: j,
                                    error: e.to_string(),
                                    retries,
                                })
                            }
                        }
                    }
                    Err(payload) => {
                        let detail = format!("worker panicked: {}", panic_message(&*payload));
                        match cfg.policy {
                            FailurePolicy::FailFast => {
                                pair_span.field("outcome", "failfast");
                                *failure.lock() = Some(CoreError::PairQuarantined {
                                    src: i,
                                    dst: j,
                                    detail,
                                    source: None,
                                });
                                break;
                            }
                            FailurePolicy::Degrade { .. } => {
                                pair_span.field("outcome", "quarantined");
                                mdes_obs::counter("algo1.pairs_quarantined", 1);
                                PairOutcome::Quarantined(QuarantinedPair {
                                    src: i,
                                    dst: j,
                                    error: detail,
                                    retries: 0,
                                })
                            }
                        }
                    }
                };
                let mut slots = results.lock();
                slots[k] = Some(outcome);
                if let Some(ck) = &cfg.checkpoint {
                    let done = slots.iter().filter(|s| s.is_some()).count();
                    if done % ck.every.max(1) == 0 {
                        let snap = snapshot(&slots, fingerprint);
                        drop(slots);
                        // Periodic persistence is best-effort: an I/O hiccup
                        // here must not kill an otherwise healthy sweep.
                        let _io = ckpt_io.lock();
                        let _ = write_checkpoint(Path::new(&ck.path), &snap);
                    }
                }
            });
        }
    });

    // Typed per-pair FailFast failures win over a lost worker: they carry
    // the offending pair and the underlying error.
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }

    let mut slots = results.into_inner();
    if let Err(payload) = scope_result {
        // A panic escaped between catch_unwind boundaries (slot merge,
        // checkpoint plumbing, a chaos injection), so at least one worker
        // died with pairs unclaimed or claimed-but-unrecorded.
        let detail = format!(
            "worker panicked outside pair isolation: {}",
            panic_message(&*payload)
        );
        mdes_obs::counter("algo1.workers_lost", 1);
        let lost = slots.iter().filter(|s| s.is_none()).count();
        match cfg.policy {
            FailurePolicy::FailFast => {
                return Err(CoreError::WorkerLost { lost, detail });
            }
            FailurePolicy::Degrade { .. } => {
                for (k, slot) in slots.iter_mut().enumerate() {
                    if slot.is_none() {
                        let (src, dst) = pairs[k];
                        mdes_obs::counter("algo1.pairs_quarantined", 1);
                        *slot = Some(PairOutcome::Quarantined(QuarantinedPair {
                            src,
                            dst,
                            error: detail.clone(),
                            retries: 0,
                        }));
                    }
                }
            }
        }
    }

    if let Some(ck) = &cfg.checkpoint {
        // Final write so the checkpoint reflects the completed sweep; unlike
        // periodic writes this failure is surfaced — the caller asked for a
        // durable artifact and silently lacking one defeats the point.
        let snap = snapshot(&slots, fingerprint);
        write_checkpoint(Path::new(&ck.path), &snap)?;
    }
    let trained = slots
        .iter()
        .filter(|s| matches!(s, Some(PairOutcome::Model(_))))
        .count();
    sweep_span.field("trained", trained);
    sweep_span.field("quarantined", total - trained);
    Ok(SweepOutput { slots, resumed })
}

/// Assembles completed sweep slots into the graph, enforcing the `Degrade`
/// minimum-success-fraction over `total` attempted pairs.
pub(crate) fn assemble_graph(
    pipeline: &LanguagePipeline,
    slots: Vec<Option<PairOutcome>>,
    total: usize,
    policy: FailurePolicy,
) -> Result<TrainedGraph, CoreError> {
    let names: Vec<String> = pipeline
        .languages()
        .iter()
        .map(|l| l.name.clone())
        .collect();
    let mut graph = RelGraph::new(names);
    let mut models = Vec::with_capacity(total);
    let mut quarantined = Vec::new();
    let mut index = HashMap::with_capacity(total);
    for outcome in slots.into_iter().flatten() {
        match outcome {
            PairOutcome::Model(model) => {
                graph.set_score(model.src, model.dst, model.train_score);
                index.insert((model.src, model.dst), models.len());
                models.push(*model);
            }
            PairOutcome::Quarantined(q) => quarantined.push(q),
        }
    }
    if let FailurePolicy::Degrade {
        min_success_fraction,
    } = policy
    {
        let failed = quarantined.len();
        let succeeded = total - failed;
        if (succeeded as f64) < min_success_fraction * total as f64 {
            return Err(CoreError::TooManyFailedPairs { failed, total });
        }
    }
    Ok(TrainedGraph {
        graph,
        models,
        quarantined,
        index,
    })
}

/// Clones the completed slots into checkpointable form, in slot order.
fn snapshot(slots: &[Option<PairOutcome>], fingerprint: u64) -> CheckpointData {
    let mut models = Vec::new();
    let mut quarantined = Vec::new();
    for outcome in slots.iter().flatten() {
        match outcome {
            PairOutcome::Model(m) => models.push((**m).clone()),
            PairOutcome::Quarantined(q) => quarantined.push(q.clone()),
        }
    }
    CheckpointData {
        fingerprint,
        models,
        quarantined,
    }
}

/// Hashes the sweep inputs that determine pair models: sensor names, the
/// model-affecting configuration, and the exact ordered list of pairs this
/// sweep covers. Scheduling and robustness knobs (threads, policy,
/// checkpointing, chaos hooks) are deliberately excluded — they do not
/// change what a completed pair model contains, so a checkpoint remains
/// resumable across them. The pair list is *included* because it is part of
/// the sweep's identity: a checkpoint taken over a different prescreen
/// selection (or a different shard slice) must not silently resume.
pub(crate) fn sweep_fingerprint(
    pipeline: &LanguagePipeline,
    cfg: &GraphBuildConfig,
    pairs: &[(usize, usize)],
) -> u64 {
    let names: Vec<&str> = pipeline
        .languages()
        .iter()
        .map(|l| l.name.as_str())
        .collect();
    let translator = serde_json::to_string(&cfg.translator).unwrap_or_default();
    let bleu = serde_json::to_string(&cfg.bleu).unwrap_or_default();
    let text = format!(
        "{names:?}|{translator}|{bleu}|{}|{}",
        cfg.floor_quantile, cfg.max_retries
    );
    let mut bytes = text.into_bytes();
    bytes.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for &(i, j) in pairs {
        bytes.extend_from_slice(&(i as u64).to_le_bytes());
        bytes.extend_from_slice(&(j as u64).to_le_bytes());
    }
    crate::checkpoint::fnv1a(&bytes)
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn validate_alignment(sets: &[SentenceSet], n: usize) -> Result<(), CoreError> {
    if sets.len() != n {
        return Err(CoreError::MisalignedCorpora {
            expected: n,
            found: sets.len(),
        });
    }
    let count = sets.first().map_or(0, SentenceSet::len);
    if count == 0 {
        return Err(CoreError::EmptyCorpus);
    }
    for s in sets {
        if s.len() != count {
            return Err(CoreError::MisalignedCorpora {
                expected: count,
                found: s.len(),
            });
        }
    }
    Ok(())
}

/// Alignment check over sparsely-provided corpora (the sharded path encodes
/// only the shard's sensors): every provided set must be non-empty and
/// sentence counts must agree across all provided sets.
pub(crate) fn validate_alignment_sparse(sets: &[Option<&SentenceSet>]) -> Result<(), CoreError> {
    let mut expected: Option<usize> = None;
    for s in sets.iter().flatten() {
        if s.is_empty() {
            return Err(CoreError::EmptyCorpus);
        }
        match expected {
            None => expected = Some(s.len()),
            Some(count) if s.len() != count => {
                return Err(CoreError::MisalignedCorpora {
                    expected: count,
                    found: s.len(),
                });
            }
            Some(_) => {}
        }
    }
    if expected.is_none() {
        return Err(CoreError::EmptyCorpus);
    }
    Ok(())
}

/// Runs `attempt_fn` until it succeeds, the error is not a divergence, or
/// `max_retries` retries are spent. Returns the final result and the number
/// of retries consumed. Only [`NnError::Diverged`] retries: a diverged run
/// is a bad (initialization, learning-rate) draw, which a re-seeded attempt
/// can fix; every other error is deterministic in the inputs.
fn retry_diverged<T>(
    max_retries: usize,
    mut attempt_fn: impl FnMut(usize) -> Result<T, CoreError>,
) -> (Result<T, CoreError>, usize) {
    let mut attempt = 0;
    loop {
        match attempt_fn(attempt) {
            Ok(v) => return (Ok(v), attempt),
            Err(CoreError::Nn(NnError::Diverged { step })) if attempt < max_retries => {
                let _ = step;
                attempt += 1;
            }
            Err(e) => return (Err(e), attempt),
        }
    }
}

/// The translator configuration for retry `attempt` (0 = the original):
/// neural retries draw a fresh seed and halve the learning rate, the two
/// standard divergence mitigations; statistical translators cannot diverge
/// and pass through unchanged.
fn retuned_translator(base: &TranslatorConfig, attempt: u64) -> TranslatorConfig {
    if attempt == 0 {
        return base.clone();
    }
    match base {
        TranslatorConfig::Nmt(c) => {
            let mut c = c.clone();
            c.seed = c.seed.wrapping_add(RESEED.wrapping_mul(attempt));
            c.learning_rate /= 2f32.powi(attempt.min(i32::MAX as u64) as i32);
            TranslatorConfig::Nmt(c)
        }
        other => other.clone(),
    }
}

fn train_pair_with_retries(
    pipeline: &LanguagePipeline,
    train_sets: &[Option<&SentenceSet>],
    dev_sets: &[Option<&SentenceSet>],
    i: usize,
    j: usize,
    cfg: &GraphBuildConfig,
) -> (Result<PairModel, CoreError>, usize) {
    retry_diverged(cfg.max_retries, |attempt| {
        let tcfg = retuned_translator(&cfg.translator, attempt as u64);
        train_pair(pipeline, train_sets, dev_sets, i, j, &tcfg, cfg)
    })
}

fn train_pair(
    pipeline: &LanguagePipeline,
    train_sets: &[Option<&SentenceSet>],
    dev_sets: &[Option<&SentenceSet>],
    i: usize,
    j: usize,
    tcfg: &TranslatorConfig,
    cfg: &GraphBuildConfig,
) -> Result<PairModel, CoreError> {
    let start = Instant::now();
    // sweep_pairs validated presence for every swept pair up front.
    let present = "sweep validated corpus presence";
    let (train_i, train_j) = (train_sets[i].expect(present), train_sets[j].expect(present));
    let (dev_i, dev_j) = (dev_sets[i].expect(present), dev_sets[j].expect(present));
    let pairs: Vec<(Vec<u32>, Vec<u32>)> = train_i
        .sentences
        .iter()
        .zip(&train_j.sentences)
        .map(|(s, t)| (s.clone(), t.clone()))
        .collect();
    let src_vocab = pipeline.languages()[i].vocab.size();
    let tgt_vocab = pipeline.languages()[j].vocab.size();
    let translator = train_translator(tcfg, &pairs, src_vocab, tgt_vocab, Vocab::BOS)?;

    let out_len = pipeline.config().sent_len;
    let dev_srcs: Vec<&[u32]> = dev_i.sentences.iter().map(Vec::as_slice).collect();
    let hyps: Vec<Vec<u32>> = translator.translate_batch(&dev_srcs, out_len);
    let score = corpus_bleu(&hyps, &dev_j.sentences, &cfg.bleu);
    // Per-sentence dev scores calibrate the broken-relationship floor.
    let sentence_cfg = mdes_bleu::BleuConfig::sentence();
    let mut sentence_scores: Vec<f64> = hyps
        .iter()
        .zip(&dev_j.sentences)
        .map(|(h, r)| mdes_bleu::sentence_bleu(h, r, &sentence_cfg))
        .collect();
    sentence_scores.sort_by(f64::total_cmp);
    let q = cfg.floor_quantile.clamp(0.0, 1.0);
    let idx = ((sentence_scores.len() as f64 - 1.0) * q).round() as usize;
    let dev_floor = sentence_scores.get(idx).copied().unwrap_or(0.0);
    Ok(PairModel {
        src: i,
        dst: j,
        train_score: score,
        dev_floor,
        runtime_secs: start.elapsed().as_secs_f64(),
        translator,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_lang::{RawTrace, WindowConfig};
    use std::path::PathBuf;

    fn toggling(name: &str, n: usize, period: usize, phase: usize) -> RawTrace {
        RawTrace::new(
            name,
            (0..n)
                .map(|t| {
                    if ((t + phase) / period).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    }

    fn setup() -> (
        LanguagePipeline,
        Vec<SentenceSet>,
        Vec<SentenceSet>,
        Vec<RawTrace>,
    ) {
        // Sensors a, b share a period (strongly related); c is unrelated.
        let traces = vec![
            toggling("a", 600, 5, 0),
            toggling("b", 600, 5, 2),
            toggling("c", 600, 7, 0),
        ];
        let cfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..300, cfg).expect("fit");
        let train = p.encode_segment(&traces, 0..300).expect("train");
        let dev = p.encode_segment(&traces, 300..450).expect("dev");
        (p, train, dev, traces)
    }

    #[test]
    fn builds_full_directed_graph() {
        let (p, train, dev, _) = setup();
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        assert_eq!(trained.graph.len(), 3);
        assert_eq!(trained.graph.edge_count(), 6);
        assert_eq!(trained.models().len(), 6);
        assert!(trained.quarantined().is_empty());
        assert!(trained.model(0, 1).is_some());
        assert!(trained.model(0, 0).is_none());
    }

    #[test]
    fn related_pair_outscores_unrelated_pair() {
        let (p, train, dev, _) = setup();
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        let related = trained.graph.score(0, 1).expect("edge");
        let unrelated = trained.graph.score(0, 2).expect("edge");
        assert!(
            related > unrelated + 5.0,
            "related {related} should clearly beat unrelated {unrelated}"
        );
        assert!(
            related > 80.0,
            "phase-locked pair should translate well: {related}"
        );
    }

    #[test]
    fn scores_and_runtimes_populated() {
        let (p, train, dev, _) = setup();
        let trained = build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("build");
        assert_eq!(trained.scores().len(), 6);
        assert!(trained.scores().iter().all(|s| (0.0..=100.0).contains(s)));
        assert!(trained.runtimes().iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn single_sensor_rejected() {
        let traces = vec![toggling("a", 400, 5, 0)];
        let cfg = WindowConfig {
            word_len: 4,
            word_stride: 1,
            sent_len: 5,
            sent_stride: 5,
        };
        let p = LanguagePipeline::fit(&traces, 0..200, cfg).expect("fit");
        let train = p.encode_segment(&traces, 0..200).expect("train");
        let dev = p.encode_segment(&traces, 200..400).expect("dev");
        let r = build_graph(&p, &train, &dev, &GraphBuildConfig::default());
        assert!(matches!(r, Err(CoreError::TooFewSensors { available: 1 })));
    }

    #[test]
    fn misaligned_corpora_rejected() {
        let (p, train, dev, _) = setup();
        let r = build_graph(&p, &train[..2], &dev, &GraphBuildConfig::default());
        assert!(matches!(r, Err(CoreError::MisalignedCorpora { .. })));
    }

    #[test]
    fn multithreaded_matches_single_thread() {
        let (p, train, dev, _) = setup();
        let one = GraphBuildConfig {
            threads: 1,
            ..GraphBuildConfig::default()
        };
        let four = GraphBuildConfig {
            threads: 4,
            ..GraphBuildConfig::default()
        };
        let a = build_graph(&p, &train, &dev, &one).expect("1 thread");
        let b = build_graph(&p, &train, &dev, &four).expect("4 threads");
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn retry_helper_retries_only_divergence() {
        let mut calls = 0;
        let (r, retries) = retry_diverged(3, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(CoreError::Nn(NnError::Diverged { step: attempt }))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r.expect("recovers"), 2);
        assert_eq!(retries, 2);
        assert_eq!(calls, 3);

        // Exhaustion: keeps the final divergence error.
        let (r, retries) = retry_diverged(2, |a| {
            Result::<(), _>::Err(CoreError::Nn(NnError::Diverged { step: a }))
        });
        assert!(matches!(
            r,
            Err(CoreError::Nn(NnError::Diverged { step: 2 }))
        ));
        assert_eq!(retries, 2);

        // Non-divergence errors never retry.
        let mut calls = 0;
        let (r, retries) = retry_diverged(5, |_| {
            calls += 1;
            Result::<(), _>::Err(CoreError::EmptyCorpus)
        });
        assert!(matches!(r, Err(CoreError::EmptyCorpus)));
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn retuned_translator_reseeds_and_cools() {
        let base = TranslatorConfig::neural();
        let TranslatorConfig::Nmt(orig) = &base else {
            panic!("neural config expected");
        };
        let TranslatorConfig::Nmt(r1) = retuned_translator(&base, 1) else {
            panic!("family preserved");
        };
        let TranslatorConfig::Nmt(r2) = retuned_translator(&base, 2) else {
            panic!("family preserved");
        };
        assert_ne!(r1.seed, orig.seed);
        assert_ne!(r2.seed, r1.seed);
        assert!((r1.learning_rate - orig.learning_rate / 2.0).abs() < 1e-12);
        assert!((r2.learning_rate - orig.learning_rate / 4.0).abs() < 1e-12);
        // Statistical translators pass through untouched.
        assert_eq!(
            retuned_translator(&TranslatorConfig::fast(), 3),
            TranslatorConfig::fast()
        );
    }

    #[test]
    fn chaos_pair_under_fail_fast_aborts_with_quarantine_error() {
        let (p, train, dev, _) = setup();
        let cfg = GraphBuildConfig {
            chaos_fail_pairs: vec![(1, 2)],
            ..GraphBuildConfig::default()
        };
        match build_graph(&p, &train, &dev, &cfg) {
            Err(CoreError::PairQuarantined {
                src, dst, source, ..
            }) => {
                assert_eq!((src, dst), (1, 2));
                assert!(
                    source.is_none(),
                    "panic-born quarantine has no typed source"
                );
            }
            other => panic!("expected PairQuarantined, got {other:?}"),
        }
    }

    #[test]
    fn chaos_pair_under_degrade_completes_without_that_edge() {
        let (p, train, dev, _) = setup();
        let cfg = GraphBuildConfig {
            policy: FailurePolicy::Degrade {
                min_success_fraction: 0.5,
            },
            chaos_fail_pairs: vec![(1, 2)],
            ..GraphBuildConfig::default()
        };
        let trained = build_graph(&p, &train, &dev, &cfg).expect("degrades, not dies");
        assert_eq!(trained.models().len(), 5);
        assert_eq!(trained.graph.edge_count(), 5);
        assert!(trained.graph.score(1, 2).is_none());
        assert!(trained.model(1, 2).is_none());
        let q = trained.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!((q[0].src, q[0].dst), (1, 2));
        assert!(q[0].error.contains("chaos"));
    }

    #[test]
    fn lost_worker_under_fail_fast_is_a_typed_error() {
        let (p, train, dev, _) = setup();
        let cfg = GraphBuildConfig {
            threads: 1,
            chaos_lose_worker_pairs: vec![(1, 2)],
            ..GraphBuildConfig::default()
        };
        match build_graph(&p, &train, &dev, &cfg) {
            Err(CoreError::WorkerLost { lost, detail }) => {
                // Single worker: its claimed pair plus everything after it
                // never gets an outcome.
                assert!(lost >= 1, "at least the claimed pair is lost: {lost}");
                assert!(detail.contains("outside pair isolation"), "{detail}");
            }
            other => panic!("expected WorkerLost, got {other:?}"),
        }
    }

    #[test]
    fn lost_worker_under_degrade_quarantines_orphaned_pairs() {
        let (p, train, dev, _) = setup();
        let cfg = GraphBuildConfig {
            threads: 2,
            policy: FailurePolicy::Degrade {
                min_success_fraction: 0.0,
            },
            chaos_lose_worker_pairs: vec![(1, 2)],
            ..GraphBuildConfig::default()
        };
        let trained = build_graph(&p, &train, &dev, &cfg).expect("degrades, not dies");
        // The surviving worker drains the remaining pairs; only pairs the
        // dead worker claimed (at least the chaos pair) are quarantined.
        assert!(trained.model(1, 2).is_none());
        assert!(!trained.quarantined().is_empty());
        assert_eq!(trained.models().len() + trained.quarantined().len(), 6);
        let q = trained
            .quarantined()
            .iter()
            .find(|q| (q.src, q.dst) == (1, 2))
            .expect("chaos pair quarantined");
        assert!(q.error.contains("outside pair isolation"), "{}", q.error);
    }

    #[test]
    fn fingerprint_covers_the_pair_list() {
        let (p, _, _, _) = setup();
        let cfg = GraphBuildConfig::default();
        let all = vec![(0usize, 1usize), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)];
        let pruned = vec![(0usize, 1usize), (1, 0)];
        let reordered = vec![(0usize, 2usize), (0, 1), (1, 0), (1, 2), (2, 0), (2, 1)];
        let f_all = sweep_fingerprint(&p, &cfg, &all);
        assert_ne!(f_all, sweep_fingerprint(&p, &cfg, &pruned));
        assert_ne!(f_all, sweep_fingerprint(&p, &cfg, &reordered));
        assert_eq!(f_all, sweep_fingerprint(&p, &cfg, &all.clone()));
    }

    #[test]
    fn degrade_enforces_min_success_fraction() {
        let (p, train, dev, _) = setup();
        let cfg = GraphBuildConfig {
            policy: FailurePolicy::Degrade {
                min_success_fraction: 1.0,
            },
            chaos_fail_pairs: vec![(0, 1)],
            ..GraphBuildConfig::default()
        };
        assert!(matches!(
            build_graph(&p, &train, &dev, &cfg),
            Err(CoreError::TooManyFailedPairs {
                failed: 1,
                total: 6
            })
        ));
    }

    /// Serialized graph with the `runtime_secs` fields removed — training
    /// wall-clock is the one legitimately nondeterministic model field.
    fn canonical_json(g: &TrainedGraph) -> String {
        let mut s = serde_json::to_string(g).expect("serialize");
        while let Some(i) = s.find("\"runtime_secs\":") {
            let end = s[i..].find(',').map(|d| i + d + 1).expect("field follows");
            s.replace_range(i..end, "");
        }
        s
    }

    fn ckpt_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mdes_sweep_test_{}_{tag}.ckpt", std::process::id()))
    }

    #[test]
    fn interrupted_sweep_resumes_to_identical_graph() {
        let (p, train, dev, _) = setup();
        let path = ckpt_path("resume");
        std::fs::remove_file(&path).ok();

        let uninterrupted =
            build_graph(&p, &train, &dev, &GraphBuildConfig::default()).expect("clean run");

        // "Kill" a sweep mid-way: single worker, checkpoint after every
        // pair, and a chaos panic at the 4th pair under FailFast. The pairs
        // before it are persisted; the run aborts.
        let interrupted = GraphBuildConfig {
            threads: 1,
            checkpoint: Some(CheckpointConfig {
                path: path.display().to_string(),
                every: 1,
            }),
            chaos_fail_pairs: vec![(1, 2)],
            ..GraphBuildConfig::default()
        };
        assert!(build_graph(&p, &train, &dev, &interrupted).is_err());
        let partial = read_checkpoint(&path).expect("partial checkpoint");
        assert!(!partial.models.is_empty() && partial.models.len() < 6);

        // Resume without the chaos hook: only the missing pairs train.
        let resume = GraphBuildConfig {
            threads: 1,
            checkpoint: Some(CheckpointConfig {
                path: path.display().to_string(),
                every: 1,
            }),
            ..GraphBuildConfig::default()
        };
        let resumed = build_graph(&p, &train, &dev, &resume).expect("resumed run");

        let a = canonical_json(&uninterrupted);
        let b = canonical_json(&resumed);
        assert_eq!(a, b, "resumed sweep must be byte-identical");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let (p, train, dev, _) = setup();
        let path = ckpt_path("mismatch");
        write_checkpoint(
            &path,
            &CheckpointData {
                fingerprint: 0x1234,
                models: Vec::new(),
                quarantined: Vec::new(),
            },
        )
        .expect("write");
        let cfg = GraphBuildConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.display().to_string(),
                every: 1,
            }),
            ..GraphBuildConfig::default()
        };
        match build_graph(&p, &train, &dev, &cfg) {
            Err(CoreError::Checkpoint { detail, .. }) => {
                assert!(detail.contains("fingerprint mismatch"), "{detail}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
