//! Serving layer: frozen artifacts, hot-swappable stores and multi-stream
//! sessions.
//!
//! Training state and serving state are different things. A fitted [`Mdes`]
//! carries everything Algorithm 1 needed — autodiff tapes, optimizer
//! moments, per-model inference caches — while the online phase only ever
//! *decodes*. This module splits the two:
//!
//! * [`GraphSnapshot`] — an immutable, serializable serving artifact frozen
//!   from a fitted model: packed weights ([`mdes_nn::ModelSpec`]) per pair,
//!   the vocab tables of the language pipeline, and the
//!   `ScoreRange`-filtered valid-model index, computed once instead of per
//!   detection call;
//! * [`ModelStore`] — an atomically swappable `Arc<GraphSnapshot>` holder:
//!   [`ModelStore::publish`] deploys a retrained graph mid-stream without
//!   dropping a single buffered window;
//! * [`StreamSession`] — the per-stream state only: window buffers and
//!   degradation counters. Sessions are cheap (a few hundred bytes plus the
//!   buffered records), so N concurrent streams cost one shared snapshot
//!   plus N sessions instead of N full model copies;
//! * [`ServingEngine`] — multiplexes many sessions over the crossbeam
//!   worker pool with one scratch [`InferArena`] per worker
//!   ([`ServingEngine::push_opt_many`]).
//!
//! The frozen decode path is bit-identical to the training-side path: the
//! same kernels run in the same order over the same packed weights (pinned
//! by `mdes-nn/tests/infer_parity.rs` and `tests/serving.rs`).

use crate::algorithm2::{
    detect_many_with_bank, detect_with_bank, DetectJob, DetectStrategy, DetectionConfig,
    DetectionResult,
};
use crate::algorithm2::{ModelBank, PairMeta};
use crate::error::CoreError;
use crate::online::{DegradationConfig, OnlineDetection};
use crate::pipeline::Mdes;
use crate::translator::{AnyTranslator, NgramTranslator, Translator};
use mdes_graph::RelGraph;
use mdes_lang::{LanguagePipeline, RawTrace, SentenceSet, MISSING_RECORD};
use mdes_nn::{InferArena, ModelSpec, QuantMode, QuantReport};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A frozen neural pair translator: just the packed weights, decoded through
/// a caller-supplied [`InferArena`].
///
/// Replicates [`NmtTranslator`](crate::translator::NmtTranslator) semantics
/// exactly, including the deterministic degenerate translation (`vec![0]`)
/// on malformed input, so frozen detection scores are bit-identical to the
/// training-side path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenNmt {
    spec: ModelSpec,
}

impl FrozenNmt {
    /// Wraps a frozen spec (see [`mdes_nn::Seq2Seq::freeze`]).
    pub fn new(spec: ModelSpec) -> Self {
        Self { spec }
    }

    /// The packed weights.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Re-encodes the packed weights; see [`ModelSpec::quantize`].
    fn quantize(&self, mode: QuantMode) -> Result<(Self, QuantReport), CoreError> {
        let (spec, report) = self.spec.quantize(mode)?;
        Ok((Self { spec }, report))
    }

    /// Mirrors `Seq2Seq::validate_src`: batched decoding needs a non-empty,
    /// non-ragged batch of non-empty sentences with in-vocabulary tokens.
    fn batch_valid(&self, srcs: &[&[u32]], out_len: usize) -> bool {
        if srcs.is_empty() || out_len == 0 || srcs[0].is_empty() {
            return false;
        }
        let len = srcs[0].len();
        srcs.iter()
            .all(|s| s.len() == len && s.iter().all(|&t| (t as usize) < self.spec.src_vocab()))
    }

    fn decode(&self, srcs: &[&[u32]], out_len: usize, arena: &mut InferArena) -> Vec<Vec<u32>> {
        let usize_srcs: Vec<Vec<usize>> = srcs
            .iter()
            .map(|s| s.iter().map(|&w| w as usize).collect())
            .collect();
        let refs: Vec<&[usize]> = usize_srcs.iter().map(Vec::as_slice).collect();
        arena
            .translate_batch(&self.spec, &refs, out_len)
            .into_iter()
            .map(|o| o.into_iter().map(|w| w as u32).collect())
            .collect()
    }

    /// Translates one source sentence; malformed input degrades to the
    /// deterministic degenerate translation, as the training-side path does.
    pub fn translate(&self, src: &[u32], out_len: usize, arena: &mut InferArena) -> Vec<u32> {
        if self.batch_valid(&[src], out_len) {
            self.decode(&[src], out_len, arena)
                .pop()
                .expect("one output per input")
        } else {
            vec![0; out_len]
        }
    }

    /// Translates a batch; a malformed batch falls back to the per-sentence
    /// path, sentence by sentence, exactly like
    /// [`NmtTranslator::translate_batch`](crate::translator::NmtTranslator).
    pub fn translate_batch(
        &self,
        srcs: &[&[u32]],
        out_len: usize,
        arena: &mut InferArena,
    ) -> Vec<Vec<u32>> {
        if self.batch_valid(srcs, out_len) {
            self.decode(srcs, out_len, arena)
        } else {
            srcs.iter()
                .map(|s| self.translate(s, out_len, arena))
                .collect()
        }
    }
}

/// A frozen translator of either family.
///
/// The statistical family carries its own tables and needs no arena; the
/// neural family is weights-only and decodes through the worker's arena.
// Both variants are small fixed headers over heap-owned weight buffers;
// boxing the larger one would add an indirection on every decode for a
// per-pair-model saving of a couple hundred bytes.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum FrozenTranslator {
    /// Statistical position-aligned model (already training-state-free).
    Ngram(NgramTranslator),
    /// Frozen neural seq2seq.
    Nmt(FrozenNmt),
}

impl FrozenTranslator {
    /// Freezes a training-side translator.
    pub fn freeze(translator: &AnyTranslator) -> Self {
        match translator {
            AnyTranslator::Ngram(t) => FrozenTranslator::Ngram(t.clone()),
            AnyTranslator::Nmt(t) => FrozenTranslator::Nmt(FrozenNmt::new(t.model().freeze())),
        }
    }

    /// Translates a batch of source sentences.
    pub fn translate_batch(
        &self,
        srcs: &[&[u32]],
        out_len: usize,
        arena: &mut InferArena,
    ) -> Vec<Vec<u32>> {
        match self {
            FrozenTranslator::Ngram(t) => t.translate_batch(srcs, out_len),
            FrozenTranslator::Nmt(t) => t.translate_batch(srcs, out_len, arena),
        }
    }

    /// Approximate heap footprint of the frozen weights/tables in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            FrozenTranslator::Ngram(t) => t.approx_bytes(),
            FrozenTranslator::Nmt(t) => t.spec.approx_bytes(),
        }
    }

    /// The weight encoding of this translator, if it carries packed neural
    /// weights; the statistical family has none.
    pub fn quant_mode(&self) -> Option<QuantMode> {
        match self {
            FrozenTranslator::Ngram(_) => None,
            FrozenTranslator::Nmt(t) => Some(t.spec.quant_mode()),
        }
    }

    /// Re-encodes neural weights to `mode`, folding the measured drift into
    /// `max_err` / `matrices`; statistical tables pass through unchanged.
    fn quantize(
        &self,
        mode: QuantMode,
        max_err: &mut f64,
        matrices: &mut usize,
    ) -> Result<Self, CoreError> {
        match self {
            FrozenTranslator::Ngram(t) => Ok(FrozenTranslator::Ngram(t.clone())),
            FrozenTranslator::Nmt(t) => {
                let (q, report) = t.quantize(mode)?;
                *max_err = max_err.max(report.max_weight_error);
                *matrices += report.matrices;
                Ok(FrozenTranslator::Nmt(q))
            }
        }
    }
}

/// One frozen directional pair model: thresholds plus decoding weights.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenPairModel {
    /// Source sensor node index.
    pub src: usize,
    /// Target sensor node index.
    pub dst: usize,
    /// Training (dev corpus BLEU) score `s(i, j)`.
    pub train_score: f64,
    /// Development-quantile floor (see
    /// [`BrokenRule::DevQuantileFloor`](crate::algorithm2::BrokenRule)).
    pub dev_floor: f64,
    translator: FrozenTranslator,
}

impl FrozenPairModel {
    /// Assembles a frozen pair model directly — for tools that build
    /// serving artifacts without an Algorithm 1 sweep (synthetic plants,
    /// size/throughput experiments).
    pub fn new(
        src: usize,
        dst: usize,
        train_score: f64,
        dev_floor: f64,
        translator: FrozenTranslator,
    ) -> Self {
        Self {
            src,
            dst,
            train_score,
            dev_floor,
            translator,
        }
    }

    /// Freezes one training-side pair model.
    pub(crate) fn freeze(model: &crate::algorithm1::PairModel) -> Self {
        Self {
            src: model.src,
            dst: model.dst,
            train_score: model.train_score,
            dev_floor: model.dev_floor,
            translator: FrozenTranslator::freeze(model.translator()),
        }
    }

    /// The frozen translator.
    pub fn translator(&self) -> &FrozenTranslator {
        &self.translator
    }
}

/// Bounds a quantized serving artifact must respect before it may be
/// published.
///
/// Both bounds are checked at quantization time
/// ([`GraphSnapshot::quantize`] / [`GraphSnapshot::quantize_calibrated`])
/// and re-checked from the artifact's own [`QuantCalibration`] record by
/// [`ModelStore::publish`], so a quantized snapshot arriving over a
/// network publish path cannot sneak past the policy it was built under.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantPolicy {
    /// Largest allowed elementwise `|quantized − f32|` over every
    /// re-encoded weight. Int8's per-row symmetric scale bounds this by
    /// `max|row| / 254`, so the default tolerates rows up to ~12.7.
    pub max_weight_error: f64,
    /// Largest allowed `|Δ anomaly score|` between the quantized artifact
    /// and its f32 original on the calibration windows. Anomaly scores are
    /// fractions of broken pairs in `[0, 1]`, so 0.25 means no calibration
    /// window may flip more than a quarter of the valid relationships.
    pub max_score_drift: f64,
}

impl Default for QuantPolicy {
    fn default() -> Self {
        Self {
            max_weight_error: 0.05,
            max_score_drift: 0.25,
        }
    }
}

/// The calibration record a quantized [`GraphSnapshot`] carries: what the
/// weights were re-encoded to, how far they moved, and the bounds in force
/// when the artifact was built. [`ModelStore::publish`] refuses artifacts
/// whose record is inconsistent with the actual weight encodings or
/// violates its own bounds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantCalibration {
    /// Weight encoding of every neural pair model.
    pub mode: QuantMode,
    /// Measured max elementwise weight error vs the f32 original.
    pub max_weight_error: f64,
    /// Weight-error bound in force at quantization time.
    pub weight_bound: f64,
    /// Measured max `|Δ anomaly score|` on the calibration windows; `None`
    /// when the artifact was quantized without calibration data
    /// ([`GraphSnapshot::quantize`] instead of `quantize_calibrated`).
    pub score_drift: Option<f64>,
    /// Score-drift bound in force at quantization time.
    pub score_bound: f64,
    /// Number of weight matrices re-encoded.
    pub matrices: usize,
}

/// An immutable serving artifact frozen from a fitted model.
///
/// Everything Algorithm 2 needs and nothing training-related: the
/// relationship graph, the language pipeline (vocab tables), one
/// [`FrozenPairModel`] per trained pair, and the valid-model index
/// (`detection.valid_range` applied to the training scores) computed once
/// at freeze time instead of per detection call.
///
/// Serializable: a snapshot round-trips through serde (and
/// [`write_snapshot`](crate::checkpoint::write_snapshot)) and keeps
/// producing bit-identical detection scores. Like
/// [`DetectionConfig::threads`], the thread knob is not persisted — a
/// restored snapshot uses the host's available parallelism.
#[derive(Clone, Serialize)]
pub struct GraphSnapshot {
    graph: RelGraph,
    lang: LanguagePipeline,
    detection: DetectionConfig,
    models: Vec<FrozenPairModel>,
    valid: Vec<usize>,
    /// Present iff the artifact was re-encoded by [`GraphSnapshot::quantize`].
    quant: Option<QuantCalibration>,
}

// Hand-written so pre-quantization artifacts (MDSN v1 payloads, which have
// no `quant` key) keep deserializing, and so a damaged or hand-built valid
// index can never address past the model table.
impl Deserialize for GraphSnapshot {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let graph = serde::__field(content, "graph")?;
        let lang = serde::__field(content, "lang")?;
        let detection = serde::__field(content, "detection")?;
        let models: Vec<FrozenPairModel> = serde::__field(content, "models")?;
        let valid: Vec<usize> = serde::__field(content, "valid")?;
        let quant: Option<QuantCalibration> = match content {
            serde::Content::Map(entries) if entries.iter().any(|(k, _)| k == "quant") => {
                serde::__field(content, "quant")?
            }
            _ => None,
        };
        if let Some(&bad) = valid.iter().find(|&&k| k >= models.len()) {
            return Err(serde::DeError::custom(format!(
                "valid index {bad} out of range for {} models",
                models.len()
            )));
        }
        Ok(Self {
            graph,
            lang,
            detection,
            models,
            valid,
            quant,
        })
    }
}

impl std::fmt::Debug for GraphSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphSnapshot")
            .field("sensors", &self.lang.sensor_count())
            .field("models", &self.models.len())
            .field("valid", &self.valid.len())
            .finish()
    }
}

impl GraphSnapshot {
    /// Freezes a fitted model into a serving artifact.
    pub fn freeze(mdes: &Mdes) -> Self {
        Self::from_parts(
            mdes.language().clone(),
            mdes.trained(),
            mdes.config().detection.clone(),
        )
    }

    /// Freezes a serving artifact from its parts — the resume-friendly form
    /// for a retrained Algorithm 1 sweep whose `TrainedGraph` came back
    /// from [`build_graph`](crate::algorithm1::build_graph) directly.
    pub fn from_parts(
        lang: LanguagePipeline,
        trained: &crate::algorithm1::TrainedGraph,
        detection: DetectionConfig,
    ) -> Self {
        let models: Vec<FrozenPairModel> = trained
            .models()
            .iter()
            .map(FrozenPairModel::freeze)
            .collect();
        let valid: Vec<usize> = (0..models.len())
            .filter(|&k| detection.valid_range.contains(models[k].train_score))
            .collect();
        Self {
            graph: trained.graph.clone(),
            lang,
            detection,
            models,
            valid,
            quant: None,
        }
    }

    /// Assembles a serving artifact directly from frozen parts, computing
    /// the valid-model index from `detection.valid_range` — for tools that
    /// build synthetic artifacts (e.g. `exp_quant`'s 128-sensor plant)
    /// without re-running an Algorithm 1 sweep.
    pub fn from_frozen_parts(
        graph: RelGraph,
        lang: LanguagePipeline,
        detection: DetectionConfig,
        models: Vec<FrozenPairModel>,
    ) -> Self {
        let valid: Vec<usize> = (0..models.len())
            .filter(|&k| detection.valid_range.contains(models[k].train_score))
            .collect();
        Self {
            graph,
            lang,
            detection,
            models,
            valid,
            quant: None,
        }
    }

    /// The relationship graph.
    pub fn graph(&self) -> &RelGraph {
        &self.graph
    }

    /// The fitted language pipeline (vocab tables).
    pub fn language(&self) -> &LanguagePipeline {
        &self.lang
    }

    /// The detection configuration frozen into this artifact.
    pub fn detection(&self) -> &DetectionConfig {
        &self.detection
    }

    /// All frozen pair models.
    pub fn models(&self) -> &[FrozenPairModel] {
        &self.models
    }

    /// Indices (into [`GraphSnapshot::models`]) of models whose training
    /// score falls in the frozen validity range.
    pub fn valid_models(&self) -> &[usize] {
        &self.valid
    }

    /// Minimum sample width a session must offer: the largest original
    /// sensor index the pipeline references, plus one.
    pub fn min_width(&self) -> usize {
        self.lang
            .languages()
            .iter()
            .map(|l| l.source_index + 1)
            .max()
            .unwrap_or(0)
    }

    /// Approximate heap footprint of the frozen models in bytes — the part
    /// of serving memory that is shared across all sessions.
    pub fn approx_bytes(&self) -> usize {
        self.models
            .iter()
            .map(|m| m.translator.approx_bytes())
            .sum()
    }

    /// The calibration record, present iff this artifact was produced by
    /// [`GraphSnapshot::quantize`] / [`GraphSnapshot::quantize_calibrated`].
    pub fn quant(&self) -> Option<&QuantCalibration> {
        self.quant.as_ref()
    }

    /// The uniform weight encoding of the neural pair models: `Some(F32)`
    /// for a classic artifact (or one with no neural models at all),
    /// `None` when models disagree — a hand-built or tampered artifact
    /// that [`ModelStore::publish`] refuses.
    pub fn quant_mode(&self) -> Option<QuantMode> {
        let mut seen: Option<QuantMode> = None;
        for m in &self.models {
            if let Some(q) = m.translator.quant_mode() {
                match seen {
                    None => seen = Some(q),
                    Some(s) if s != q => return None,
                    Some(_) => {}
                }
            }
        }
        Some(seen.unwrap_or(QuantMode::F32))
    }

    /// Re-encodes every neural pair model's weights to `mode`, measuring
    /// the worst elementwise weight drift against `policy`.
    ///
    /// The result carries a [`QuantCalibration`] record with
    /// `score_drift: None`; run [`GraphSnapshot::quantize_calibrated`]
    /// instead to also measure (and bound) anomaly-score drift on held-out
    /// windows. Detection configuration, vocab tables, thresholds and the
    /// valid-model index are untouched — only the decode weights shrink.
    ///
    /// # Errors
    ///
    /// [`CoreError::QuantizationDrift`] when the measured weight error
    /// exceeds `policy.max_weight_error`; [`CoreError::Nn`] when a weight
    /// is non-finite.
    pub fn quantize(&self, mode: QuantMode, policy: &QuantPolicy) -> Result<Self, CoreError> {
        let mut max_err = 0.0f64;
        let mut matrices = 0usize;
        let models = self
            .models
            .iter()
            .map(|m| -> Result<FrozenPairModel, CoreError> {
                Ok(FrozenPairModel {
                    src: m.src,
                    dst: m.dst,
                    train_score: m.train_score,
                    dev_floor: m.dev_floor,
                    translator: m.translator.quantize(mode, &mut max_err, &mut matrices)?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        if max_err > policy.max_weight_error {
            return Err(CoreError::QuantizationDrift {
                metric: "weight error".to_owned(),
                observed: max_err,
                bound: policy.max_weight_error,
            });
        }
        Ok(Self {
            graph: self.graph.clone(),
            lang: self.lang.clone(),
            detection: self.detection.clone(),
            models,
            valid: self.valid.clone(),
            quant: Some(QuantCalibration {
                mode,
                max_weight_error: max_err,
                weight_bound: policy.max_weight_error,
                score_drift: None,
                score_bound: policy.max_score_drift,
                matrices,
            }),
        })
    }

    /// [`GraphSnapshot::quantize`], plus a calibration pass: both artifacts
    /// run Algorithm 2 over `calib_sets` and the largest `|Δ anomaly
    /// score|` is measured, bounded by `policy.max_score_drift`, and
    /// recorded in the artifact for [`ModelStore::publish`] to re-check.
    ///
    /// # Errors
    ///
    /// As [`GraphSnapshot::quantize`], plus
    /// [`CoreError::QuantizationDrift`] when the measured score drift
    /// exceeds the bound, and any detection error on `calib_sets`.
    pub fn quantize_calibrated(
        &self,
        mode: QuantMode,
        policy: &QuantPolicy,
        calib_sets: &[SentenceSet],
    ) -> Result<Self, CoreError> {
        let mut q = self.quantize(mode, policy)?;
        let base = self.detect_excluding(calib_sets, &[])?;
        let quantized = q.detect_excluding(calib_sets, &[])?;
        let drift = base
            .scores
            .iter()
            .zip(&quantized.scores)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        if drift > policy.max_score_drift {
            return Err(CoreError::QuantizationDrift {
                metric: "score drift".to_owned(),
                observed: drift,
                bound: policy.max_score_drift,
            });
        }
        if let Some(c) = &mut q.quant {
            c.score_drift = Some(drift);
        }
        Ok(q)
    }

    /// Runs Algorithm 2 on aligned test sentence sets against this
    /// snapshot, excluding `excluded_sensors` (graph node indices), on the
    /// crossbeam worker pool.
    ///
    /// Bit-identical to
    /// [`detect_excluding`](crate::algorithm2::detect_excluding) over the
    /// `TrainedGraph` this snapshot was frozen from.
    ///
    /// # Errors
    ///
    /// As [`detect`](crate::algorithm2::detect): empty/misaligned corpora,
    /// or an empty frozen valid-model index.
    pub fn detect_excluding(
        &self,
        test_sets: &[SentenceSet],
        excluded_sensors: &[usize],
    ) -> Result<DetectionResult, CoreError> {
        detect_with_bank(
            self,
            test_sets,
            &self.detection,
            excluded_sensors,
            DetectStrategy::Parallel,
        )
    }

    /// Serial detection on the calling thread through `arena` — used by
    /// serving workers that are already one of many.
    pub(crate) fn detect_serial(
        &self,
        test_sets: &[SentenceSet],
        excluded_sensors: &[usize],
        arena: &mut InferArena,
    ) -> Result<DetectionResult, CoreError> {
        detect_with_bank(
            self,
            test_sets,
            &self.detection,
            excluded_sensors,
            DetectStrategy::Serial(arena),
        )
    }

    /// Cross-session batched detection: one Algorithm 2 round over many
    /// jobs, decoding same-shape windows from different jobs in shared
    /// batches (see [`detect_many_with_bank`]). Used by
    /// [`ServingEngine::push_opt_many`].
    pub(crate) fn detect_many(
        &self,
        jobs: &[DetectJob<'_>],
        threads: usize,
    ) -> Vec<Result<DetectionResult, CoreError>> {
        detect_many_with_bank(self, jobs, &self.detection, threads)
    }
}

impl ModelBank for GraphSnapshot {
    fn node_count(&self) -> usize {
        self.graph.len()
    }

    fn model_count(&self) -> usize {
        self.models.len()
    }

    fn meta(&self, k: usize) -> PairMeta {
        let m = &self.models[k];
        PairMeta {
            src: m.src,
            dst: m.dst,
            train_score: m.train_score,
            dev_floor: m.dev_floor,
        }
    }

    fn frozen_valid(&self) -> Option<&[usize]> {
        Some(&self.valid)
    }

    fn decode_batch(
        &self,
        k: usize,
        srcs: &[&[u32]],
        out_len: usize,
        arena: &mut InferArena,
    ) -> Vec<Vec<u32>> {
        self.models[k]
            .translator
            .translate_batch(srcs, out_len, arena)
    }
}

/// An atomically swappable holder of the current [`GraphSnapshot`].
///
/// Readers take a cheap `Arc` clone ([`ModelStore::current`]); a window
/// mid-flight keeps scoring against the snapshot it started with while
/// [`ModelStore::publish`] installs a retrained one for every window that
/// completes afterwards — no session restart, no dropped buffers.
#[derive(Debug)]
pub struct ModelStore {
    current: Mutex<Arc<GraphSnapshot>>,
    version: AtomicU64,
}

impl ModelStore {
    /// Starts serving `snapshot` at version 1.
    pub fn new(snapshot: GraphSnapshot) -> Self {
        Self {
            current: Mutex::new(Arc::new(snapshot)),
            version: AtomicU64::new(1),
        }
    }

    /// The snapshot currently being served.
    pub fn current(&self) -> Arc<GraphSnapshot> {
        self.current.lock().clone()
    }

    /// Monotonic version of the current snapshot (bumped by each publish).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Atomically replaces the served snapshot, returning the new version.
    ///
    /// Open sessions pick the new snapshot up at their next window
    /// completion; windows already buffered are neither dropped nor
    /// reordered, because buffers live in the sessions, not here.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleSnapshot`] when the new snapshot
    /// uses different windowing (sessions derive their buffer length and
    /// emission stride from it) or requires a wider minimum sample width
    /// than the current one (open sessions were only validated against the
    /// current minimum).
    pub fn publish(&self, snapshot: GraphSnapshot) -> Result<u64, CoreError> {
        let mut current = self.current.lock();
        if snapshot.lang.config() != current.lang.config() {
            return Err(CoreError::IncompatibleSnapshot {
                detail: format!(
                    "window config changed: serving {:?}, offered {:?}",
                    current.lang.config(),
                    snapshot.lang.config()
                ),
            });
        }
        if snapshot.min_width() > current.min_width() {
            return Err(CoreError::IncompatibleSnapshot {
                detail: format!(
                    "minimum sample width grew from {} to {}; open sessions \
                     may be narrower",
                    current.min_width(),
                    snapshot.min_width()
                ),
            });
        }
        // Quantized artifacts must arrive with a self-consistent calibration
        // record that respects its own bounds — a snapshot uploaded over the
        // network publish path is otherwise free to claim whatever it likes.
        let Some(actual) = snapshot.quant_mode() else {
            return Err(CoreError::IncompatibleSnapshot {
                detail: "pair models mix weight encodings".to_owned(),
            });
        };
        match &snapshot.quant {
            None if actual == QuantMode::F32 => {}
            None => {
                return Err(CoreError::IncompatibleSnapshot {
                    detail: format!("{actual} weights carry no calibration record"),
                });
            }
            Some(c) => {
                if c.mode != actual {
                    return Err(CoreError::IncompatibleSnapshot {
                        detail: format!(
                            "calibration record says {} but the weights are {actual}",
                            c.mode
                        ),
                    });
                }
                // NaN-safe: a NaN error must refuse, not pass.
                if c.max_weight_error.is_nan() || c.max_weight_error > c.weight_bound {
                    return Err(CoreError::QuantizationDrift {
                        metric: "weight error".to_owned(),
                        observed: c.max_weight_error,
                        bound: c.weight_bound,
                    });
                }
                if let Some(drift) = c.score_drift {
                    if drift.is_nan() || drift > c.score_bound {
                        return Err(CoreError::QuantizationDrift {
                            metric: "score drift".to_owned(),
                            observed: drift,
                            bound: c.score_bound,
                        });
                    }
                }
            }
        }
        let models = snapshot.models.len();
        let valid = snapshot.valid.len();
        *current = Arc::new(snapshot);
        let version = self.version.fetch_add(1, Ordering::AcqRel) + 1;
        drop(current);
        mdes_obs::event(
            "serve.swap",
            &[
                ("version", (version as usize).into()),
                ("models", models.into()),
                ("valid", valid.into()),
            ],
        );
        Ok(version)
    }
}

/// Per-stream serving state: the trailing window buffers and degradation
/// counters — nothing else. All model weights live in the shared
/// [`GraphSnapshot`], so a session costs only its buffered records.
///
/// Created by [`ServingEngine::open_session`]; pushed through
/// [`ServingEngine::push_opt`] / [`ServingEngine::push_opt_many`]. Cloning a
/// session (or dropping one) updates the engine's live-session gauge.
#[derive(Debug)]
pub struct StreamSession {
    /// Trailing samples per original sensor index.
    buffers: Vec<VecDeque<String>>,
    /// Samples required to form one sentence.
    window: usize,
    /// Samples between consecutive sentence completions.
    step: usize,
    /// Total samples consumed.
    seen: usize,
    /// Number of sensors expected per pushed sample.
    width: usize,
    degradation: DegradationConfig,
    /// Consecutive missing records per original sensor.
    consec_missing: Vec<usize>,
    /// Length of the current run of identical records per original sensor.
    consec_same: Vec<usize>,
    /// Last delivered (non-missing) record per original sensor.
    last_record: Vec<Option<String>>,
    /// Dropout state per sensor as of the previous push, so dropout and
    /// readmission emit one observability event per *transition* rather
    /// than one per sample spent in the state.
    was_dropped: Vec<bool>,
    /// Reusable window snapshot handed to `encode_segment`: names are built
    /// once here, and each emission refills `events` in place instead of
    /// allocating a fresh `Vec<RawTrace>` per completed window.
    scratch_traces: Vec<RawTrace>,
    /// Live-session gauge shared with the engine that opened this session.
    gauge: Arc<AtomicUsize>,
}

impl StreamSession {
    fn new(width: usize, window: usize, step: usize, gauge: Arc<AtomicUsize>) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        Self {
            buffers: vec![VecDeque::new(); width],
            window,
            step,
            seen: 0,
            width,
            degradation: DegradationConfig::default(),
            consec_missing: vec![0; width],
            consec_same: vec![0; width],
            last_record: vec![None; width],
            was_dropped: vec![false; width],
            scratch_traces: (0..width)
                .map(|i| RawTrace::new(format!("b{i}"), Vec::new()))
                .collect(),
            gauge,
        }
    }

    /// Replaces the dropout-detection thresholds (builder style).
    #[must_use]
    pub fn with_degradation(mut self, degradation: DegradationConfig) -> Self {
        self.degradation = degradation;
        self
    }

    /// Sensors expected per pushed sample.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Samples needed before the first detection can be emitted.
    pub fn warmup(&self) -> usize {
        self.window
    }

    /// Total samples consumed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Original indices of sensors currently considered dropped.
    pub fn dropped_sensors(&self) -> Vec<usize> {
        (0..self.width).filter(|&i| self.is_dropped(i)).collect()
    }

    /// Approximate heap footprint of this session's state in bytes — the
    /// per-stream cost that `exp_serving` compares against the shared
    /// snapshot.
    pub fn approx_bytes(&self) -> usize {
        let string = std::mem::size_of::<String>();
        let buffered: usize = self
            .buffers
            .iter()
            .flatten()
            .map(|s| s.len() + string)
            .sum();
        let scratch: usize = self
            .scratch_traces
            .iter()
            .map(|t| t.name.len() + t.events.iter().map(|e| e.len() + string).sum::<usize>())
            .sum();
        let last: usize = self
            .last_record
            .iter()
            .flatten()
            .map(|s| s.len() + string)
            .sum();
        let counters = self.width
            * (2 * std::mem::size_of::<usize>()
                + std::mem::size_of::<bool>()
                + std::mem::size_of::<Option<String>>());
        buffered + scratch + last + counters
    }

    fn is_dropped(&self, sensor: usize) -> bool {
        self.consec_missing[sensor] >= self.degradation.missing_limit.max(1)
            || self
                .degradation
                .stuck_limit
                .is_some_and(|limit| self.consec_same[sensor] >= limit.max(1))
    }

    /// Absorbs one sample into the trailing buffers; `Ok(true)` when this
    /// sample completes a sentence window.
    fn absorb(&mut self, records: &[Option<String>]) -> Result<bool, CoreError> {
        if records.len() != self.width {
            return Err(CoreError::MisalignedCorpora {
                expected: self.width,
                found: records.len(),
            });
        }
        for (i, rec) in records.iter().enumerate() {
            match rec {
                Some(r) => {
                    self.consec_missing[i] = 0;
                    if self.last_record[i].as_deref() == Some(r.as_str()) {
                        self.consec_same[i] += 1;
                    } else {
                        self.consec_same[i] = 1;
                        self.last_record[i] = Some(r.clone());
                    }
                    self.buffers[i].push_back(r.clone());
                }
                None => {
                    self.consec_missing[i] += 1;
                    self.buffers[i].push_back(MISSING_RECORD.to_owned());
                }
            }
            if self.buffers[i].len() > self.window {
                self.buffers[i].pop_front();
            }
        }
        if mdes_obs::enabled() {
            for i in 0..self.width {
                let now_dropped = self.is_dropped(i);
                if now_dropped != self.was_dropped[i] {
                    mdes_obs::event(
                        if now_dropped {
                            "online.sensor_dropped"
                        } else {
                            "online.sensor_readmitted"
                        },
                        &[("sensor", i.into()), ("sample", self.seen.into())],
                    );
                    self.was_dropped[i] = now_dropped;
                }
            }
        }
        self.seen += 1;
        Ok(self.seen >= self.window && (self.seen - self.window).is_multiple_of(self.step))
    }

    /// Refills the preallocated window snapshot from the trailing buffers.
    fn refill_scratch(&mut self) {
        for (trace, buf) in self.scratch_traces.iter_mut().zip(&self.buffers) {
            trace.events.clear();
            trace.events.extend(buf.iter().cloned());
        }
    }
}

impl Clone for StreamSession {
    fn clone(&self) -> Self {
        self.gauge.fetch_add(1, Ordering::Relaxed);
        Self {
            buffers: self.buffers.clone(),
            window: self.window,
            step: self.step,
            seen: self.seen,
            width: self.width,
            degradation: self.degradation,
            consec_missing: self.consec_missing.clone(),
            consec_same: self.consec_same.clone(),
            last_record: self.last_record.clone(),
            was_dropped: self.was_dropped.clone(),
            scratch_traces: self.scratch_traces.clone(),
            gauge: Arc::clone(&self.gauge),
        }
    }
}

impl Drop for StreamSession {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A shared serving engine multiplexing many [`StreamSession`]s over one
/// [`ModelStore`].
///
/// Cloning the engine is cheap (two `Arc`s); clones share the store and the
/// live-session gauge, so an engine can be handed to every ingestion thread.
#[derive(Clone, Debug)]
pub struct ServingEngine {
    store: Arc<ModelStore>,
    sessions: Arc<AtomicUsize>,
    /// Worker threads for [`ServingEngine::push_opt_many`] (0 = all CPUs).
    threads: usize,
}

impl ServingEngine {
    /// Starts an engine serving `snapshot`.
    pub fn new(snapshot: GraphSnapshot) -> Self {
        Self::from_store(Arc::new(ModelStore::new(snapshot)))
    }

    /// Wraps an existing store — for sharing one store across several
    /// engines (e.g. one per ingestion shard).
    pub fn from_store(store: Arc<ModelStore>) -> Self {
        Self {
            store,
            sessions: Arc::new(AtomicUsize::new(0)),
            threads: 0,
        }
    }

    /// Replaces the multiplexing thread count (builder style; 0 = all
    /// CPUs). Results are byte-identical at any thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The underlying hot-swappable store.
    pub fn store(&self) -> &Arc<ModelStore> {
        &self.store
    }

    /// The snapshot currently being served.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.store.current()
    }

    /// Publishes a retrained snapshot to every session served by this
    /// engine (and any other engine sharing the store); see
    /// [`ModelStore::publish`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleSnapshot`] when the snapshot cannot
    /// be served to the already-open sessions.
    pub fn publish(&self, snapshot: GraphSnapshot) -> Result<u64, CoreError> {
        self.store.publish(snapshot)
    }

    /// Number of sessions currently alive (opened or cloned, not dropped).
    pub fn session_count(&self) -> usize {
        self.sessions.load(Ordering::Relaxed)
    }

    /// Opens a session over samples of `width` sensors (the original trace
    /// count used at fit time).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WidthMismatch`] if `width` is smaller than the
    /// served snapshot's minimum width.
    pub fn open_session(&self, width: usize) -> Result<StreamSession, CoreError> {
        let snapshot = self.store.current();
        let needed = snapshot.min_width();
        if width < needed {
            return Err(CoreError::WidthMismatch { width, needed });
        }
        let cfg = *snapshot.language().config();
        let session = StreamSession::new(
            width,
            cfg.min_samples(),
            cfg.sent_stride * cfg.word_stride,
            Arc::clone(&self.sessions),
        );
        mdes_obs::observe("serve.sessions", self.session_count() as f64);
        Ok(session)
    }

    /// Consumes one complete multivariate sample for `session`. Returns a
    /// detection when this sample completes a sentence window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MisalignedCorpora`] when the sample width is
    /// wrong, and propagates detection errors (e.g. no valid models).
    pub fn push(
        &self,
        session: &mut StreamSession,
        records: &[String],
    ) -> Result<Option<OnlineDetection>, CoreError> {
        let opt: Vec<Option<String>> = records.iter().cloned().map(Some).collect();
        self.push_opt(session, &opt)
    }

    /// Consumes one possibly-incomplete multivariate sample (`None` marks a
    /// sensor that delivered no record this tick); see
    /// [`OnlineMonitor::push_opt`](crate::online::OnlineMonitor::push_opt)
    /// for the degradation semantics, which are identical.
    ///
    /// The completed window is scored against the snapshot served *at
    /// completion time*: a [`ModelStore::publish`] between pushes applies
    /// from the first window completed after it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MisalignedCorpora`] when the sample width is
    /// wrong, and propagates detection errors (e.g. no valid models).
    pub fn push_opt(
        &self,
        session: &mut StreamSession,
        records: &[Option<String>],
    ) -> Result<Option<OnlineDetection>, CoreError> {
        self.push_one(session, records, None, None)
    }

    /// Pushes one sample into each of `sessions` (sample `i` into session
    /// `i`). Result `i` is session `i`'s outcome, in order; results are
    /// byte-identical to pushing serially at any thread count.
    ///
    /// Sessions that complete a window on this tick are detected *together*
    /// in one cross-session Algorithm 2 round
    /// ([`detect_many_with_bank`]): every window needing pair model `k` is
    /// decoded in shared `(shape)`-keyed batches, so B streams completing
    /// the same-shaped window cost one GEMM per decode step instead of B.
    /// Batch invariance of the kernels (including the quantized family)
    /// keeps the scores bitwise equal to per-session pushes.
    ///
    /// Every window completed by this call is scored against the same
    /// snapshot (read once at entry), so one tick is never split across a
    /// hot-swap.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` and `samples` have different lengths.
    pub fn push_opt_many(
        &self,
        sessions: &mut [StreamSession],
        samples: &[Vec<Option<String>>],
    ) -> Vec<Result<Option<OnlineDetection>, CoreError>> {
        assert_eq!(
            sessions.len(),
            samples.len(),
            "one sample per session required"
        );
        mdes_obs::observe("serve.sessions", self.session_count() as f64);
        let snapshot = self.store.current();
        let mut results: Vec<Option<Result<Option<OnlineDetection>, CoreError>>> =
            sessions.iter().map(|_| None).collect();

        /// A session whose window completed on this tick, with its encoded
        /// window held until the shared detection round below.
        struct Completing {
            idx: usize,
            sets: Vec<SentenceSet>,
            excluded: Vec<usize>,
            dropped: Vec<usize>,
            sample_index: usize,
            span: mdes_obs::Span,
        }

        // Phase 1 — absorb every sample and encode the completed windows.
        // Each session still gets its own `serve.push_us` measurement: in a
        // batched round, the effective latency of one push *is* the round's
        // duration, so the timers all run until the round ends.
        let push_timers: Vec<_> = sessions
            .iter()
            .map(|_| mdes_obs::timer("serve.push_us"))
            .collect();
        let mut completing: Vec<Completing> = Vec::new();
        for (i, (session, sample)) in sessions.iter_mut().zip(samples).enumerate() {
            match session.absorb(sample) {
                Err(e) => results[i] = Some(Err(e)),
                Ok(false) => results[i] = Some(Ok(None)),
                Ok(true) => {
                    let span = mdes_obs::span("online.push");
                    mdes_obs::counter("online.windows", 1);
                    session.refill_scratch();
                    match snapshot
                        .language()
                        .encode_segment(&session.scratch_traces, 0..session.window)
                    {
                        Err(e) => results[i] = Some(Err(e.into())),
                        Ok(sets) => {
                            let dropped = session.dropped_sensors();
                            let excluded: Vec<usize> = snapshot
                                .language()
                                .languages()
                                .iter()
                                .enumerate()
                                .filter(|(_, l)| dropped.contains(&l.source_index))
                                .map(|(node, _)| node)
                                .collect();
                            completing.push(Completing {
                                idx: i,
                                sets,
                                excluded,
                                dropped,
                                sample_index: session.seen - 1,
                                span,
                            });
                        }
                    }
                }
            }
        }

        // Phase 2 — one cross-session detection round over every completed
        // window, sharing decode batches between sessions.
        let jobs: Vec<DetectJob<'_>> = completing
            .iter()
            .map(|c| DetectJob {
                test_sets: &c.sets,
                excluded_sensors: &c.excluded,
            })
            .collect();
        let detections = snapshot.detect_many(&jobs, self.threads);

        // Phase 3 — per-session outcomes.
        for (c, detection) in completing.into_iter().zip(detections) {
            let mut span = c.span;
            results[c.idx] = Some(match detection {
                Err(e) => Err(e),
                Ok(result) => {
                    span.field("sample_index", c.sample_index);
                    span.field("score", result.scores[0]);
                    span.field("coverage", result.coverage);
                    Ok(Some(OnlineDetection {
                        sample_index: c.sample_index,
                        score: result.scores[0],
                        alerts: result.alerts.into_iter().next().unwrap_or_default(),
                        coverage: result.coverage,
                        dropped_sensors: c.dropped,
                    }))
                }
            });
        }
        drop(push_timers);
        results
            .into_iter()
            .map(|r| r.expect("every session resolved"))
            .collect()
    }

    /// The shared push body. `snapshot` pins the artifact for a batch call
    /// (`None` = read the store at window completion); `arena` selects
    /// serial in-worker detection (`None` = the model-parallel pool).
    fn push_one(
        &self,
        session: &mut StreamSession,
        records: &[Option<String>],
        snapshot: Option<&GraphSnapshot>,
        arena: Option<&mut InferArena>,
    ) -> Result<Option<OnlineDetection>, CoreError> {
        let _push_timer = mdes_obs::timer("serve.push_us");
        if !session.absorb(records)? {
            return Ok(None);
        }
        // Buffering pushes above stay cheap; the span covers only the
        // expensive window-completing path (encode + detect).
        let mut push_span = mdes_obs::span("online.push");
        mdes_obs::counter("online.windows", 1);
        let owned;
        let snap = match snapshot {
            Some(s) => s,
            None => {
                owned = self.store.current();
                &owned
            }
        };
        session.refill_scratch();
        let sets = snap
            .language()
            .encode_segment(&session.scratch_traces, 0..session.window)?;
        // Dropped sensors are tracked by original index; detection excludes
        // by graph node index, so translate through each language's source.
        let dropped = session.dropped_sensors();
        let excluded: Vec<usize> = snap
            .language()
            .languages()
            .iter()
            .enumerate()
            .filter(|(_, l)| dropped.contains(&l.source_index))
            .map(|(node, _)| node)
            .collect();
        let result = match arena {
            Some(a) => snap.detect_serial(&sets, &excluded, a)?,
            None => snap.detect_excluding(&sets, &excluded)?,
        };
        push_span.field("sample_index", session.seen - 1);
        push_span.field("score", result.scores[0]);
        push_span.field("coverage", result.coverage);
        Ok(Some(OnlineDetection {
            sample_index: session.seen - 1,
            score: result.scores[0],
            alerts: result.alerts.into_iter().next().unwrap_or_default(),
            coverage: result.coverage,
            dropped_sensors: dropped,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MdesConfig;
    use mdes_graph::ScoreRange;
    use mdes_lang::WindowConfig;

    fn square(name: &str, n: usize, phase: usize) -> RawTrace {
        RawTrace::new(
            name,
            (0..n)
                .map(|t| {
                    if ((t + phase) / 5).is_multiple_of(2) {
                        "on"
                    } else {
                        "off"
                    }
                    .to_owned()
                })
                .collect(),
        )
    }

    fn fitted() -> (Mdes, Vec<RawTrace>) {
        let traces = vec![
            square("a", 700, 0),
            square("b", 700, 2),
            square("c", 700, 4),
        ];
        let mut cfg = MdesConfig {
            window: WindowConfig {
                word_len: 4,
                word_stride: 1,
                sent_len: 5,
                sent_stride: 5,
            },
            ..MdesConfig::default()
        };
        cfg.detection.valid_range = ScoreRange::closed(60.0, 100.0);
        let m = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit");
        (m, traces)
    }

    /// A two-sensor plant trained with the paper's neural family — the
    /// quantization tests need packed neural weights to re-encode. The
    /// detection margin gives BLEU a few points of slack so quantization
    /// noise cannot flip a broken/healthy decision on this tiny fixture.
    fn neural_fitted() -> (Mdes, Vec<RawTrace>) {
        let traces = vec![square("a", 700, 0), square("b", 700, 2)];
        let mut cfg = MdesConfig {
            window: WindowConfig {
                word_len: 4,
                word_stride: 1,
                sent_len: 5,
                sent_stride: 5,
            },
            ..MdesConfig::default()
        };
        cfg.build.translator = crate::translator::TranslatorConfig::neural();
        cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
        cfg.detection.margin = 5.0;
        let m = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit");
        (m, traces)
    }

    #[test]
    fn snapshot_freezes_valid_index_and_width() {
        let (m, _) = fitted();
        let snap = GraphSnapshot::freeze(&m);
        assert_eq!(snap.models().len(), m.trained().models().len());
        assert_eq!(snap.min_width(), 3);
        let expected: Vec<usize> = (0..m.trained().models().len())
            .filter(|&k| {
                m.config()
                    .detection
                    .valid_range
                    .contains(m.trained().models()[k].train_score)
            })
            .collect();
        assert_eq!(snap.valid_models(), expected.as_slice());
        assert!(snap.approx_bytes() > 0);
    }

    #[test]
    fn snapshot_detection_matches_trained_graph_bitwise() {
        let (m, traces) = fitted();
        let snap = GraphSnapshot::freeze(&m);
        let sets = m
            .language()
            .encode_segment(&traces, 450..700)
            .expect("encode");
        let legacy = crate::algorithm2::detect(m.trained(), &sets, &m.config().detection)
            .expect("legacy detect");
        let frozen = snap.detect_excluding(&sets, &[]).expect("frozen detect");
        assert_eq!(legacy, frozen);
        // Serial strategy through one arena: still identical.
        let mut arena = InferArena::new();
        let serial = snap
            .detect_serial(&sets, &[], &mut arena)
            .expect("serial detect");
        assert_eq!(legacy, serial);
    }

    #[test]
    fn store_publish_bumps_version_and_swaps() {
        let (m, _) = fitted();
        let store = ModelStore::new(GraphSnapshot::freeze(&m));
        assert_eq!(store.version(), 1);
        let v2 = store.publish(GraphSnapshot::freeze(&m)).expect("publish");
        assert_eq!(v2, 2);
        assert_eq!(store.version(), 2);
    }

    #[test]
    fn incompatible_window_config_is_rejected() {
        let (m, traces) = fitted();
        let store = ModelStore::new(GraphSnapshot::freeze(&m));
        let mut cfg = m.config().clone();
        cfg.window.sent_len = 6;
        let other = Mdes::fit(&traces, 0..300, 300..450, cfg).expect("fit");
        let r = store.publish(GraphSnapshot::freeze(&other));
        assert!(matches!(r, Err(CoreError::IncompatibleSnapshot { .. })));
        assert_eq!(store.version(), 1, "rejected publish must not bump");
    }

    #[test]
    fn session_gauge_tracks_open_clone_and_drop() {
        let (m, _) = fitted();
        let engine = ServingEngine::new(GraphSnapshot::freeze(&m));
        assert_eq!(engine.session_count(), 0);
        let s1 = engine.open_session(3).expect("open");
        let s2 = s1.clone();
        assert_eq!(engine.session_count(), 2);
        drop(s1);
        drop(s2);
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn open_session_rejects_narrow_width() {
        let (m, _) = fitted();
        let engine = ServingEngine::new(GraphSnapshot::freeze(&m));
        assert!(matches!(
            engine.open_session(1),
            Err(CoreError::WidthMismatch {
                width: 1,
                needed: 3
            })
        ));
    }

    #[test]
    fn snapshot_serde_roundtrip_preserves_detection() {
        let (m, traces) = fitted();
        let snap = GraphSnapshot::freeze(&m);
        let json = serde_json::to_string(&snap).expect("serialize");
        let restored: GraphSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(restored.valid_models(), snap.valid_models());
        assert_eq!(restored.min_width(), snap.min_width());
        let sets = m
            .language()
            .encode_segment(&traces, 450..700)
            .expect("encode");
        assert_eq!(
            snap.detect_excluding(&sets, &[]).expect("original"),
            restored.detect_excluding(&sets, &[]).expect("restored"),
        );
    }

    #[test]
    fn quantized_snapshot_scores_stay_within_declared_drift() {
        let (m, traces) = neural_fitted();
        let snap = GraphSnapshot::freeze(&m);
        let sets = m
            .language()
            .encode_segment(&traces, 450..700)
            .expect("encode");
        let policy = QuantPolicy::default();
        let base = snap.detect_excluding(&sets, &[]).expect("f32 detect");
        for mode in [QuantMode::F16, QuantMode::Int8] {
            let q = snap
                .quantize_calibrated(mode, &policy, &sets)
                .expect("quantize");
            let c = q.quant().expect("calibration record");
            assert_eq!(c.mode, mode);
            assert!(c.max_weight_error <= c.weight_bound);
            let drift = c.score_drift.expect("calibrated");
            assert!(drift <= c.score_bound, "{mode}: drift {drift}");
            assert_eq!(q.quant_mode(), Some(mode));
            assert!(c.matrices > 0);
            // The record is honest: re-measuring reproduces it.
            let scores = q.detect_excluding(&sets, &[]).expect("quant detect");
            let measured = base
                .scores
                .iter()
                .zip(&scores.scores)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert_eq!(measured, drift, "{mode}");
            assert!(q.approx_bytes() < snap.approx_bytes(), "{mode}");
            if mode == QuantMode::Int8 {
                assert!(
                    q.approx_bytes() * 2 <= snap.approx_bytes(),
                    "int8 must at least halve the artifact: {} vs {}",
                    q.approx_bytes(),
                    snap.approx_bytes()
                );
            }
        }
        // An impossible weight bound is enforced at quantization time.
        let strict = QuantPolicy {
            max_weight_error: 1e-12,
            ..QuantPolicy::default()
        };
        assert!(matches!(
            snap.quantize(QuantMode::Int8, &strict),
            Err(CoreError::QuantizationDrift { .. })
        ));
    }

    #[test]
    fn quantized_snapshot_serde_roundtrip_preserves_scores() {
        let (m, traces) = neural_fitted();
        let sets = m
            .language()
            .encode_segment(&traces, 450..700)
            .expect("encode");
        let q = GraphSnapshot::freeze(&m)
            .quantize_calibrated(QuantMode::Int8, &QuantPolicy::default(), &sets)
            .expect("quantize");
        let json = serde_json::to_string(&q).expect("serialize");
        let restored: GraphSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(restored.quant(), q.quant());
        assert_eq!(restored.quant_mode(), Some(QuantMode::Int8));
        assert_eq!(
            q.detect_excluding(&sets, &[]).expect("original"),
            restored.detect_excluding(&sets, &[]).expect("restored"),
        );
    }

    #[test]
    fn snapshot_deserialize_tolerates_missing_quant_and_validates_valid_index() {
        use serde::Content;
        let (m, _) = fitted();
        let snap = GraphSnapshot::freeze(&m);
        let Content::Map(entries) = snap.to_content() else {
            panic!("snapshot serializes as a map");
        };
        // A pre-quantization (MDSN v1) payload has no `quant` key at all.
        let stripped = Content::Map(
            entries
                .iter()
                .filter(|(k, _)| k != "quant")
                .cloned()
                .collect(),
        );
        let back = GraphSnapshot::from_content(&stripped).expect("v1 payload");
        assert!(back.quant().is_none());
        assert_eq!(back.valid_models(), snap.valid_models());
        // A valid index addressing past the model table is damage, not data.
        let forged = Content::Map(
            entries
                .iter()
                .map(|(k, v)| {
                    if k == "valid" {
                        (k.clone(), vec![snap.models().len()].to_content())
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect(),
        );
        assert!(GraphSnapshot::from_content(&forged).is_err());
    }

    #[test]
    fn publish_accepts_calibrated_quantized_snapshot_and_rejects_forgeries() {
        let (m, traces) = neural_fitted();
        let snap = GraphSnapshot::freeze(&m);
        let sets = m
            .language()
            .encode_segment(&traces, 450..700)
            .expect("encode");
        let store = ModelStore::new(snap.clone());
        let q = snap
            .quantize_calibrated(QuantMode::Int8, &QuantPolicy::default(), &sets)
            .expect("quantize");
        store.publish(q.clone()).expect("calibrated publish");
        // Quantized weights without a calibration record are refused.
        let mut naked = q.clone();
        naked.quant = None;
        assert!(matches!(
            store.publish(naked),
            Err(CoreError::IncompatibleSnapshot { .. })
        ));
        // A record whose mode disagrees with the actual weights is refused.
        let mut lying = q.clone();
        lying.quant.as_mut().expect("record").mode = QuantMode::F16;
        assert!(matches!(
            store.publish(lying),
            Err(CoreError::IncompatibleSnapshot { .. })
        ));
        // A record violating its own recorded bounds is refused.
        let mut drifted = q.clone();
        drifted.quant.as_mut().expect("record").score_drift = Some(0.9);
        assert!(matches!(
            store.publish(drifted),
            Err(CoreError::QuantizationDrift { .. })
        ));
        let mut heavy = q.clone();
        heavy.quant.as_mut().expect("record").max_weight_error = 1.0;
        assert!(matches!(
            store.publish(heavy),
            Err(CoreError::QuantizationDrift { .. })
        ));
        // Models mixing encodings (hand-spliced artifact) are refused.
        let mut mixed = q.clone();
        mixed.models[0].translator = snap.models()[0].translator.clone();
        assert!(matches!(
            store.publish(mixed),
            Err(CoreError::IncompatibleSnapshot { .. })
        ));
    }

    #[test]
    fn quantized_push_opt_many_matches_individual_pushes() {
        let (m, traces) = neural_fitted();
        let sets = m
            .language()
            .encode_segment(&traces, 450..700)
            .expect("encode");
        let q = GraphSnapshot::freeze(&m)
            .quantize_calibrated(QuantMode::Int8, &QuantPolicy::default(), &sets)
            .expect("quantize");
        let engine = ServingEngine::new(q).with_threads(2);
        let mut many: Vec<StreamSession> = (0..3)
            .map(|_| engine.open_session(2).expect("open"))
            .collect();
        let mut single = engine.open_session(2).expect("open");
        for t in 450..530 {
            let sample: Vec<Option<String>> =
                traces.iter().map(|tr| Some(tr.events[t].clone())).collect();
            let batch = engine.push_opt_many(&mut many, &vec![sample.clone(); 3]);
            let lone = engine.push_opt(&mut single, &sample).expect("push");
            for r in batch {
                assert_eq!(r.expect("batch push"), lone);
            }
        }
    }

    #[test]
    fn push_opt_many_matches_individual_pushes() {
        let (m, traces) = fitted();
        let engine = ServingEngine::new(GraphSnapshot::freeze(&m)).with_threads(2);
        let mut many: Vec<StreamSession> = (0..4)
            .map(|_| engine.open_session(3).expect("open"))
            .collect();
        let mut single = engine.open_session(3).expect("open");
        for t in 450..560 {
            let sample: Vec<Option<String>> =
                traces.iter().map(|tr| Some(tr.events[t].clone())).collect();
            let batch = engine.push_opt_many(&mut many, &vec![sample.clone(); 4]);
            let lone = engine.push_opt(&mut single, &sample).expect("push");
            for r in batch {
                assert_eq!(r.expect("batch push"), lone);
            }
        }
    }
}
