//! `mdes-obs` — tracing spans and metrics for the mdes pipeline.
//!
//! A vendored-style stand-in for the `tracing`/`metrics` ecosystem (the
//! build environment has no registry access): spans with key–value fields,
//! monotonic counters, and log-scale latency histograms, all funneled into a
//! process-global [`Recorder`].
//!
//! The design constraint is that **instrumentation must cost nothing when
//! nobody is watching**: every entry point ([`span`], [`timer`],
//! [`counter`], [`observe`], [`event`]) first checks a relaxed atomic flag
//! and returns a no-op value when no recorder is installed — no clock read,
//! no allocation, no lock. Installed, the recorder aggregates counters and
//! histograms in memory (readable via [`Recorder::counter_value`],
//! [`Recorder::histogram`], and the human-readable [`Recorder::report`])
//! and optionally streams spans and events as JSON Lines
//! ([`Recorder::with_jsonl_path`]); the JSONL schema is documented in
//! DESIGN.md §10.
//!
//! ```
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(mdes_obs::Recorder::new());
//! mdes_obs::install(recorder.clone());
//! {
//!     let mut span = mdes_obs::span("demo.work");
//!     span.field("items", 3u64);
//! } // drop records the span duration
//! mdes_obs::counter("demo.done", 1);
//! assert_eq!(recorder.counter_value("demo.done"), 1);
//! assert_eq!(recorder.histogram("demo.work").expect("recorded").count, 1);
//! mdes_obs::uninstall();
//! ```

#![warn(missing_docs)]

mod recorder;

pub use recorder::{HistogramSnapshot, Recorder};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fast-path flag: `true` iff a recorder is installed. Checked with a single
/// relaxed load before any other work on every instrumentation call.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder. A `Mutex` rather than `OnceLock` so tests and
/// long-lived processes can swap sinks; the lock is only touched when
/// `ENABLED` says a recorder exists.
static RECORDER: Mutex<Option<Arc<Recorder>>> = Mutex::new(None);

/// Installs `recorder` as the process-global recorder, replacing any
/// previous one. Instrumented code paths start emitting immediately.
pub fn install(recorder: Arc<Recorder>) {
    let mut slot = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the global recorder (instrumentation reverts to no-ops) and
/// returns it, so a caller can still [`Recorder::report`] or flush it.
pub fn uninstall() -> Option<Arc<Recorder>> {
    ENABLED.store(false, Ordering::SeqCst);
    RECORDER.lock().unwrap_or_else(|e| e.into_inner()).take()
}

/// Whether a recorder is currently installed. One relaxed atomic load — the
/// same check every instrumentation entry point performs first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed recorder, if any — for consumers that want to *read*
/// aggregated telemetry (e.g. a daemon's `obs` admin endpoint dumping
/// [`Recorder::report`]) without tearing the recorder down the way
/// [`uninstall`] does.
pub fn installed() -> Option<Arc<Recorder>> {
    current()
}

/// The installed recorder, if any.
fn current() -> Option<Arc<Recorder>> {
    if !enabled() {
        return None;
    }
    RECORDER.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// A field value attached to a span or event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as JSON `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Increments the monotonic counter `name` by `delta`. No-op when no
/// recorder is installed.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if let Some(r) = current() {
        r.counter(name, delta);
    }
}

/// Records `value` into the log-scale histogram `name`. Values are unitless
/// to the histogram; by convention latency series carry a `_us` suffix.
/// No-op when no recorder is installed.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if let Some(r) = current() {
        r.observe(name, value);
    }
}

/// Emits a discrete event: one JSONL line (when a sink is configured) plus
/// an increment of the counter of the same name, so event streams always
/// reconcile with the aggregate report. No-op when no recorder is installed.
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, Value)]) {
    if let Some(r) = current() {
        r.event(name, fields);
    }
}

/// Starts a span named `name`. The span records its wall-clock duration
/// into the histogram of the same name when dropped, and emits a JSONL
/// `span` line carrying any attached [`Span::field`]s. When no recorder is
/// installed the returned guard is inert: no clock read, no allocation.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        inner: current().map(|recorder| SpanInner {
            recorder,
            name,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

/// Starts a duration-only measurement: like [`span`] but records *only* the
/// histogram observation on drop, never a JSONL line. Use on per-item hot
/// loops (e.g. per-model decode) where a line per observation would swamp
/// the sink.
#[inline]
pub fn timer(name: &'static str) -> Timer {
    Timer {
        inner: current().map(|recorder| (recorder, name, Instant::now())),
    }
}

struct SpanInner {
    recorder: Arc<Recorder>,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

/// An in-flight span; see [`span`].
#[must_use = "a span records its duration when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attaches a key–value field, included in the span's JSONL line.
    /// No-op on an inert span.
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let us = inner.start.elapsed().as_secs_f64() * 1e6;
            inner.recorder.span_end(inner.name, us, &inner.fields);
        }
    }
}

/// An in-flight duration-only measurement; see [`timer`].
#[must_use = "a timer records its duration when dropped; binding it to `_` drops it immediately"]
pub struct Timer {
    inner: Option<(Arc<Recorder>, &'static str, Instant)>,
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((recorder, name, start)) = self.inner.take() {
            recorder.observe(name, start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-recorder tests must not interleave: `cargo test` runs test
    /// functions on parallel threads within one process.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_recorder(f: impl FnOnce(&Recorder)) {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let recorder = Arc::new(Recorder::new());
        install(recorder.clone());
        f(&recorder);
        uninstall();
    }

    #[test]
    fn disabled_paths_are_inert() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!enabled());
        counter("t.never", 1);
        observe("t.never_us", 5.0);
        event("t.never_event", &[("k", 1u64.into())]);
        let mut s = span("t.never_span");
        s.field("k", "v");
        drop(s);
        drop(timer("t.never_timer"));
        // Nothing to assert against — the point is none of the above panics
        // or requires a recorder; install one now and confirm it saw nothing.
        let recorder = Arc::new(Recorder::new());
        install(recorder.clone());
        assert_eq!(recorder.counter_value("t.never"), 0);
        assert!(recorder.histogram("t.never_span").is_none());
        uninstall();
    }

    #[test]
    fn counters_accumulate_and_events_count() {
        with_recorder(|r| {
            counter("t.count", 2);
            counter("t.count", 3);
            event("t.evt", &[("sensor", 4usize.into())]);
            assert_eq!(r.counter_value("t.count"), 5);
            assert_eq!(r.counter_value("t.evt"), 1);
            assert_eq!(r.counter_value("t.absent"), 0);
        });
    }

    #[test]
    fn spans_and_timers_feed_histograms() {
        with_recorder(|r| {
            for _ in 0..4 {
                let mut s = span("t.span_us");
                s.field("k", 1u64);
            }
            drop(timer("t.timer_us"));
            let h = r.histogram("t.span_us").expect("span histogram");
            assert_eq!(h.count, 4);
            assert!(h.mean >= 0.0 && h.max >= h.p50);
            assert_eq!(r.histogram("t.timer_us").expect("timer").count, 1);
        });
    }

    #[test]
    fn install_swaps_recorders() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = Arc::new(Recorder::new());
        let b = Arc::new(Recorder::new());
        install(a.clone());
        counter("t.swap", 1);
        install(b.clone());
        counter("t.swap", 10);
        assert_eq!(a.counter_value("t.swap"), 1);
        assert_eq!(b.counter_value("t.swap"), 10);
        let back = uninstall().expect("recorder installed");
        assert!(Arc::ptr_eq(&back, &b));
        assert!(!enabled());
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        with_recorder(|r| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for _ in 0..1000 {
                            counter("t.par", 1);
                            observe("t.par_us", 1.0);
                        }
                    });
                }
            });
            assert_eq!(r.counter_value("t.par"), 4000);
            assert_eq!(r.histogram("t.par_us").expect("histogram").count, 4000);
        });
    }
}
