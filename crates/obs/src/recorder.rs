//! Aggregation backend: counters, log-scale histograms, JSONL sink.

use crate::Value;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Number of log2 buckets. Bucket `i` holds values in `[2^(i-1), 2^i)`
/// (bucket 0 holds `< 1`), so 64 buckets cover any f64 latency in µs.
const BUCKETS: usize = 64;

/// A log-scale histogram: exact count/sum/min/max plus log2 buckets for
/// approximate percentiles. Values are unitless; latency series use µs.
#[derive(Clone, Debug)]
struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: f64) -> usize {
        if value < 1.0 {
            return 0;
        }
        // log2(value) + 1, clamped into the table.
        ((value.log2() as usize) + 1).min(BUCKETS - 1)
    }

    fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Approximate quantile: walks buckets to the one containing rank
    /// `q * count` and returns that bucket's upper edge (within 2x of the
    /// true value by construction).
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 1.0 } else { (1u64 << i) as f64 };
                // Never report an estimate outside the observed range.
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_owned(),
            count: self.count,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum / self.count as f64
            },
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.5),
            p95: self.quantile(0.95),
        }
    }
}

/// A point-in-time view of one histogram, as returned by
/// [`Recorder::histogram`]. Percentiles are approximate (log2-bucket
/// resolution, within 2x); `mean`/`min`/`max` are exact.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Series name.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Exact arithmetic mean of observations.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
}

/// Aggregating metrics recorder; see the crate docs for the model.
///
/// Thread-safe: counters and histograms live behind one mutex (instrumented
/// paths hold it for a few arithmetic ops), the optional JSONL sink behind
/// another so slow disk writes never serialize metric updates.
pub struct Recorder {
    metrics: Mutex<Metrics>,
    sink: Option<Mutex<BufWriter<File>>>,
}

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An in-memory recorder: counters + histograms, no JSONL output.
    pub fn new() -> Self {
        Recorder {
            metrics: Mutex::new(Metrics::default()),
            sink: None,
        }
    }

    /// A recorder that additionally streams spans and events to `path` as
    /// JSON Lines (see DESIGN.md §10 for the schema). The file is truncated.
    pub fn with_jsonl_path(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Recorder {
            metrics: Mutex::new(Metrics::default()),
            sink: Some(Mutex::new(BufWriter::new(file))),
        })
    }

    /// Adds `delta` to counter `name`.
    pub fn counter(&self, name: &'static str, delta: u64) {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        *m.counters.entry(name).or_insert(0) += delta;
    }

    /// Records `value` into histogram `name`. Non-finite values are dropped.
    pub fn observe(&self, name: &'static str, value: f64) {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.histograms
            .entry(name)
            .or_insert_with(Histogram::new)
            .record(value);
    }

    /// Records a discrete event: bumps the counter of the same name and,
    /// when a sink is configured, writes one `"kind":"event"` JSONL line.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        self.counter(name, 1);
        self.write_line("event", name, None, fields);
    }

    /// Called by the [`crate::Span`] guard on drop: records the duration
    /// into the histogram of the span's name and writes one
    /// `"kind":"span"` JSONL line with the attached fields.
    pub(crate) fn span_end(&self, name: &'static str, us: f64, fields: &[(&'static str, Value)]) {
        self.observe(name, us);
        self.write_line("span", name, Some(us), fields);
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of histogram `name`, or `None` if nothing was recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.histograms.get(name).map(|h| h.snapshot(name))
    }

    /// Names of all counters with at least one increment, sorted.
    pub fn counter_names(&self) -> Vec<String> {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.counters.keys().map(|k| (*k).to_owned()).collect()
    }

    /// Flushes the JSONL sink, if any.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap_or_else(|e| e.into_inner()).flush()?;
        }
        Ok(())
    }

    /// Human-readable dump of every counter and histogram, for printing at
    /// the end of a run (see README "Observability" for an example).
    pub fn report(&self) -> String {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        out.push_str("== counters ==\n");
        if m.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        for (name, value) in &m.counters {
            out.push_str(&format!("  {name:<28} {value}\n"));
        }
        out.push_str("== histograms (us) ==\n");
        if m.histograms.is_empty() {
            out.push_str("  (none)\n");
        }
        out.push_str(&format!(
            "  {:<28} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "name", "count", "mean", "p50", "p95", "max"
        ));
        for (name, h) in &m.histograms {
            let s = h.snapshot(name);
            out.push_str(&format!(
                "  {:<28} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                name, s.count, s.mean, s.p50, s.p95, s.max
            ));
        }
        out
    }

    fn write_line(
        &self,
        kind: &str,
        name: &'static str,
        us: Option<f64>,
        fields: &[(&'static str, Value)],
    ) {
        let Some(sink) = &self.sink else { return };
        let mut line = String::with_capacity(96);
        line.push_str("{\"kind\":\"");
        line.push_str(kind);
        line.push_str("\",\"name\":\"");
        line.push_str(name);
        line.push('"');
        if let Some(us) = us {
            line.push_str(&format!(",\"us\":{us:.1}"));
        }
        for (key, value) in fields {
            line.push(',');
            push_json_str(&mut line, key);
            line.push(':');
            push_json_value(&mut line, value);
        }
        line.push_str("}\n");
        let mut w = sink.lock().unwrap_or_else(|e| e.into_inner());
        // A full disk must never take the pipeline down with it.
        let _ = w.write_all(line.as_bytes());
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) if v.is_finite() => out.push_str(&format!("{v}")),
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => push_json_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_observations() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0] {
            h.record(v);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 512.0);
        assert!((s.mean - 102.3).abs() < 0.1);
        // Log2-bucket estimates: within 2x of the true percentiles.
        assert!(s.p50 >= 8.0 && s.p50 <= 64.0, "p50 = {}", s.p50);
        assert!(s.p95 >= 256.0 && s.p95 <= 512.0, "p95 = {}", s.p95);
    }

    #[test]
    fn histogram_ignores_non_finite_and_handles_extremes() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count, 0);
        h.record(0.0);
        h.record(1e30); // clamps into the last bucket
        assert_eq!(h.count, 2);
        let s = h.snapshot("t");
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1e30);
        assert!(s.p95 <= 1e30);
    }

    #[test]
    fn jsonl_sink_escapes_and_reconciles() {
        let dir = std::env::temp_dir().join(format!("mdes_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let r = Recorder::with_jsonl_path(&path).unwrap();
        r.event(
            "t.sink",
            &[
                ("msg", Value::Str("a\"b\\c\nd".to_owned())),
                ("n", Value::U64(7)),
                ("x", Value::F64(f64::NAN)),
                ("ok", Value::Bool(true)),
            ],
        );
        r.span_end("t.sink_span", 12.34, &[("i", Value::I64(-3))]);
        r.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"kind\":\"event\",\"name\":\"t.sink\",\"msg\":\"a\\\"b\\\\c\\nd\",\"n\":7,\"x\":null,\"ok\":true}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"span\",\"name\":\"t.sink_span\",\"us\":12.3,\"i\":-3}"
        );
        // The event also bumped its counter; the span fed its histogram.
        assert_eq!(r.counter_value("t.sink"), 1);
        assert_eq!(r.histogram("t.sink_span").unwrap().count, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_lists_everything() {
        let r = Recorder::new();
        r.counter("b.second", 2);
        r.counter("a.first", 1);
        r.observe("lat_us", 100.0);
        let report = r.report();
        let a = report.find("a.first").unwrap();
        let b = report.find("b.second").unwrap();
        assert!(a < b, "counters sorted by name");
        assert!(report.contains("lat_us"));
        assert!(report.contains("== histograms (us) =="));
    }
}
