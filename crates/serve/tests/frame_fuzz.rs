//! Adversarial property tests for the frame decoder.
//!
//! The decoder sits on a network socket, so it must treat every byte as
//! hostile: random garbage, truncations at every offset, single-byte
//! corruptions, and absurd declared lengths must all come back as a typed
//! [`ProtoError`] (or a clean EOF) — never a panic, never a giant
//! allocation, never a silently wrong frame.

use mdes_serve::{
    encode_frame, encode_msg, read_frame, Frame, FrameKind, ProtoError, ReadOutcome, HEADER_LEN,
};
use proptest::prelude::*;
use std::io::Cursor;

const MAX_PAYLOAD: usize = 1 << 20;

/// Decodes one frame from a byte slice (no timeout — `Cursor` never
/// blocks).
fn decode(bytes: &[u8]) -> Result<ReadOutcome, ProtoError> {
    read_frame(&mut Cursor::new(bytes), MAX_PAYLOAD, None)
}

fn any_kind(selector: u8) -> FrameKind {
    const KINDS: [FrameKind; 9] = [
        FrameKind::OpenSession,
        FrameKind::CloseSession,
        FrameKind::PushBatch,
        FrameKind::Ping,
        FrameKind::SessionOpened,
        FrameKind::SessionClosed,
        FrameKind::PushReply,
        FrameKind::ProtoErr,
        FrameKind::Pong,
    ];
    KINDS[selector as usize % KINDS.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Pure garbage: whatever comes in, the decoder returns a typed result
    /// and never panics. An `Ok(Frame)` from random bytes is possible only
    /// by forging a valid magic + checksum, which 200 random bytes won't.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        match decode(&bytes) {
            Ok(ReadOutcome::Eof) => prop_assert!(bytes.is_empty()),
            Ok(ReadOutcome::Idle) => prop_assert!(false, "Cursor input cannot be idle"),
            Ok(ReadOutcome::Frame(_)) => {
                prop_assert!(bytes.len() >= HEADER_LEN, "frame needs a full header");
            }
            Err(_) => {} // typed rejection is the expected outcome
        }
    }

    /// Every truncation of a valid frame is a clean EOF (cut at a frame
    /// boundary, i.e. offset 0) or a typed `Truncated` error — nothing else.
    #[test]
    fn every_truncation_is_typed(
        kind_sel in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..64),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = encode_frame(any_kind(kind_sel), &payload);
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < frame.len());
        match decode(&frame[..cut]) {
            Ok(ReadOutcome::Eof) => prop_assert_eq!(cut, 0, "EOF only at a frame boundary"),
            Err(ProtoError::Truncated { .. }) => prop_assert!(cut > 0),
            other => prop_assert!(false, "truncation at {} gave {:?}", cut, other),
        }
    }

    /// Flipping any single byte of a valid frame can never yield the
    /// original frame back; it is either caught as a typed error or — only
    /// when the flip stays inside the payload AND defeats the checksum
    /// (impossible for FNV-1a over a single byte flip) — a different frame.
    #[test]
    fn single_byte_corruption_is_caught(
        kind_sel in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..64),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let kind = any_kind(kind_sel);
        let clean = encode_frame(kind, &payload);
        let pos = ((clean.len() as f64) * pos_frac) as usize % clean.len();
        let mut dirty = clean.clone();
        dirty[pos] ^= flip;
        match decode(&dirty) {
            Err(_) => {} // typed rejection
            Ok(ReadOutcome::Frame(f)) => {
                prop_assert!(
                    false,
                    "corrupt byte {} accepted as kind {:?} with {}-byte payload",
                    pos, f.kind, f.payload.len()
                );
            }
            Ok(other) => prop_assert!(false, "corrupt frame gave {:?}", other),
        }
    }

    /// A declared payload length over the cap is rejected as `Oversized`
    /// *before* any payload allocation, whatever follows the header and
    /// however large the lie.
    #[test]
    fn oversized_declarations_never_allocate(
        kind_sel in 0u8..=255,
        declared in (MAX_PAYLOAD as u32 + 1)..=u32::MAX,
        tail in proptest::collection::vec(0u8..=255, 0..32),
    ) {
        // Hand-build a header with a huge declared length.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&mdes_serve::MAGIC);
        bytes.extend_from_slice(&mdes_serve::VERSION.to_le_bytes());
        bytes.push(any_kind(kind_sel) as u8);
        bytes.extend_from_slice(&declared.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&tail);
        match decode(&bytes) {
            Err(ProtoError::Oversized { declared: d, max }) => {
                prop_assert_eq!(d, u64::from(declared));
                prop_assert_eq!(max, MAX_PAYLOAD);
            }
            other => prop_assert!(false, "oversized declaration gave {:?}", other),
        }
    }

    /// Sanity for the adversarial harness itself: a clean frame always
    /// round-trips, and a trailing frame after garbage is still lost (the
    /// decoder does not resynchronize mid-stream — the server closes the
    /// connection on the first protocol error).
    #[test]
    fn clean_frames_always_roundtrip(
        kind_sel in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let kind = any_kind(kind_sel);
        let bytes = encode_frame(kind, &payload);
        match decode(&bytes) {
            Ok(ReadOutcome::Frame(Frame { kind: k, payload: p })) => {
                prop_assert_eq!(k, kind);
                prop_assert_eq!(p, payload);
            }
            other => prop_assert!(false, "clean frame gave {:?}", other),
        }
    }
}

/// A wrong protocol version in an otherwise valid frame is refused with the
/// version echoed back (plain test: exact value, no randomness needed).
#[test]
fn wrong_version_is_refused_with_the_version_echoed() {
    let mut bytes = encode_msg(FrameKind::Ping, &mdes_serve::OpenSessionReq { width: 1 });
    bytes[4] = 0x99;
    bytes[5] = 0x02;
    match decode(&bytes) {
        Err(ProtoError::UnsupportedVersion(v)) => assert_eq!(v, 0x0299),
        other => panic!("got {other:?}"),
    }
}
