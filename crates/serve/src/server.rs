//! The `mdes-serve` daemon: TCP ingest + admin planes over a shared
//! [`ServingEngine`].
//!
//! # Threads
//!
//! ```text
//! accept (ingest) ──► one reader + one writer thread per connection
//! accept (admin)  ──► one thread per admin connection
//! pump            ──► claims queued samples, scores them in one
//!                     `push_opt_many` round, routes replies
//! reaper          ──► evicts sessions idle past the TTL
//! ```
//!
//! # Backpressure (two stages, both bounded)
//!
//! 1. **Ingest**: each session owns a bounded sample queue
//!    ([`ServeConfig::queue_capacity`]). A push that finds it full is
//!    answered immediately with a `Busy` outcome and **not** absorbed —
//!    the server never buffers unboundedly on behalf of a fast producer.
//! 2. **Egress**: each connection owns a bounded reply queue
//!    ([`ServeConfig::outbound_capacity`]). The pump *reserves* a reply
//!    slot before it claims a sample, so a consumer that stops reading
//!    replies stalls only its own sessions (the pump skips them —
//!    `serve.net.stalled_skips`) while every other session keeps scoring.
//!
//! Sessions are server-global, keyed by id: any connection may push to any
//! session it knows the id of, and a session survives its creator's
//! disconnect until the idle TTL reaps it.
//!
//! # Observability (`serve.net.*`)
//!
//! Counters: `conns_opened/closed/rejected`, `frames_in/out`,
//! `proto_errors`, `timeouts`, `sessions_opened/closed/evicted`, `pushes`,
//! `busy`, `gone`, `acks`, `scores`, `push_errors`, `stalled_skips`,
//! `dropped_samples`, `replies_dropped`, `publish_ok/publish_rejected`.
//! Histograms: `pump_us` (scoring-round latency), `pump_batch` (sessions
//! per round). Events: `evict`. The invariant `acks + scores +
//! push_errors == samples scored` and `frames_out == frames delivered`
//! is pinned by `tests/serve_net.rs` and the chaos suite.

use crate::frame::{
    encode_msg, read_frame, FrameKind, ProtoError, ReadOutcome, DEFAULT_MAX_PAYLOAD,
};
use crate::wire::{
    CloseSessionRep, CloseSessionReq, OpenSessionRep, OpenSessionReq, ProtoErrRep, PushBatchReq,
    PushOutcome, PushReply,
};
use mdes_core::serve::{ServingEngine, StreamSession};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket poll granularity: how often blocked reads/waits wake to check the
/// shutdown flag. Purely internal latency/promptness trade-off.
const TICK: Duration = Duration::from_millis(50);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Ingest listener address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Admin listener address; `None` disables the admin plane.
    pub admin_addr: Option<String>,
    /// Per-session bounded ingest queue; a push finding it full gets `Busy`.
    pub queue_capacity: usize,
    /// Per-connection bounded reply queue; the pump skips sessions whose
    /// consumer has no room left.
    pub outbound_capacity: usize,
    /// Sessions idle longer than this are evicted by the reaper.
    pub idle_ttl: Duration,
    /// Wall-clock budget to finish one started frame (or admin line) —
    /// the slow-loris guard. Idle connections are unaffected.
    pub read_timeout: Duration,
    /// Cap on a declared ingest-frame payload length.
    pub max_payload: usize,
    /// Cap on an admin-plane `publish` upload.
    pub max_snapshot_bytes: usize,
    /// Max sessions scored per pump round.
    pub pump_batch: usize,
    /// Max simultaneous ingest connections; excess accepts are dropped.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            admin_addr: Some("127.0.0.1:0".to_owned()),
            queue_capacity: 64,
            outbound_capacity: 1024,
            idle_ttl: Duration::from_secs(300),
            read_timeout: Duration::from_secs(10),
            max_payload: DEFAULT_MAX_PAYLOAD,
            max_snapshot_bytes: 64 << 20,
            pump_batch: 1024,
            max_conns: 1024,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Egress side of one ingest connection: a bounded queue of encoded frames
/// drained by the connection's writer thread.
pub(crate) struct Outbound {
    frames: VecDeque<Vec<u8>>,
    /// Reply slots the pump has claimed but not yet filled.
    reserved: usize,
}

pub(crate) struct ConnHandle {
    pub(crate) alive: AtomicBool,
    capacity: usize,
    q: Mutex<Outbound>,
    signal: Condvar,
}

impl ConnHandle {
    fn new(capacity: usize) -> Self {
        Self {
            alive: AtomicBool::new(true),
            capacity: capacity.max(1),
            q: Mutex::new(Outbound {
                frames: VecDeque::new(),
                reserved: 0,
            }),
            signal: Condvar::new(),
        }
    }

    /// Enqueues a frame if the bounded queue has room; `false` otherwise.
    fn try_send(&self, frame: Vec<u8>) -> bool {
        if !self.alive.load(Ordering::Acquire) {
            return false;
        }
        let mut q = lock(&self.q);
        if q.frames.len() + q.reserved >= self.capacity {
            return false;
        }
        q.frames.push_back(frame);
        drop(q);
        self.signal.notify_one();
        true
    }

    /// Enqueues past the cap — only for the single best-effort
    /// [`FrameKind::ProtoErr`] frame sent right before close.
    fn force_send(&self, frame: Vec<u8>) {
        lock(&self.q).frames.push_back(frame);
        self.signal.notify_one();
    }

    /// Claims one reply slot; `false` when the consumer has no room.
    fn try_reserve(&self) -> bool {
        if !self.alive.load(Ordering::Acquire) {
            return false;
        }
        let mut q = lock(&self.q);
        if q.frames.len() + q.reserved >= self.capacity {
            return false;
        }
        q.reserved += 1;
        true
    }

    /// Fills a slot claimed by [`ConnHandle::try_reserve`].
    fn send_reserved(&self, frame: Vec<u8>) {
        let mut q = lock(&self.q);
        q.reserved = q.reserved.saturating_sub(1);
        q.frames.push_back(frame);
        drop(q);
        self.signal.notify_one();
    }

    /// Releases a claimed slot without sending (the consumer died).
    fn release(&self) {
        let mut q = lock(&self.q);
        q.reserved = q.reserved.saturating_sub(1);
    }

    fn close(&self) {
        self.alive.store(false, Ordering::Release);
        self.signal.notify_all();
    }
}

/// One queued sample awaiting the pump.
struct PendingPush {
    seq: u64,
    records: Vec<Option<String>>,
    conn: Arc<ConnHandle>,
}

/// Server-side state of one stream session.
pub(crate) struct SessionEntry {
    pub(crate) id: u64,
    pub(crate) width: usize,
    /// Set by close/evict; the pump drops any still-queued samples.
    closed: AtomicBool,
    /// `None` while the pump is scoring this session.
    session: Mutex<Option<StreamSession>>,
    queue: Mutex<VecDeque<PendingPush>>,
    last_active: Mutex<Instant>,
}

impl SessionEntry {
    pub(crate) fn seen(&self) -> usize {
        lock(&self.session).as_ref().map_or(0, StreamSession::seen)
    }

    pub(crate) fn queued(&self) -> usize {
        lock(&self.queue).len()
    }

    fn touch(&self) {
        *lock(&self.last_active) = Instant::now();
    }
}

/// State shared by every server thread.
pub(crate) struct Shared {
    pub(crate) engine: ServingEngine,
    pub(crate) cfg: ServeConfig,
    pub(crate) registry: Mutex<HashMap<u64, Arc<SessionEntry>>>,
    next_session: AtomicU64,
    pub(crate) live_conns: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
    /// Pump wake-up: set when new work is queued.
    work: Mutex<bool>,
    work_signal: Condvar,
    /// Bound addresses, for self-poking blocked accept loops on shutdown.
    addrs: Mutex<Vec<SocketAddr>>,
}

impl Shared {
    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        *lock(&self.work) = true;
        self.work_signal.notify_all();
        for addr in lock(&self.addrs).iter() {
            // Unblocks a listener parked in accept(); errors are irrelevant.
            let _ = TcpStream::connect_timeout(addr, TICK);
        }
    }

    fn notify_work(&self) {
        *lock(&self.work) = true;
        self.work_signal.notify_one();
    }

    pub(crate) fn evict(&self, id: u64, reason: &str) -> bool {
        let Some(entry) = lock(&self.registry).remove(&id) else {
            return false;
        };
        entry.closed.store(true, Ordering::Release);
        let dropped = entry.queued();
        if dropped > 0 {
            mdes_obs::counter("serve.net.dropped_samples", dropped as u64);
        }
        mdes_obs::counter("serve.net.sessions_evicted", 1);
        mdes_obs::event(
            "serve.net.evict",
            &[("session", id.into()), ("reason", reason.into())],
        );
        true
    }
}

/// A running daemon. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound ingest address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound admin address, when the admin plane is enabled.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The engine this daemon serves — shared, so a host process can also
    /// publish snapshots directly.
    pub fn engine(&self) -> &ServingEngine {
        &self.shared.engine
    }

    /// Number of sessions currently registered.
    pub fn session_count(&self) -> usize {
        lock(&self.shared.registry).len()
    }

    /// Blocks until shutdown is requested (admin `shutdown` command or
    /// [`ServerHandle::stop`] from another thread).
    pub fn wait(&self) {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(TICK);
        }
    }

    /// Requests shutdown and joins every server thread. Open sessions are
    /// dropped (releasing their engine gauge); queued samples are
    /// discarded.
    pub fn stop(&self) {
        self.shared.request_shutdown();
        for t in lock(&self.threads).drain(..) {
            let _ = t.join();
        }
        lock(&self.shared.registry).clear();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts the daemon over `engine` and returns once both listeners are
/// bound.
///
/// # Errors
///
/// Returns the I/O error if either listener fails to bind.
pub fn start(engine: ServingEngine, cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let admin_listener = match &cfg.admin_addr {
        Some(a) => Some(TcpListener::bind(a)?),
        None => None,
    };
    let admin_addr = match &admin_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };

    let shared = Arc::new(Shared {
        engine,
        cfg,
        registry: Mutex::new(HashMap::new()),
        next_session: AtomicU64::new(1),
        live_conns: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        work: Mutex::new(false),
        work_signal: Condvar::new(),
        addrs: Mutex::new(std::iter::once(addr).chain(admin_addr).collect()),
    });

    let mut threads = Vec::new();
    {
        let s = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&s, &listener)));
    }
    if let Some(l) = admin_listener {
        let s = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            crate::admin::accept_loop(&s, &l)
        }));
    }
    {
        let s = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || pump_loop(&s)));
    }
    {
        let s = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || reaper_loop(&s)));
    }

    Ok(ServerHandle {
        shared,
        addr,
        admin_addr,
        threads: Mutex::new(threads),
    })
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.live_conns.load(Ordering::Relaxed) >= shared.cfg.max_conns {
            mdes_obs::counter("serve.net.conns_rejected", 1);
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        shared.live_conns.fetch_add(1, Ordering::Relaxed);
        mdes_obs::counter("serve.net.conns_opened", 1);
        let conn = Arc::new(ConnHandle::new(shared.cfg.outbound_capacity));
        {
            let s = Arc::clone(shared);
            let c = Arc::clone(&conn);
            conn_threads.push(std::thread::spawn(move || conn_reader(&s, &c, stream)));
        }
        {
            let s = Arc::clone(shared);
            let c = Arc::clone(&conn);
            conn_threads.push(std::thread::spawn(move || conn_writer(&s, &c, write_half)));
        }
        // Opportunistically reap finished connection threads so a
        // long-lived daemon doesn't accumulate handles.
        conn_threads.retain(|t| !t.is_finished());
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

fn conn_reader(shared: &Arc<Shared>, conn: &Arc<ConnHandle>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_nodelay(true);
    while !shared.shutdown.load(Ordering::SeqCst) && conn.alive.load(Ordering::Acquire) {
        match read_frame(
            &mut stream,
            shared.cfg.max_payload,
            Some(shared.cfg.read_timeout),
        ) {
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Eof) => break,
            Ok(ReadOutcome::Frame(frame)) => {
                mdes_obs::counter("serve.net.frames_in", 1);
                if let Err(e) = handle_frame(shared, conn, &frame) {
                    protocol_error(conn, &e);
                    break;
                }
            }
            Err(e) => {
                protocol_error(conn, &e);
                break;
            }
        }
    }
    conn.close();
    shared.live_conns.fetch_sub(1, Ordering::Relaxed);
    mdes_obs::counter("serve.net.conns_closed", 1);
}

/// Counts the failure, sends one best-effort typed error frame, and leaves
/// the connection marked for close.
fn protocol_error(conn: &Arc<ConnHandle>, e: &ProtoError) {
    mdes_obs::counter("serve.net.proto_errors", 1);
    if matches!(e, ProtoError::TimedOut { .. }) {
        mdes_obs::counter("serve.net.timeouts", 1);
    }
    conn.force_send(encode_msg(
        FrameKind::ProtoErr,
        &ProtoErrRep {
            code: e.code().to_owned(),
            detail: e.to_string(),
        },
    ));
}

fn handle_frame(
    shared: &Arc<Shared>,
    conn: &Arc<ConnHandle>,
    frame: &crate::frame::Frame,
) -> Result<(), ProtoError> {
    match frame.kind {
        FrameKind::OpenSession => {
            let req: OpenSessionReq = frame.parse()?;
            let rep = match shared.engine.open_session(req.width) {
                Ok(session) => {
                    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                    let warmup = session.warmup();
                    let entry = Arc::new(SessionEntry {
                        id,
                        width: req.width,
                        closed: AtomicBool::new(false),
                        session: Mutex::new(Some(session)),
                        queue: Mutex::new(VecDeque::new()),
                        last_active: Mutex::new(Instant::now()),
                    });
                    lock(&shared.registry).insert(id, entry);
                    mdes_obs::counter("serve.net.sessions_opened", 1);
                    OpenSessionRep {
                        ok: true,
                        session: id,
                        warmup,
                        snapshot_version: shared.engine.store().version(),
                        detail: String::new(),
                    }
                }
                Err(e) => OpenSessionRep {
                    ok: false,
                    session: 0,
                    warmup: 0,
                    snapshot_version: shared.engine.store().version(),
                    detail: e.to_string(),
                },
            };
            reply(conn, encode_msg(FrameKind::SessionOpened, &rep));
            Ok(())
        }
        FrameKind::CloseSession => {
            let req: CloseSessionReq = frame.parse()?;
            let existed = shared.evict(req.session, "closed");
            if existed {
                // Closed by request, not by the reaper: correct the counter.
                mdes_obs::counter("serve.net.sessions_closed", 1);
            }
            reply(
                conn,
                encode_msg(
                    FrameKind::SessionClosed,
                    &CloseSessionRep {
                        session: req.session,
                        existed,
                    },
                ),
            );
            Ok(())
        }
        FrameKind::PushBatch => {
            let req: PushBatchReq = frame.parse()?;
            let mut queued_any = false;
            for entry in req.entries {
                let outcome = {
                    let target = lock(&shared.registry).get(&entry.session).cloned();
                    match target {
                        None => Some(PushOutcome::Gone),
                        Some(t) if t.closed.load(Ordering::Acquire) => Some(PushOutcome::Gone),
                        Some(t) => {
                            let mut q = lock(&t.queue);
                            if q.len() >= shared.cfg.queue_capacity {
                                mdes_obs::counter("serve.net.busy", 1);
                                Some(PushOutcome::Busy)
                            } else {
                                q.push_back(PendingPush {
                                    seq: entry.seq,
                                    records: entry.records,
                                    conn: Arc::clone(conn),
                                });
                                drop(q);
                                t.touch();
                                mdes_obs::counter("serve.net.pushes", 1);
                                queued_any = true;
                                None
                            }
                        }
                    }
                };
                if let Some(outcome) = outcome {
                    if matches!(outcome, PushOutcome::Gone) {
                        mdes_obs::counter("serve.net.gone", 1);
                    }
                    reply(
                        conn,
                        encode_msg(
                            FrameKind::PushReply,
                            &PushReply {
                                session: entry.session,
                                seq: entry.seq,
                                outcome,
                            },
                        ),
                    );
                }
            }
            if queued_any {
                shared.notify_work();
            }
            Ok(())
        }
        FrameKind::Ping => {
            reply(conn, crate::frame::encode_frame(FrameKind::Pong, &[]));
            Ok(())
        }
        // Server → client kinds arriving at the server are a protocol
        // violation by the peer.
        FrameKind::SessionOpened
        | FrameKind::SessionClosed
        | FrameKind::PushReply
        | FrameKind::ProtoErr
        | FrameKind::Pong => Err(ProtoError::BadPayload {
            kind: frame.kind as u8,
            detail: "server-to-client frame kind sent by client".to_owned(),
        }),
    }
}

/// Best-effort reply enqueue; drops (and counts) when the consumer's
/// bounded queue is full.
fn reply(conn: &Arc<ConnHandle>, frame: Vec<u8>) {
    if !conn.try_send(frame) {
        mdes_obs::counter("serve.net.replies_dropped", 1);
    }
}

fn conn_writer(shared: &Arc<Shared>, conn: &Arc<ConnHandle>, mut stream: TcpStream) {
    loop {
        let frame = {
            let mut q = lock(&conn.q);
            loop {
                if let Some(f) = q.frames.pop_front() {
                    break Some(f);
                }
                if !conn.alive.load(Ordering::Acquire) || shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = conn
                    .signal
                    .wait_timeout(q, TICK)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        match frame {
            Some(f) => {
                if stream.write_all(&f).is_err() {
                    conn.close();
                    break;
                }
                mdes_obs::counter("serve.net.frames_out", 1);
            }
            None => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// One claimed unit of scoring work.
struct Claim {
    entry: Arc<SessionEntry>,
    push: PendingPush,
}

fn pump_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let claims = claim_round(shared);
        if claims.is_empty() {
            let guard = lock(&shared.work);
            let mut guard = if *guard {
                guard
            } else {
                let (g, _) = shared
                    .work_signal
                    .wait_timeout(guard, Duration::from_millis(5))
                    .unwrap_or_else(|e| e.into_inner());
                g
            };
            *guard = false;
            continue;
        }
        score_round(shared, claims);
    }
}

/// Claims at most one queued sample per session, reserving a reply slot on
/// the owning connection first. Sessions whose consumer is out of room are
/// skipped; samples whose connection died are discarded.
fn claim_round(shared: &Arc<Shared>) -> Vec<(Claim, StreamSession)> {
    let entries: Vec<Arc<SessionEntry>> = lock(&shared.registry).values().cloned().collect();
    let mut out = Vec::new();
    for entry in entries {
        if out.len() >= shared.cfg.pump_batch {
            break;
        }
        if entry.closed.load(Ordering::Acquire) {
            continue;
        }
        let push = {
            let mut q = lock(&entry.queue);
            // Discard samples whose reply could never be delivered.
            while q
                .front()
                .is_some_and(|p| !p.conn.alive.load(Ordering::Acquire))
            {
                q.pop_front();
                mdes_obs::counter("serve.net.dropped_samples", 1);
            }
            let Some(front) = q.front() else { continue };
            if !front.conn.try_reserve() {
                mdes_obs::counter("serve.net.stalled_skips", 1);
                continue;
            }
            q.pop_front().expect("front exists")
        };
        let Some(session) = lock(&entry.session).take() else {
            // Single pump thread: the slot can only be empty if the entry
            // is being torn down. Put the sample back and move on.
            push.conn.release();
            lock(&entry.queue).push_front(push);
            continue;
        };
        out.push((Claim { entry, push }, session));
    }
    out
}

fn score_round(shared: &Arc<Shared>, claims: Vec<(Claim, StreamSession)>) {
    mdes_obs::observe("serve.net.pump_batch", claims.len() as f64);
    let _round = mdes_obs::timer("serve.net.pump_us");
    let (mut claims, mut sessions): (Vec<Claim>, Vec<StreamSession>) = claims.into_iter().unzip();
    let samples: Vec<Vec<Option<String>>> = claims
        .iter_mut()
        .map(|c| std::mem::take(&mut c.push.records))
        .collect();
    let results = shared.engine.push_opt_many(&mut sessions, &samples);
    for ((claim, session), result) in claims.into_iter().zip(sessions).zip(results) {
        let outcome = match result {
            Ok(None) => {
                mdes_obs::counter("serve.net.acks", 1);
                PushOutcome::Ack
            }
            Ok(Some(d)) => {
                mdes_obs::counter("serve.net.scores", 1);
                PushOutcome::Score(d.into())
            }
            Err(e) => {
                mdes_obs::counter("serve.net.push_errors", 1);
                PushOutcome::Error {
                    detail: e.to_string(),
                }
            }
        };
        let frame = encode_msg(
            FrameKind::PushReply,
            &PushReply {
                session: claim.entry.id,
                seq: claim.push.seq,
                outcome,
            },
        );
        if claim.push.conn.alive.load(Ordering::Acquire) {
            claim.push.conn.send_reserved(frame);
        } else {
            claim.push.conn.release();
            mdes_obs::counter("serve.net.replies_dropped", 1);
        }
        if claim.entry.closed.load(Ordering::Acquire) {
            // Closed/evicted while scoring: the session state dies here.
            continue;
        }
        *lock(&claim.entry.session) = Some(session);
        claim.entry.touch();
    }
}

fn reaper_loop(shared: &Arc<Shared>) {
    let ttl = shared.cfg.idle_ttl;
    let step = (ttl / 4).clamp(Duration::from_millis(20), Duration::from_millis(200));
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(step);
        let idle: Vec<u64> = lock(&shared.registry)
            .values()
            .filter(|e| {
                lock(&e.queue).is_empty()
                    && lock(&e.session).is_some()
                    && lock(&e.last_active).elapsed() >= ttl
            })
            .map(|e| e.id)
            .collect();
        for id in idle {
            shared.evict(id, "idle_ttl");
        }
    }
}
