//! Length-prefixed binary framing for the ingest plane.
//!
//! Every frame is self-describing and checksummed, mirroring the
//! `MDCK`/`MDSN` discipline of `mdes_core::checkpoint`:
//!
//! ```text
//! magic     4 bytes   b"MDSV"
//! version   2 bytes   u16 LE, currently 1
//! kind      1 byte    see [`FrameKind`]
//! length    4 bytes   u32 LE, payload byte count
//! checksum  8 bytes   u64 LE, FNV-1a of kind + length + payload
//! payload   N bytes   JSON-serialized message (see [`crate::wire`])
//! ```
//!
//! The decoder is written for hostile input: random bytes, truncated
//! frames, oversized declared lengths and corrupted checksums must never
//! panic or over-allocate — every failure is a typed [`ProtoError`] the
//! server answers with one best-effort error frame before closing the
//! connection. The declared length is validated against the decoder's
//! cap *before* any allocation, so a frame claiming 4 GiB costs nothing.
//!
//! Slow-loris protection lives here too: [`read_frame`] distinguishes a
//! connection that is *idle between frames* (no bytes of a new header yet —
//! [`ReadOutcome::Idle`], benign) from one that has started a frame and
//! stopped feeding it ([`ProtoError::TimedOut`] once `frame_timeout`
//! elapses without the frame completing).

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

/// Frame magic: "MDSV" (mdes serve).
pub const MAGIC: [u8; 4] = *b"MDSV";
/// Protocol version carried in every frame header.
pub const VERSION: u16 = 1;
/// Header bytes before the payload: magic + version + kind + len + checksum.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 4 + 8;
/// Default cap on the declared payload length (1 MiB). A frame declaring
/// more is rejected with [`ProtoError::Oversized`] before any allocation.
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 20;

/// FNV-1a 64-bit — the same checksum the checkpoint layer uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(0xcbf2_9ce4_8422_2325u64, bytes)
}

/// Continues an FNV-1a hash over more bytes.
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The frame checksum: FNV-1a over kind byte + length LE bytes + payload,
/// so a single corrupted bit anywhere past the version field is caught
/// (magic and version are validated by their own typed checks). A checksum
/// over the payload alone would let a bit flip turn one valid kind byte
/// into another undetected.
fn frame_checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut h = fnv1a(&[kind]);
    h = fnv1a_update(h, &(payload.len() as u32).to_le_bytes());
    fnv1a_update(h, payload)
}

/// Frame kinds. Values below 16 are client → server, 16 and up are
/// server → client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client: open a stream session ([`crate::wire::OpenSessionReq`]).
    OpenSession = 1,
    /// Client: close a stream session ([`crate::wire::CloseSessionReq`]).
    CloseSession = 2,
    /// Client: batched multi-session ingest ([`crate::wire::PushBatchReq`]).
    PushBatch = 3,
    /// Client: liveness probe / reader barrier (empty payload).
    Ping = 4,
    /// Server: session-open outcome ([`crate::wire::OpenSessionRep`]).
    SessionOpened = 16,
    /// Server: session-close outcome ([`crate::wire::CloseSessionRep`]).
    SessionClosed = 17,
    /// Server: one per-push outcome ([`crate::wire::PushReply`]).
    PushReply = 18,
    /// Server: typed protocol error, sent best-effort before closing
    /// ([`crate::wire::ProtoErrRep`]).
    ProtoErr = 19,
    /// Server: answer to [`FrameKind::Ping`] (empty payload).
    Pong = 20,
}

impl FrameKind {
    /// Decodes a kind byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => FrameKind::OpenSession,
            2 => FrameKind::CloseSession,
            3 => FrameKind::PushBatch,
            4 => FrameKind::Ping,
            16 => FrameKind::SessionOpened,
            17 => FrameKind::SessionClosed,
            18 => FrameKind::PushReply,
            19 => FrameKind::ProtoErr,
            20 => FrameKind::Pong,
            _ => return None,
        })
    }
}

/// One decoded frame: a kind and its raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub kind: FrameKind,
    /// Raw payload (JSON for every kind that carries one).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Parses the JSON payload into a wire message.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadPayload`] when the payload is not valid
    /// UTF-8 JSON for `T`.
    pub fn parse<T: serde::Deserialize>(&self) -> Result<T, ProtoError> {
        let text = std::str::from_utf8(&self.payload).map_err(|_| ProtoError::BadPayload {
            kind: self.kind as u8,
            detail: "payload is not valid UTF-8".to_owned(),
        })?;
        serde_json::from_str(text).map_err(|e| ProtoError::BadPayload {
            kind: self.kind as u8,
            detail: format!("payload parse failed: {e}"),
        })
    }
}

/// Typed decode/transport failures. Every variant maps to one reason a
/// connection is closed; none of them can panic or allocate unboundedly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The 4 magic bytes were wrong — not our protocol, or the stream
    /// desynchronized.
    BadMagic {
        /// What arrived instead of `b"MDSV"`.
        found: [u8; 4],
    },
    /// Unknown protocol version.
    UnsupportedVersion(u16),
    /// Unknown frame-kind byte.
    UnknownKind(u8),
    /// Declared payload length exceeds the decoder's cap. Detected before
    /// any allocation.
    Oversized {
        /// Length the header declared.
        declared: u64,
        /// The decoder's cap.
        max: usize,
    },
    /// Received bytes do not hash to the declared checksum.
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// FNV-1a of the kind + length + payload actually received.
        found: u64,
    },
    /// The stream ended mid-frame.
    Truncated {
        /// Which part of the frame was cut.
        context: &'static str,
    },
    /// A started frame failed to complete within the read budget
    /// (slow-loris writer).
    TimedOut {
        /// Which part of the frame stalled.
        context: &'static str,
    },
    /// Checksum-valid payload that does not parse as the declared message —
    /// a peer codec bug, not line damage.
    BadPayload {
        /// Frame kind byte.
        kind: u8,
        /// Parser diagnostics.
        detail: String,
    },
    /// Transport-level I/O failure.
    Io(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic { found } => write!(f, "bad magic {found:?}"),
            ProtoError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::Oversized { declared, max } => {
                write!(f, "declared payload length {declared} exceeds cap {max}")
            }
            ProtoError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "payload checksum mismatch: declared {expected:#x}, got {found:#x}"
                )
            }
            ProtoError::Truncated { context } => write!(f, "stream ended mid-frame ({context})"),
            ProtoError::TimedOut { context } => {
                write!(f, "frame read timed out ({context}): slow writer")
            }
            ProtoError::BadPayload { kind, detail } => {
                write!(f, "undecodable payload for kind {kind}: {detail}")
            }
            ProtoError::Io(detail) => write!(f, "i/o failure: {detail}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// Short stable identifier, echoed in
    /// [`ProtoErrRep`](crate::wire::ProtoErrRep) so clients can match on it
    /// without parsing prose.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::BadMagic { .. } => "bad_magic",
            ProtoError::UnsupportedVersion(_) => "bad_version",
            ProtoError::UnknownKind(_) => "unknown_kind",
            ProtoError::Oversized { .. } => "oversized",
            ProtoError::ChecksumMismatch { .. } => "bad_checksum",
            ProtoError::Truncated { .. } => "truncated",
            ProtoError::TimedOut { .. } => "timed_out",
            ProtoError::BadPayload { .. } => "bad_payload",
            ProtoError::Io(_) => "io",
        }
    }
}

/// Encodes one frame into a fresh buffer.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(kind as u8, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Serializes `msg` as JSON and encodes it under `kind`.
///
/// # Panics
///
/// Panics if `msg` fails to serialize — wire messages are plain data
/// structs, so that is a programming error, not an input condition.
pub fn encode_msg<T: serde::Serialize>(kind: FrameKind, msg: &T) -> Vec<u8> {
    let payload = serde_json::to_string(msg).expect("wire messages always serialize");
    encode_frame(kind, payload.as_bytes())
}

/// Writes one frame to `w` (no flush).
///
/// # Errors
///
/// Returns [`ProtoError::Io`] on write failure.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), ProtoError> {
    w.write_all(&encode_frame(kind, payload))
        .map_err(|e| ProtoError::Io(e.to_string()))
}

/// What one [`read_frame`] call produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A whole, checksum-valid frame.
    Frame(Frame),
    /// The reader timed out with *zero* bytes of a new frame — the
    /// connection is merely idle; call again.
    Idle,
    /// Clean end-of-stream exactly on a frame boundary.
    Eof,
}

/// Fills `buf` from `r`, honoring the frame deadline. `started` is the
/// instant the first byte of the current frame arrived (None until then).
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    mut filled: usize,
    started: &mut Option<Instant>,
    frame_timeout: Option<Duration>,
    context: &'static str,
) -> Result<usize, ReadStop> {
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && started.is_none() {
                    ReadStop::Eof
                } else {
                    ReadStop::Error(ProtoError::Truncated { context })
                });
            }
            Ok(n) => {
                if started.is_none() {
                    *started = Some(Instant::now());
                }
                filled += n;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                match *started {
                    // No frame in progress: the connection is just idle.
                    None => return Err(ReadStop::Idle),
                    Some(t0) => {
                        // A frame is in progress; give the writer until the
                        // frame deadline, then call it a slow-loris.
                        if frame_timeout.is_some_and(|limit| t0.elapsed() >= limit) {
                            return Err(ReadStop::Error(ProtoError::TimedOut { context }));
                        }
                    }
                }
            }
            Err(e) => return Err(ReadStop::Error(ProtoError::Io(e.to_string()))),
        }
    }
    Ok(filled)
}

enum ReadStop {
    Idle,
    Eof,
    Error(ProtoError),
}

/// Reads one frame from `r`.
///
/// `max_payload` caps the declared payload length (checked before
/// allocating). `frame_timeout` is the total wall-clock budget to finish a
/// frame once its first byte has arrived; `None` disables the budget (for
/// in-memory readers). The underlying reader should have a short socket
/// read timeout so idleness and slow writers surface as `WouldBlock`/
/// `TimedOut` rather than blocking forever.
///
/// # Errors
///
/// Any [`ProtoError`]; the caller is expected to answer with one
/// best-effort [`FrameKind::ProtoErr`] frame and close the connection.
pub fn read_frame(
    r: &mut impl Read,
    max_payload: usize,
    frame_timeout: Option<Duration>,
) -> Result<ReadOutcome, ProtoError> {
    let mut started: Option<Instant> = None;
    let mut header = [0u8; HEADER_LEN];
    match read_full(
        r,
        &mut header,
        0,
        &mut started,
        frame_timeout,
        "frame header",
    ) {
        Ok(_) => {}
        Err(ReadStop::Idle) => return Ok(ReadOutcome::Idle),
        Err(ReadStop::Eof) => return Ok(ReadOutcome::Eof),
        Err(ReadStop::Error(e)) => return Err(e),
    }
    if header[..4] != MAGIC {
        return Err(ProtoError::BadMagic {
            found: header[..4].try_into().expect("4 bytes"),
        });
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(ProtoError::UnsupportedVersion(version));
    }
    let kind = FrameKind::from_u8(header[6]).ok_or(ProtoError::UnknownKind(header[6]))?;
    let len = u32::from_le_bytes(header[7..11].try_into().expect("4 bytes")) as usize;
    if len > max_payload {
        return Err(ProtoError::Oversized {
            declared: len as u64,
            max: max_payload,
        });
    }
    let checksum = u64::from_le_bytes(header[11..19].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len];
    if len > 0 {
        match read_full(
            r,
            &mut payload,
            0,
            &mut started,
            frame_timeout,
            "frame payload",
        ) {
            Ok(_) => {}
            // A timeout mid-payload is still a started frame.
            Err(ReadStop::Idle) | Err(ReadStop::Eof) => {
                return Err(ProtoError::Truncated {
                    context: "frame payload",
                })
            }
            Err(ReadStop::Error(e)) => return Err(e),
        }
    }
    let found = frame_checksum(kind as u8, &payload);
    if found != checksum {
        return Err(ProtoError::ChecksumMismatch {
            expected: checksum,
            found,
        });
    }
    Ok(ReadOutcome::Frame(Frame { kind, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            FrameKind::OpenSession,
            FrameKind::CloseSession,
            FrameKind::PushBatch,
            FrameKind::Ping,
            FrameKind::SessionOpened,
            FrameKind::SessionClosed,
            FrameKind::PushReply,
            FrameKind::ProtoErr,
            FrameKind::Pong,
        ] {
            let bytes = encode_frame(kind, b"{\"x\":1}");
            let mut cur = Cursor::new(bytes);
            match read_frame(&mut cur, DEFAULT_MAX_PAYLOAD, None).expect("decode") {
                ReadOutcome::Frame(f) => {
                    assert_eq!(f.kind, kind);
                    assert_eq!(f.payload, b"{\"x\":1}");
                }
                other => panic!("expected frame, got {other:?}"),
            }
            // And the stream ends cleanly after it.
            assert_eq!(
                read_frame(&mut cur, DEFAULT_MAX_PAYLOAD, None).expect("eof"),
                ReadOutcome::Eof
            );
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let bytes = encode_frame(FrameKind::Ping, b"");
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur, DEFAULT_MAX_PAYLOAD, None).expect("decode") {
            ReadOutcome::Frame(f) => assert!(f.payload.is_empty()),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut bytes = encode_frame(FrameKind::Ping, b"");
        // Forge the length field to u32::MAX.
        bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cur, 1024, None),
            Err(ProtoError::Oversized {
                declared: u64::from(u32::MAX),
                max: 1024
            })
        );
    }

    #[test]
    fn bad_magic_version_kind_and_checksum_are_typed() {
        let good = encode_frame(FrameKind::Ping, b"x");
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(bad), 1024, None),
            Err(ProtoError::BadMagic { .. })
        ));
        let mut bad = good.clone();
        bad[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(bad), 1024, None),
            Err(ProtoError::UnsupportedVersion(9))
        );
        let mut bad = good.clone();
        bad[6] = 200;
        assert_eq!(
            read_frame(&mut Cursor::new(bad), 1024, None),
            Err(ProtoError::UnknownKind(200))
        );
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut Cursor::new(bad), 1024, None),
            Err(ProtoError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_is_eof_or_truncated() {
        let bytes = encode_frame(FrameKind::PushBatch, b"{\"entries\":[]}");
        for cut in 0..bytes.len() {
            let out = read_frame(&mut Cursor::new(&bytes[..cut]), 1024, None);
            if cut == 0 {
                assert_eq!(out.expect("clean eof"), ReadOutcome::Eof);
            } else {
                assert!(
                    matches!(out, Err(ProtoError::Truncated { .. })),
                    "cut {cut}: {out:?}"
                );
            }
        }
    }
}
