//! Minimal blocking clients for both planes.
//!
//! These exist for the conformance/chaos suites and the serving bench;
//! they are deliberately simple (one thread, blocking reads with a
//! deadline) rather than a production SDK.

use crate::frame::{
    encode_msg, read_frame, Frame, FrameKind, ProtoError, ReadOutcome, DEFAULT_MAX_PAYLOAD,
};
use crate::wire::{
    CloseSessionRep, CloseSessionReq, OpenSessionRep, OpenSessionReq, PushBatchReq, PushEntry,
    PushReply,
};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Client-side failure: transport, protocol, or an application-level
/// refusal (e.g. the server answered an open with `ok: false`).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Framing/codec failure, including a server `ProtoErr` frame.
    Proto(ProtoError),
    /// The server refused the request; the payload explains why.
    Refused(String),
    /// No frame arrived within the client's deadline.
    Timeout,
    /// The server closed the connection.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Refused(d) => write!(f, "refused: {d}"),
            ClientError::Timeout => write!(f, "timed out waiting for a reply"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Blocking client for the framed ingest plane.
pub struct IngestClient {
    stream: TcpStream,
    /// Frames read while looking for something else (e.g. a `Pong` that
    /// arrived before outstanding `PushReply`s were drained).
    pending: VecDeque<Frame>,
    deadline: Duration,
}

impl IngestClient {
    /// Connects with a default 10 s reply deadline.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_with_deadline(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit per-wait reply deadline.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect_with_deadline(
        addr: SocketAddr,
        deadline: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(25)))?;
        Ok(Self {
            stream,
            pending: VecDeque::new(),
            deadline,
        })
    }

    /// The underlying stream, for fault-injection tests.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Sends raw bytes as-is — fault injection only.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    fn send(&mut self, kind: FrameKind, msg: &impl serde::Serialize) -> Result<(), ClientError> {
        self.stream.write_all(&encode_msg(kind, msg))?;
        Ok(())
    }

    /// Reads the next frame (served from the pending stash first).
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when nothing arrives in time,
    /// [`ClientError::Closed`] on EOF, [`ClientError::Proto`] on garbage.
    pub fn recv_frame(&mut self) -> Result<Frame, ClientError> {
        if let Some(f) = self.pending.pop_front() {
            return Ok(f);
        }
        let start = Instant::now();
        loop {
            match read_frame(&mut self.stream, DEFAULT_MAX_PAYLOAD, None)? {
                ReadOutcome::Frame(f) => return Ok(f),
                ReadOutcome::Eof => return Err(ClientError::Closed),
                ReadOutcome::Idle => {
                    if start.elapsed() >= self.deadline {
                        return Err(ClientError::Timeout);
                    }
                }
            }
        }
    }

    /// Reads frames until one of `kind` arrives, stashing everything else.
    fn recv_kind(&mut self, kind: FrameKind) -> Result<Frame, ClientError> {
        if let Some(pos) = self.pending.iter().position(|f| f.kind == kind) {
            return Ok(self.pending.remove(pos).expect("position exists"));
        }
        loop {
            let f = self.recv_frame()?;
            if f.kind == kind {
                return Ok(f);
            }
            if f.kind == FrameKind::ProtoErr {
                let rep: crate::wire::ProtoErrRep =
                    f.parse().unwrap_or_else(|_| crate::wire::ProtoErrRep {
                        code: "bad_payload".to_owned(),
                        detail: "unparseable ProtoErr frame".to_owned(),
                    });
                return Err(ClientError::Refused(format!(
                    "{}: {}",
                    rep.code, rep.detail
                )));
            }
            self.pending.push_back(f);
        }
    }

    /// Opens a session; returns `(session_id, warmup)`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] with the server's diagnostics when the
    /// engine rejects the width; transport errors otherwise.
    pub fn open_session(&mut self, width: usize) -> Result<(u64, usize), ClientError> {
        self.send(FrameKind::OpenSession, &OpenSessionReq { width })?;
        let rep: OpenSessionRep = self.recv_kind(FrameKind::SessionOpened)?.parse()?;
        if rep.ok {
            Ok((rep.session, rep.warmup))
        } else {
            Err(ClientError::Refused(rep.detail))
        }
    }

    /// Closes a session; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn close_session(&mut self, session: u64) -> Result<bool, ClientError> {
        self.send(FrameKind::CloseSession, &CloseSessionReq { session })?;
        let rep: CloseSessionRep = self.recv_kind(FrameKind::SessionClosed)?.parse()?;
        Ok(rep.existed)
    }

    /// Sends a push batch without waiting for replies.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn send_push_batch(&mut self, entries: Vec<PushEntry>) -> Result<(), ClientError> {
        self.send(FrameKind::PushBatch, &PushBatchReq { entries })
    }

    /// Collects `n` push replies (any session/seq).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors; [`ClientError::Timeout`] per missing
    /// reply.
    pub fn recv_push_replies(&mut self, n: usize) -> Result<Vec<PushReply>, ClientError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.recv_kind(FrameKind::PushReply)?.parse()?);
        }
        Ok(out)
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_raw(&crate::frame::encode_frame(FrameKind::Ping, &[]))?;
        self.recv_kind(FrameKind::Pong)?;
        Ok(())
    }
}

/// Blocking client for the line-based admin plane.
pub struct AdminClient {
    reader: BufReader<TcpStream>,
}

impl AdminClient {
    /// Connects to the admin listener.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Runs one command; returns `(data_lines, status_line)` with the
    /// `"| "` prefixes stripped.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ClientError::Closed`] if the server hangs up
    /// before the status line.
    pub fn cmd(&mut self, command: &str) -> Result<(Vec<String>, String), ClientError> {
        self.reader
            .get_mut()
            .write_all(format!("{command}\n").as_bytes())?;
        self.read_response()
    }

    /// Uploads raw MDSN snapshot bytes via `publish`.
    ///
    /// # Errors
    ///
    /// Transport errors; the status line carries acceptance/rejection.
    pub fn publish(&mut self, snapshot_bytes: &[u8]) -> Result<(Vec<String>, String), ClientError> {
        let header = format!("publish {}\n", snapshot_bytes.len());
        let stream = self.reader.get_mut();
        stream.write_all(header.as_bytes())?;
        stream.write_all(snapshot_bytes)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<(Vec<String>, String), ClientError> {
        let mut data = Vec::new();
        loop {
            let mut line = String::new();
            let n = loop {
                match self.reader.read_line(&mut line) {
                    Ok(n) => break n,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut
                            || e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            };
            if n == 0 {
                return Err(ClientError::Closed);
            }
            let line = line.trim_end_matches('\n').to_owned();
            if let Some(rest) = line.strip_prefix("| ") {
                data.push(rest.to_owned());
            } else {
                return Ok((data, line));
            }
        }
    }
}

/// Reads everything until EOF — for tests that expect the server to close.
///
/// # Errors
///
/// Propagates read failures other than timeouts.
pub fn drain_to_eof(stream: &mut TcpStream, deadline: Duration) -> io::Result<Vec<u8>> {
    let start = Instant::now();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(buf),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if start.elapsed() >= deadline {
                    return Ok(buf);
                }
            }
            Err(e) => return Err(e),
        }
    }
}
