//! Wire messages carried by the framed ingest plane.
//!
//! All payloads are JSON. Scores cross the wire as **raw f64 bit
//! patterns** (`f64::to_bits`), not decimal text, so a network-served
//! detection is byte-identical to the in-process one by construction —
//! no float-formatting roundtrip can perturb it (`tests/serve_net.rs`
//! pins this).

use mdes_core::OnlineDetection;
use serde::{Deserialize, Serialize};

/// Client → server: open a stream session over samples of `width` sensors.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenSessionReq {
    /// Sensors per pushed sample (the trace count used at fit time).
    pub width: usize,
}

/// Server → client: outcome of [`OpenSessionReq`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenSessionRep {
    /// Whether the session was opened.
    pub ok: bool,
    /// Session id to push against (0 when `ok` is false).
    pub session: u64,
    /// Samples needed before the first detection can be emitted.
    pub warmup: usize,
    /// Version of the snapshot serving this session at open time.
    pub snapshot_version: u64,
    /// Failure diagnostics when `ok` is false.
    pub detail: String,
}

/// Client → server: close a stream session.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloseSessionReq {
    /// Session to close.
    pub session: u64,
}

/// Server → client: outcome of [`CloseSessionReq`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloseSessionRep {
    /// The closed session.
    pub session: u64,
    /// `true` if the session existed.
    pub existed: bool,
}

/// One sample for one session inside a [`PushBatchReq`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushEntry {
    /// Target session.
    pub session: u64,
    /// Client-chosen correlation id, echoed in the [`PushReply`].
    pub seq: u64,
    /// One multivariate sample; `None` marks a sensor that delivered no
    /// record this tick (see `ServingEngine::push_opt`).
    pub records: Vec<Option<String>>,
}

/// Client → server: batched multi-session ingest. Entries for the same
/// session are scored in order; entries for different sessions are
/// independent.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushBatchReq {
    /// The batch.
    pub entries: Vec<PushEntry>,
}

/// A detection with its floats as raw bit patterns.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireDetection {
    /// Index of the sample at which the window completed.
    pub sample_index: usize,
    /// `f64::to_bits` of the anomaly score `a_t`.
    pub score_bits: u64,
    /// `f64::to_bits` of the coverage fraction.
    pub coverage_bits: u64,
    /// Broken sensor pairs of the completed window.
    pub alerts: Vec<(usize, usize)>,
    /// Original (push-order) indices of sensors currently dropped.
    pub dropped_sensors: Vec<usize>,
}

impl From<OnlineDetection> for WireDetection {
    fn from(d: OnlineDetection) -> Self {
        Self {
            sample_index: d.sample_index,
            score_bits: d.score.to_bits(),
            coverage_bits: d.coverage.to_bits(),
            alerts: d.alerts,
            dropped_sensors: d.dropped_sensors,
        }
    }
}

impl From<WireDetection> for OnlineDetection {
    fn from(w: WireDetection) -> Self {
        Self {
            sample_index: w.sample_index,
            score: f64::from_bits(w.score_bits),
            coverage: f64::from_bits(w.coverage_bits),
            alerts: w.alerts,
            dropped_sensors: w.dropped_sensors,
        }
    }
}

/// Per-entry outcome inside a [`PushReply`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushOutcome {
    /// Sample absorbed; no window completed.
    Ack,
    /// Sample completed a window; here is its detection.
    Score(WireDetection),
    /// Backpressure: the session's ingest queue is full. The sample was
    /// **not** absorbed — re-send it after draining replies.
    Busy,
    /// The session does not exist (never opened, closed, or evicted by the
    /// idle TTL). The sample was not absorbed.
    Gone,
    /// The engine rejected the sample (e.g. wrong width). The sample was
    /// consumed but produced no detection.
    Error {
        /// Engine diagnostics.
        detail: String,
    },
}

/// Server → client: outcome of one [`PushEntry`], correlated by
/// `(session, seq)`.
///
/// Outcomes for one session arrive in push order, except that `Busy` and
/// `Gone` are emitted synchronously at ingest and may overtake queued
/// outcomes of earlier entries.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushReply {
    /// The session pushed to.
    pub session: u64,
    /// The entry's correlation id.
    pub seq: u64,
    /// What happened.
    pub outcome: PushOutcome,
}

/// Server → client: a typed protocol error, sent best-effort just before
/// the server closes the connection.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtoErrRep {
    /// Stable identifier (see `ProtoError::code`).
    pub code: String,
    /// Human-readable diagnostics.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_bits_roundtrip_exactly() {
        for score in [0.0f64, -0.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let d = OnlineDetection {
                sample_index: 7,
                score,
                coverage: score / 2.0,
                alerts: vec![(1, 2)],
                dropped_sensors: vec![0],
            };
            let w = WireDetection::from(d.clone());
            let json = serde_json::to_string(&w).expect("serialize");
            let back: WireDetection = serde_json::from_str(&json).expect("deserialize");
            let restored = OnlineDetection::from(back);
            assert_eq!(restored.score.to_bits(), d.score.to_bits());
            assert_eq!(restored.coverage.to_bits(), d.coverage.to_bits());
            assert_eq!(restored.alerts, d.alerts);
            assert_eq!(restored.dropped_sensors, d.dropped_sensors);
        }
    }

    #[test]
    fn push_outcome_variants_roundtrip() {
        let outcomes = [
            PushOutcome::Ack,
            PushOutcome::Busy,
            PushOutcome::Gone,
            PushOutcome::Error {
                detail: "width".to_owned(),
            },
        ];
        for o in outcomes {
            let json = serde_json::to_string(&o).expect("serialize");
            let back: PushOutcome = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, o);
        }
    }
}
