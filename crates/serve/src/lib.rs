//! `mdes-serve` — the network-facing serving daemon over
//! `mdes_core::serve::ServingEngine`.
//!
//! Std-only (no async runtime): `std::net` listeners, one reader + one
//! writer thread per ingest connection, and a single scoring pump that
//! batches queued samples through `ServingEngine::push_opt_many` — the
//! same crossbeam fan-out an in-process host uses, so network-served
//! scores are byte-identical to in-process ones.
//!
//! Two planes:
//!
//! * **Ingest** ([`frame`], [`wire`]) — a length-prefixed binary protocol
//!   (magic/version/kind/len/FNV-1a checksum, mirroring the MDCK/MDSN
//!   checkpoint framing) carrying session open/close, batched pushes with
//!   explicit `Busy` backpressure, and bit-exact score replies.
//! * **Admin** ([`admin`]) — a line-based text plane: session listing,
//!   stats, the mdes-obs report, forced eviction, validated snapshot
//!   upload (`publish`) that hot-swaps the model without dropping
//!   buffered windows, and daemon shutdown.
//!
//! See `DESIGN.md` §12 for the wire format specification.
//!
//! # Example
//!
//! ```no_run
//! use mdes_serve::{start, IngestClient, ServeConfig};
//! # fn engine() -> mdes_core::ServingEngine { unimplemented!() }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = start(engine(), ServeConfig::default())?;
//! let mut client = IngestClient::connect(server.addr())?;
//! let (session, _warmup) = client.open_session(2)?;
//! client.send_push_batch(vec![mdes_serve::wire::PushEntry {
//!     session,
//!     seq: 0,
//!     records: vec![Some("on".into()), Some("off".into())],
//! }])?;
//! let replies = client.recv_push_replies(1)?;
//! assert_eq!(replies[0].seq, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod admin;
mod client;
pub mod frame;
mod server;
pub mod wire;

pub use client::{drain_to_eof, AdminClient, ClientError, IngestClient};
pub use frame::{
    encode_frame, encode_msg, read_frame, write_frame, Frame, FrameKind, ProtoError, ReadOutcome,
    DEFAULT_MAX_PAYLOAD, HEADER_LEN, MAGIC, VERSION,
};
pub use server::{start, ServeConfig, ServerHandle};
pub use wire::{
    CloseSessionRep, CloseSessionReq, OpenSessionRep, OpenSessionReq, ProtoErrRep, PushBatchReq,
    PushEntry, PushOutcome, PushReply, WireDetection,
};
