//! Line-based text admin/query plane.
//!
//! One command per line; responses are zero or more data lines prefixed
//! `"| "` followed by exactly one status line starting `ok` or `err`.
//! The only command that reads more than a line is `publish <nbytes>`,
//! which is followed by exactly `nbytes` of raw MDSN snapshot bytes (the
//! same format `write_snapshot` puts on disk).
//!
//! ```text
//! sessions             list open sessions
//! stats                one-line daemon stats
//! obs                  dump the installed mdes-obs recorder report
//! publish <nbytes>     upload + validate + hot-swap a snapshot
//! evict <id>           force-evict one session
//! ping                 liveness probe
//! help                 this list
//! quit                 close this admin connection
//! shutdown             stop the daemon
//! ```

use crate::server::Shared;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TICK: Duration = Duration::from_millis(50);

pub(crate) fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut conn_threads = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let s = Arc::clone(shared);
        conn_threads.push(std::thread::spawn(move || serve_conn(&s, stream)));
        conn_threads.retain(|t: &std::thread::JoinHandle<()>| !t.is_finished());
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

/// How one blocking admin read ended.
enum LineOutcome {
    Line(String),
    Eof,
    /// A started line (or byte run) stalled past the deadline — slow-loris.
    TimedOut,
    Shutdown,
}

fn serve_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_nodelay(true);
    loop {
        let line = match read_line(shared, &mut stream) {
            LineOutcome::Line(l) => l,
            LineOutcome::Eof | LineOutcome::Shutdown => break,
            LineOutcome::TimedOut => {
                mdes_obs::counter("serve.net.timeouts", 1);
                let _ = stream.write_all(b"err line read timed out\n");
                break;
            }
        };
        let line = line.trim().to_owned();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, ' ');
        let cmd = parts.next().unwrap_or_default();
        let arg = parts.next().unwrap_or_default().trim();
        let keep_going = match cmd {
            "ping" => respond(&mut stream, &[], "ok pong"),
            "help" => {
                let lines = [
                    "sessions             list open sessions",
                    "stats                one-line daemon stats",
                    "obs                  dump the mdes-obs recorder report",
                    "publish <nbytes>     upload + validate + hot-swap a snapshot",
                    "evict <id>           force-evict one session",
                    "ping                 liveness probe",
                    "quit                 close this admin connection",
                    "shutdown             stop the daemon",
                ];
                respond(&mut stream, &lines.map(String::from), "ok")
            }
            "sessions" => cmd_sessions(shared, &mut stream),
            "stats" => cmd_stats(shared, &mut stream),
            "obs" => cmd_obs(&mut stream),
            "evict" => cmd_evict(shared, &mut stream, arg),
            "publish" => cmd_publish(shared, &mut stream, arg),
            "quit" => {
                let _ = respond(&mut stream, &[], "ok bye");
                false
            }
            "shutdown" => {
                let _ = respond(&mut stream, &[], "ok shutting down");
                shared.request_shutdown();
                false
            }
            other => respond(&mut stream, &[], &format!("err unknown command {other:?}")),
        };
        if !keep_going {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Writes data lines + the status line; `false` when the peer is gone.
fn respond(stream: &mut TcpStream, data: &[String], status: &str) -> bool {
    let mut out = String::new();
    for line in data {
        out.push_str("| ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(status);
    out.push('\n');
    stream.write_all(out.as_bytes()).is_ok()
}

fn cmd_sessions(shared: &Arc<Shared>, stream: &mut TcpStream) -> bool {
    let mut rows: Vec<(u64, String)> = {
        let reg = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
        reg.values()
            .map(|e| {
                (
                    e.id,
                    format!(
                        "id={} width={} seen={} queued={}",
                        e.id,
                        e.width,
                        e.seen(),
                        e.queued()
                    ),
                )
            })
            .collect()
    };
    rows.sort_by_key(|(id, _)| *id);
    let n = rows.len();
    let lines: Vec<String> = rows.into_iter().map(|(_, l)| l).collect();
    respond(stream, &lines, &format!("ok {n} sessions"))
}

fn cmd_stats(shared: &Arc<Shared>, stream: &mut TcpStream) -> bool {
    let snapshot = shared.engine.snapshot();
    // A mixed-encoding snapshot cannot be published, but report it honestly
    // rather than crash the admin plane if one ever appears.
    let format = snapshot.quant_mode().map_or("mixed", |m| m.name());
    let line = format!(
        "snapshot_version={} snapshot_format={} snapshot_bytes={} pair_models={} \
         sessions={} engine_sessions={} conns={}",
        shared.engine.store().version(),
        format,
        snapshot.approx_bytes(),
        snapshot.models().len(),
        shared
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len(),
        shared.engine.session_count(),
        shared.live_conns.load(Ordering::Relaxed),
    );
    respond(stream, &[line], "ok")
}

fn cmd_obs(stream: &mut TcpStream) -> bool {
    match mdes_obs::installed() {
        None => respond(stream, &[], "err no recorder installed"),
        Some(recorder) => {
            let report = recorder.report();
            let lines: Vec<String> = report.lines().map(str::to_owned).collect();
            respond(stream, &lines, "ok")
        }
    }
}

fn cmd_evict(shared: &Arc<Shared>, stream: &mut TcpStream, arg: &str) -> bool {
    match arg.parse::<u64>() {
        Err(_) => respond(
            stream,
            &[],
            &format!("err evict needs a session id, got {arg:?}"),
        ),
        Ok(id) if shared.evict(id, "admin") => respond(stream, &[], &format!("ok evicted {id}")),
        Ok(id) => respond(stream, &[], &format!("err unknown session {id}")),
    }
}

fn cmd_publish(shared: &Arc<Shared>, stream: &mut TcpStream, arg: &str) -> bool {
    let nbytes = match arg.parse::<usize>() {
        Ok(n) => n,
        Err(_) => {
            return respond(
                stream,
                &[],
                &format!("err publish needs a byte count, got {arg:?}"),
            )
        }
    };
    if nbytes > shared.cfg.max_snapshot_bytes {
        return respond(
            stream,
            &[],
            &format!(
                "err snapshot of {nbytes} bytes exceeds cap of {}",
                shared.cfg.max_snapshot_bytes
            ),
        );
    }
    let mut bytes = vec![0u8; nbytes];
    if !read_exact_deadline(shared, stream, &mut bytes) {
        mdes_obs::counter("serve.net.timeouts", 1);
        let _ = stream.write_all(b"err snapshot upload timed out\n");
        return false;
    }
    match mdes_core::snapshot_from_bytes(&bytes)
        .and_then(|snapshot| shared.engine.publish(snapshot))
    {
        Ok(version) => {
            mdes_obs::counter("serve.net.publish_ok", 1);
            respond(stream, &[], &format!("ok published version={version}"))
        }
        Err(e) => {
            // The rejected snapshot never went live: `publish` validates
            // before swapping and the store version is unchanged.
            mdes_obs::counter("serve.net.publish_rejected", 1);
            respond(stream, &[], &format!("err publish rejected: {e}"))
        }
    }
}

/// Fills `buf` from the socket, allowing up to `read_timeout` with **no
/// progress** (the deadline resets whenever bytes arrive, so a large
/// snapshot on a slow link is fine — only a stalled one dies).
fn read_exact_deadline(shared: &Arc<Shared>, stream: &mut TcpStream, buf: &mut [u8]) -> bool {
    let mut filled = 0;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_progress.elapsed() >= shared.cfg.read_timeout {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Reads one `\n`-terminated line under the same no-progress deadline.
fn read_line(shared: &Arc<Shared>, stream: &mut TcpStream) -> LineOutcome {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    let mut started_at: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return LineOutcome::Shutdown;
        }
        match stream.read(&mut byte) {
            Ok(0) => {
                return if line.is_empty() {
                    LineOutcome::Eof
                } else {
                    LineOutcome::TimedOut
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return LineOutcome::Line(String::from_utf8_lossy(&line).into_owned());
                }
                line.push(byte[0]);
                started_at.get_or_insert_with(Instant::now);
                if line.len() > 4096 {
                    return LineOutcome::TimedOut;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if started_at.is_some_and(|t| t.elapsed() >= shared.cfg.read_timeout) {
                    return LineOutcome::TimedOut;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return LineOutcome::Eof,
        }
    }
}
