//! Error type for the language pipeline.

use std::error::Error;
use std::fmt;

/// Errors reported by the sensor-language pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LangError {
    /// An input sequence or corpus was empty.
    EmptyInput,
    /// A sensor reported more distinct categories than the encryption
    /// alphabet supports.
    TooManyCategories {
        /// Distinct categories observed.
        found: usize,
        /// Maximum supported by the alphabet.
        max: usize,
    },
    /// A requested sample range exceeded the trace length.
    RangeOutOfBounds {
        /// End of the requested range.
        end: usize,
        /// Trace length.
        len: usize,
    },
    /// The segment is too short to produce a single word or sentence under
    /// the configured window sizes.
    SegmentTooShort {
        /// Samples available.
        available: usize,
        /// Samples required for one sentence.
        required: usize,
    },
    /// Every training sequence was constant, so no language can be built.
    AllSequencesConstant,
    /// A window parameter (length or stride) was zero.
    ZeroWindowParameter,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::EmptyInput => write!(f, "empty input sequence or corpus"),
            LangError::TooManyCategories { found, max } => {
                write!(
                    f,
                    "sensor reports {found} distinct categories, alphabet supports {max}"
                )
            }
            LangError::RangeOutOfBounds { end, len } => {
                write!(f, "sample range end {end} exceeds trace length {len}")
            }
            LangError::SegmentTooShort {
                available,
                required,
            } => {
                write!(
                    f,
                    "segment of {available} samples cannot produce a sentence needing {required}"
                )
            }
            LangError::AllSequencesConstant => {
                write!(f, "all training sequences are constant; nothing to model")
            }
            LangError::ZeroWindowParameter => {
                write!(f, "word/sentence lengths and strides must be positive")
            }
        }
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_nonempty() {
        let errs = [
            LangError::EmptyInput,
            LangError::TooManyCategories { found: 99, max: 52 },
            LangError::RangeOutOfBounds { end: 10, len: 5 },
            LangError::SegmentTooShort {
                available: 3,
                required: 30,
            },
            LangError::AllSequencesConstant,
            LangError::ZeroWindowParameter,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
