//! Discrete-event encryption: mapping categorical records to characters.
//!
//! Following §II-A1 of the paper, each sensor's distinct event records are
//! collected, sorted in alphanumeric order, and assigned letters
//! (`a`, `b`, `c`, …). The per-sensor mapping is an [`Alphabet`]. A reserved
//! *unknown* letter ([`Alphabet::UNKNOWN`]) stands in for system states that
//! appear only during online testing.

use crate::error::LangError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Letters available for encryption (`a`–`z`, then `A`–`Z`).
const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// Record string standing in for a sample a sensor failed to deliver (a
/// dropped packet, a dead sensor, a gap in the log). The embedded `U+001A`
/// (SUBSTITUTE) control characters keep it from colliding with any real
/// categorical record. Shared by the online monitor (which substitutes it
/// for missing per-sensor records) and the fault-injection harness (which
/// uses it to simulate dropout); it is never part of a training alphabet, so
/// it always encodes to [`Alphabet::UNKNOWN`].
pub const MISSING_RECORD: &str = "\u{1a}missing\u{1a}";

/// A per-sensor mapping from categorical event records to letter codes.
///
/// Letter codes are small integers (`0` = `a`, `1` = `b`, …); the reserved
/// [`Alphabet::UNKNOWN`] code marks records never seen during training.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alphabet {
    /// Sorted distinct records; index = letter code.
    records: Vec<String>,
}

impl Alphabet {
    /// Letter code reserved for unknown (unseen in training) records.
    pub const UNKNOWN: u8 = u8::MAX;

    /// Builds an alphabet from the distinct records of a training sequence,
    /// sorted alphanumerically.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::EmptyInput`] for an empty sequence and
    /// [`LangError::TooManyCategories`] if there are more distinct records
    /// than available letters.
    pub fn fit<S: AsRef<str>>(events: &[S]) -> Result<Self, LangError> {
        if events.is_empty() {
            return Err(LangError::EmptyInput);
        }
        let distinct: BTreeSet<&str> = events.iter().map(AsRef::as_ref).collect();
        if distinct.len() > LETTERS.len() {
            return Err(LangError::TooManyCategories {
                found: distinct.len(),
                max: LETTERS.len(),
            });
        }
        Ok(Self {
            records: distinct.into_iter().map(str::to_owned).collect(),
        })
    }

    /// Number of distinct records (the sensor's cardinality).
    pub fn cardinality(&self) -> usize {
        self.records.len()
    }

    /// Encodes one record, returning [`Alphabet::UNKNOWN`] for unseen ones.
    pub fn encode_one(&self, record: &str) -> u8 {
        match self.records.binary_search_by(|r| r.as_str().cmp(record)) {
            Ok(i) => i as u8,
            Err(_) => Self::UNKNOWN,
        }
    }

    /// Encodes a whole sequence of records.
    pub fn encode<S: AsRef<str>>(&self, events: &[S]) -> Vec<u8> {
        events.iter().map(|e| self.encode_one(e.as_ref())).collect()
    }

    /// The display character for a letter code (`?` for unknown).
    pub fn letter(code: u8) -> char {
        if code == Self::UNKNOWN || code as usize >= LETTERS.len() {
            '?'
        } else {
            LETTERS[code as usize] as char
        }
    }

    /// The record associated with a letter code, or `None` for unknown.
    pub fn record(&self, code: u8) -> Option<&str> {
        self.records.get(code as usize).map(String::as_str)
    }
}

/// Returns `true` if every event in the sequence is identical — the paper's
/// *sequence filtering* criterion for discarding uninformative sensors.
pub fn is_constant<S: AsRef<str> + PartialEq>(events: &[S]) -> bool {
    match events.first() {
        None => true,
        Some(first) => events.iter().all(|e| e.as_ref() == first.as_ref()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_sorts_alphanumerically() {
        let events = vec!["on", "off", "on", "standby"];
        let a = Alphabet::fit(&events).expect("fit");
        assert_eq!(a.cardinality(), 3);
        // Sorted order: off < on < standby.
        assert_eq!(a.encode_one("off"), 0);
        assert_eq!(a.encode_one("on"), 1);
        assert_eq!(a.encode_one("standby"), 2);
        assert_eq!(a.record(0), Some("off"));
    }

    #[test]
    fn unknown_records_map_to_reserved_code() {
        let a = Alphabet::fit(&["on", "off"]).expect("fit");
        assert_eq!(a.encode_one("exploded"), Alphabet::UNKNOWN);
        assert_eq!(Alphabet::letter(Alphabet::UNKNOWN), '?');
    }

    #[test]
    fn encode_sequence() {
        let a = Alphabet::fit(&["0", "1"]).expect("fit");
        assert_eq!(a.encode(&["0", "1", "1", "0"]), vec![0, 1, 1, 0]);
    }

    #[test]
    fn letters_render_as_chars() {
        assert_eq!(Alphabet::letter(0), 'a');
        assert_eq!(Alphabet::letter(25), 'z');
        assert_eq!(Alphabet::letter(26), 'A');
    }

    #[test]
    fn empty_input_rejected() {
        let empty: Vec<&str> = vec![];
        assert_eq!(Alphabet::fit(&empty), Err(LangError::EmptyInput));
    }

    #[test]
    fn too_many_categories_rejected() {
        let events: Vec<String> = (0..100).map(|i| format!("state{i:03}")).collect();
        assert!(matches!(
            Alphabet::fit(&events),
            Err(LangError::TooManyCategories {
                found: 100,
                max: 52
            })
        ));
    }

    #[test]
    fn constant_detection() {
        assert!(is_constant(&["x", "x", "x"]));
        assert!(!is_constant(&["x", "y"]));
        assert!(is_constant::<&str>(&[]));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn encode_roundtrip(events in proptest::collection::vec("[a-d]{1,3}", 1..50)) {
                let a = Alphabet::fit(&events).expect("fit");
                for e in &events {
                    let code = a.encode_one(e);
                    prop_assert_ne!(code, Alphabet::UNKNOWN);
                    prop_assert_eq!(a.record(code), Some(e.as_str()));
                }
            }

            #[test]
            fn cardinality_matches_distinct(events in proptest::collection::vec("[a-e]", 1..50)) {
                let a = Alphabet::fit(&events).expect("fit");
                let distinct: std::collections::HashSet<_> = events.iter().collect();
                prop_assert_eq!(a.cardinality(), distinct.len());
            }
        }
    }
}
