//! Word vocabularies over encrypted character sequences.
//!
//! A *word* is a fixed-length run of letter codes (see
//! [`crate::encrypt::Alphabet`]). The [`Vocab`] assigns dense integer ids to
//! the distinct words observed during training; two ids are reserved:
//! [`Vocab::UNK`] for unseen words (including any word containing the unknown
//! letter) and [`Vocab::BOS`] for the decoder's begin-of-sentence token.

use crate::encrypt::Alphabet;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A mapping between words (letter-code vectors) and dense integer ids.
///
/// The lookup index is rebuilt automatically on deserialization.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "VocabShadow")]
pub struct Vocab {
    words: Vec<Vec<u8>>,
    #[serde(skip)]
    index: HashMap<Vec<u8>, u32>,
}

#[derive(Deserialize)]
struct VocabShadow {
    words: Vec<Vec<u8>>,
}

impl From<VocabShadow> for Vocab {
    fn from(shadow: VocabShadow) -> Self {
        let mut v = Vocab {
            words: shadow.words,
            index: HashMap::new(),
        };
        v.rebuild_index();
        v
    }
}

impl Vocab {
    /// Id of the unknown-word token.
    pub const UNK: u32 = 0;
    /// Id of the begin-of-sentence token.
    pub const BOS: u32 = 1;
    /// Number of reserved ids preceding real words.
    pub const RESERVED: u32 = 2;

    /// Builds a vocabulary from training words (insertion order determines
    /// ids; duplicates are ignored).
    pub fn fit<'a>(words: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let mut v = Vocab::default();
        for w in words {
            v.insert(w);
        }
        v
    }

    fn insert(&mut self, word: &[u8]) -> u32 {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len() as u32 + Self::RESERVED;
        self.words.push(word.to_vec());
        self.index.insert(word.to_vec(), id);
        id
    }

    /// Rebuilds the lookup index. Deserialization already does this
    /// automatically; the method is public for hand-constructed states.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as u32 + Self::RESERVED))
            .collect();
    }

    /// Total vocabulary size including the reserved tokens.
    pub fn size(&self) -> usize {
        self.words.len() + Self::RESERVED as usize
    }

    /// Number of real (non-reserved) words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Encodes a word: unknown words — and any word containing the unknown
    /// letter — map to [`Vocab::UNK`].
    pub fn encode(&self, word: &[u8]) -> u32 {
        if word.contains(&Alphabet::UNKNOWN) {
            return Self::UNK;
        }
        self.index.get(word).copied().unwrap_or(Self::UNK)
    }

    /// Decodes an id back to its word, or `None` for reserved/invalid ids.
    pub fn decode(&self, id: u32) -> Option<&[u8]> {
        if id < Self::RESERVED {
            return None;
        }
        self.words
            .get((id - Self::RESERVED) as usize)
            .map(Vec::as_slice)
    }

    /// Renders an id as a human-readable string of letters (`<unk>`/`<s>` for
    /// the reserved tokens).
    pub fn render(&self, id: u32) -> String {
        match id {
            Self::UNK => "<unk>".to_owned(),
            Self::BOS => "<s>".to_owned(),
            _ => self
                .decode(id)
                .map(|w| w.iter().map(|&c| Alphabet::letter(c)).collect())
                .unwrap_or_else(|| "<invalid>".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_assigns_dense_ids_after_reserved() {
        let words: Vec<Vec<u8>> = vec![vec![0, 1], vec![1, 1], vec![0, 1]];
        let v = Vocab::fit(words.iter().map(Vec::as_slice));
        assert_eq!(v.word_count(), 2);
        assert_eq!(v.size(), 4);
        assert_eq!(v.encode(&[0, 1]), 2);
        assert_eq!(v.encode(&[1, 1]), 3);
    }

    #[test]
    fn unknown_word_maps_to_unk() {
        let v = Vocab::fit([vec![0u8, 1]].iter().map(Vec::as_slice));
        assert_eq!(v.encode(&[9, 9]), Vocab::UNK);
    }

    #[test]
    fn word_with_unknown_letter_maps_to_unk() {
        let v = Vocab::fit([vec![0u8, 1]].iter().map(Vec::as_slice));
        assert_eq!(v.encode(&[0, Alphabet::UNKNOWN]), Vocab::UNK);
    }

    #[test]
    fn decode_and_render() {
        let v = Vocab::fit([vec![0u8, 1, 2]].iter().map(Vec::as_slice));
        assert_eq!(v.decode(2), Some(&[0u8, 1, 2][..]));
        assert_eq!(v.decode(Vocab::UNK), None);
        assert_eq!(v.render(2), "abc");
        assert_eq!(v.render(Vocab::UNK), "<unk>");
        assert_eq!(v.render(Vocab::BOS), "<s>");
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let v = Vocab::fit([vec![0u8, 1], vec![2u8, 2]].iter().map(Vec::as_slice));
        let json = serde_json::to_string(&v).expect("serialize");
        let mut restored: Vocab = serde_json::from_str(&json).expect("deserialize");
        restored.rebuild_index();
        assert_eq!(restored.encode(&[2, 2]), v.encode(&[2, 2]));
        assert_eq!(restored.size(), v.size());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn encode_decode_consistent(words in proptest::collection::vec(
                proptest::collection::vec(0u8..5, 3), 1..30)) {
                let v = Vocab::fit(words.iter().map(Vec::as_slice));
                for w in &words {
                    let id = v.encode(w);
                    prop_assert!(id >= Vocab::RESERVED);
                    prop_assert_eq!(v.decode(id), Some(w.as_slice()));
                }
            }

            #[test]
            fn ids_below_size(words in proptest::collection::vec(
                proptest::collection::vec(0u8..5, 2), 1..30)) {
                let v = Vocab::fit(words.iter().map(Vec::as_slice));
                for w in &words {
                    prop_assert!((v.encode(w) as usize) < v.size());
                }
            }
        }
    }
}
