//! Redundant-sensor filtering (paper §III-A2).
//!
//! "By comparing the pattern of sensor discrete event sequences, we notice
//! that many sensors actually share similar event sequences. If redundant
//! sensors are further filtered out, then models are trained on
//! representative sensors only and training time reduces significantly."
//!
//! Two sensors are *redundant* when their event sequences agree (after
//! per-sensor encryption, so the comparison is label-invariant) on at least
//! `similarity` of the training samples. Each redundancy group keeps its
//! first sensor as the representative; the assignment maps every sensor to
//! its representative so detection results can be broadcast back.

use crate::encrypt::Alphabet;
use crate::RawTrace;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Result of redundancy analysis over a set of traces.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupResult {
    /// Indices of representative sensors, in input order.
    pub representatives: Vec<usize>,
    /// For every input sensor, the index of its representative (itself for
    /// representatives).
    pub assignment: Vec<usize>,
}

impl DedupResult {
    /// Number of sensors removed as redundant.
    pub fn removed(&self) -> usize {
        self.assignment.len() - self.representatives.len()
    }

    /// Members of each representative's group (including the representative).
    pub fn groups(&self) -> Vec<(usize, Vec<usize>)> {
        self.representatives
            .iter()
            .map(|&rep| {
                let members: Vec<usize> = self
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| a == rep)
                    .map(|(i, _)| i)
                    .collect();
                (rep, members)
            })
            .collect()
    }
}

/// Fraction of positions where the two encrypted sequences agree, compared
/// label-invariantly: each sequence is encrypted with its own alphabet, so
/// `ON/OFF` and `open/closed` sensors tracking the same signal match.
fn agreement(a: &[u8], b: &[u8]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 1.0;
    }
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

/// Greedy redundancy grouping: scans sensors in order and assigns each to
/// the first earlier representative whose encrypted training sequence agrees
/// on at least `similarity` of samples (or complementary-agrees, covering
/// inverted binary sensors).
///
/// # Panics
///
/// Panics if `similarity` is outside `(0.5, 1.0]`, traces are empty, or the
/// range is out of bounds for any trace.
pub fn dedupe_sensors(traces: &[RawTrace], train: Range<usize>, similarity: f64) -> DedupResult {
    assert!(
        similarity > 0.5 && similarity <= 1.0,
        "similarity {similarity} must be in (0.5, 1.0]"
    );
    assert!(!traces.is_empty(), "no traces to deduplicate");
    let encoded: Vec<Vec<u8>> = traces
        .iter()
        .map(|t| {
            assert!(
                train.end <= t.events.len(),
                "range end {} exceeds trace {} length {}",
                train.end,
                t.name,
                t.events.len()
            );
            let segment = &t.events[train.clone()];
            match Alphabet::fit(segment) {
                Ok(a) => a.encode(segment),
                // Constant sequences encode as all-zero; they group together.
                Err(_) => vec![0; segment.len()],
            }
        })
        .collect();

    let mut representatives: Vec<usize> = Vec::new();
    let mut assignment = vec![0usize; traces.len()];
    for i in 0..traces.len() {
        let mut rep = None;
        for &r in &representatives {
            let agree = agreement(&encoded[i], &encoded[r]);
            // Binary sensors that are exact complements carry the same
            // information: low direct agreement means high complementary
            // agreement when both have cardinality 2.
            let binary = encoded[i].iter().all(|&c| c < 2) && encoded[r].iter().all(|&c| c < 2);
            let effective = if binary {
                agree.max(1.0 - agree)
            } else {
                agree
            };
            if effective >= similarity {
                rep = Some(r);
                break;
            }
        }
        match rep {
            Some(r) => assignment[i] = r,
            None => {
                representatives.push(i);
                assignment[i] = i;
            }
        }
    }
    DedupResult {
        representatives,
        assignment,
    }
}

/// Returns the representative traces selected by a [`DedupResult`], cloned
/// in representative order.
pub fn representative_traces(traces: &[RawTrace], dedup: &DedupResult) -> Vec<RawTrace> {
    dedup
        .representatives
        .iter()
        .map(|&r| traces[r].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(name: &str, n: usize, period: usize, phase: usize, labels: (&str, &str)) -> RawTrace {
        RawTrace::new(
            name,
            (0..n)
                .map(|t| {
                    if ((t + phase) / period).is_multiple_of(2) {
                        labels.0
                    } else {
                        labels.1
                    }
                    .to_owned()
                })
                .collect(),
        )
    }

    #[test]
    fn identical_sensors_collapse() {
        let traces = vec![
            square("a", 100, 5, 0, ("on", "off")),
            square("b", 100, 5, 0, ("on", "off")),
            square("c", 100, 7, 0, ("on", "off")),
        ];
        let d = dedupe_sensors(&traces, 0..100, 0.95);
        assert_eq!(d.representatives, vec![0, 2]);
        assert_eq!(d.assignment, vec![0, 0, 2]);
        assert_eq!(d.removed(), 1);
    }

    #[test]
    fn relabeled_sensors_collapse() {
        // Same signal, different category labels: label-invariant comparison
        // groups them. "open" < "shut" sorts like "off" < "on"? No: check via
        // behavior — phase-locked identical dynamics.
        let traces = vec![
            square("a", 100, 4, 0, ("off", "on")),
            square("b", 100, 4, 0, ("closed", "open")),
        ];
        let d = dedupe_sensors(&traces, 0..100, 0.95);
        assert_eq!(d.representatives.len(), 1);
    }

    #[test]
    fn complementary_binary_sensors_collapse() {
        let traces = vec![
            square("a", 100, 4, 0, ("a0", "a1")),
            // Exactly inverted states.
            square("b", 100, 4, 4, ("a0", "a1")),
        ];
        let d = dedupe_sensors(&traces, 0..100, 0.95);
        assert_eq!(
            d.representatives.len(),
            1,
            "inverted binary pair should group"
        );
    }

    #[test]
    fn distinct_sensors_stay() {
        let traces = vec![
            square("a", 120, 4, 0, ("on", "off")),
            square("b", 120, 7, 2, ("on", "off")),
            square("c", 120, 11, 1, ("on", "off")),
        ];
        let d = dedupe_sensors(&traces, 0..120, 0.95);
        assert_eq!(d.representatives, vec![0, 1, 2]);
        assert_eq!(d.removed(), 0);
    }

    #[test]
    fn groups_partition_sensors() {
        let traces = vec![
            square("a", 100, 5, 0, ("on", "off")),
            square("b", 100, 5, 0, ("on", "off")),
            square("c", 100, 7, 0, ("on", "off")),
            square("d", 100, 7, 0, ("on", "off")),
        ];
        let d = dedupe_sensors(&traces, 0..100, 0.95);
        let mut all: Vec<usize> = d.groups().into_iter().flat_map(|(_, m)| m).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        let reps = representative_traces(&traces, &d);
        assert_eq!(reps.len(), d.representatives.len());
    }

    #[test]
    fn constant_sensors_group_together() {
        let traces = vec![
            RawTrace::new("f1", vec!["x".to_owned(); 50]),
            RawTrace::new("f2", vec!["y".to_owned(); 50]),
        ];
        let d = dedupe_sensors(&traces, 0..50, 0.99);
        assert_eq!(d.representatives.len(), 1);
    }

    #[test]
    #[should_panic(expected = "similarity")]
    fn bad_similarity_panics() {
        let traces = vec![RawTrace::new("a", vec!["x".to_owned(); 10])];
        let _ = dedupe_sensors(&traces, 0..10, 0.3);
    }
}
