//! Sliding-window word and sentence generation (§II-A2 of the paper).
//!
//! Characters are grouped into *words* of `word_len` letters advancing by
//! `word_stride`; words are grouped into *sentences* of `sent_len` words
//! advancing by `sent_stride`. Only full windows are produced. With the
//! paper's plant settings (`word_len = 10`, `word_stride = 1`,
//! `sent_len = 20`, `sent_stride = 20`) each sentence covers 20 consecutive
//! minutes and detection runs every 20 minutes.

use crate::error::LangError;
use serde::{Content, DeError, Deserialize, Serialize};

/// Window parameters for turning character streams into sentences.
///
/// `Deserialize` is hand-written to run [`WindowConfig::validate`] at the
/// boundary: a zero-stride config loaded from disk used to pass silently
/// and then panic with a division-by-zero deep inside windowing; it now
/// fails to deserialize with the `ZeroWindowParameter` message instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct WindowConfig {
    /// Characters per word (`i` in the paper).
    pub word_len: usize,
    /// Characters the word window advances by (`j`).
    pub word_stride: usize,
    /// Words per sentence (`m`).
    pub sent_len: usize,
    /// Words the sentence window advances by (`n`).
    pub sent_stride: usize,
}

impl Default for WindowConfig {
    /// The paper's physical-plant settings.
    fn default() -> Self {
        Self {
            word_len: 10,
            word_stride: 1,
            sent_len: 20,
            sent_stride: 20,
        }
    }
}

impl WindowConfig {
    /// The paper's HDD settings (daily sampling): 5-character words, 7-word
    /// sentences, both strides 1.
    pub fn hdd() -> Self {
        Self {
            word_len: 5,
            word_stride: 1,
            sent_len: 7,
            sent_stride: 1,
        }
    }

    /// Validates that all lengths and strides are positive.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::ZeroWindowParameter`] when any field is zero.
    pub fn validate(&self) -> Result<(), LangError> {
        if self.word_len == 0
            || self.word_stride == 0
            || self.sent_len == 0
            || self.sent_stride == 0
        {
            return Err(LangError::ZeroWindowParameter);
        }
        Ok(())
    }

    /// Number of words generated from `samples` characters.
    pub fn word_count(&self, samples: usize) -> usize {
        if samples < self.word_len {
            0
        } else {
            (samples - self.word_len) / self.word_stride + 1
        }
    }

    /// Number of sentences generated from `samples` characters.
    pub fn sentence_count(&self, samples: usize) -> usize {
        let words = self.word_count(samples);
        if words < self.sent_len {
            0
        } else {
            (words - self.sent_len) / self.sent_stride + 1
        }
    }

    /// Minimum characters needed to produce one sentence.
    pub fn min_samples(&self) -> usize {
        self.word_len + (self.sent_len - 1) * self.word_stride
    }

    /// The first character index covered by sentence `s` (its timestamp
    /// within the segment).
    pub fn sentence_start(&self, s: usize) -> usize {
        s * self.sent_stride * self.word_stride
    }
}

impl Deserialize for WindowConfig {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let cfg = Self {
            word_len: serde::__field(content, "word_len")?,
            word_stride: serde::__field(content, "word_stride")?,
            sent_len: serde::__field(content, "sent_len")?,
            sent_stride: serde::__field(content, "sent_stride")?,
        };
        cfg.validate().map_err(|e| DeError::custom(e.to_string()))?;
        Ok(cfg)
    }
}

/// Extracts fixed-length words from a character stream.
pub fn words<'a>(chars: &'a [u8], cfg: &WindowConfig) -> Vec<&'a [u8]> {
    let n = cfg.word_count(chars.len());
    (0..n)
        .map(|w| &chars[w * cfg.word_stride..w * cfg.word_stride + cfg.word_len])
        .collect()
}

/// Groups a stream of word ids into fixed-length sentences.
pub fn sentences(word_ids: &[u32], cfg: &WindowConfig) -> Vec<Vec<u32>> {
    let count = if word_ids.len() < cfg.sent_len {
        0
    } else {
        (word_ids.len() - cfg.sent_len) / cfg.sent_stride + 1
    };
    (0..count)
        .map(|s| word_ids[s * cfg.sent_stride..s * cfg.sent_stride + cfg.sent_len].to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_plant_settings() {
        let cfg = WindowConfig::default();
        assert_eq!(
            (cfg.word_len, cfg.word_stride, cfg.sent_len, cfg.sent_stride),
            (10, 1, 20, 20)
        );
    }

    #[test]
    fn paper_sentence_arithmetic() {
        // §III-A1: 1440 characters/day with non-overlapping 20-word sentences
        // of 10-char words (stride 1) -> 71 full sentences from the word
        // stream of 1431 words; the paper rounds to 72 by padding the last
        // day boundary, we produce exactly floor arithmetic.
        let cfg = WindowConfig::default();
        assert_eq!(cfg.word_count(1440), 1431);
        assert_eq!(cfg.sentence_count(1440), 71);
    }

    #[test]
    fn words_overlap_by_stride() {
        let chars = vec![0u8, 1, 2, 3, 4];
        let cfg = WindowConfig {
            word_len: 3,
            word_stride: 1,
            sent_len: 1,
            sent_stride: 1,
        };
        let ws = words(&chars, &cfg);
        assert_eq!(ws, vec![&[0u8, 1, 2][..], &[1, 2, 3], &[2, 3, 4]]);
    }

    #[test]
    fn words_with_larger_stride() {
        let chars = vec![0u8, 1, 2, 3, 4, 5];
        let cfg = WindowConfig {
            word_len: 2,
            word_stride: 2,
            sent_len: 1,
            sent_stride: 1,
        };
        let ws = words(&chars, &cfg);
        assert_eq!(ws, vec![&[0u8, 1][..], &[2, 3], &[4, 5]]);
    }

    #[test]
    fn sentences_non_overlapping() {
        let ids: Vec<u32> = (0..10).collect();
        let cfg = WindowConfig {
            word_len: 1,
            word_stride: 1,
            sent_len: 3,
            sent_stride: 3,
        };
        let ss = sentences(&ids, &cfg);
        assert_eq!(ss, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]]);
    }

    #[test]
    fn sentences_sliding() {
        let ids: Vec<u32> = (0..5).collect();
        let cfg = WindowConfig {
            word_len: 1,
            word_stride: 1,
            sent_len: 3,
            sent_stride: 1,
        };
        let ss = sentences(&ids, &cfg);
        assert_eq!(ss.len(), 3);
        assert_eq!(ss[2], vec![2, 3, 4]);
    }

    #[test]
    fn too_short_produces_nothing() {
        let cfg = WindowConfig::default();
        assert_eq!(words(&[0u8; 5], &cfg).len(), 0);
        assert_eq!(sentences(&[0u32; 5], &cfg).len(), 0);
    }

    #[test]
    fn min_samples_is_tight() {
        let cfg = WindowConfig {
            word_len: 4,
            word_stride: 2,
            sent_len: 3,
            sent_stride: 1,
        };
        let min = cfg.min_samples();
        assert_eq!(cfg.sentence_count(min), 1);
        assert_eq!(cfg.sentence_count(min - 1), 0);
    }

    #[test]
    fn zero_parameter_rejected() {
        let cfg = WindowConfig {
            word_len: 0,
            ..WindowConfig::default()
        };
        assert_eq!(cfg.validate(), Err(LangError::ZeroWindowParameter));
        assert!(WindowConfig::default().validate().is_ok());
    }

    #[test]
    fn deserialize_rejects_zero_stride() {
        // Regression: a zero-stride config from disk used to deserialize
        // fine and then divide by zero inside `word_count`.
        let err = serde_json::from_str::<WindowConfig>(
            r#"{"word_len": 10, "word_stride": 0, "sent_len": 20, "sent_stride": 20}"#,
        )
        .unwrap_err();
        assert!(
            err.to_string()
                .contains("word/sentence lengths and strides must be positive"),
            "{err}"
        );

        let cfg = WindowConfig::default();
        let back: WindowConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn sentence_start_maps_to_characters() {
        let cfg = WindowConfig::default();
        // Sentence s starts at word s*20, each word starts at its index.
        assert_eq!(cfg.sentence_start(0), 0);
        assert_eq!(cfg.sentence_start(3), 60);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn word_count_matches(chars in proptest::collection::vec(0u8..3, 0..200),
                                  wl in 1usize..8, ws in 1usize..4) {
                let cfg = WindowConfig { word_len: wl, word_stride: ws, sent_len: 1, sent_stride: 1 };
                let got = words(&chars, &cfg);
                prop_assert_eq!(got.len(), cfg.word_count(chars.len()));
                for w in got {
                    prop_assert_eq!(w.len(), wl);
                }
            }

            #[test]
            fn sentences_cover_contiguous_words(n in 0usize..100, sl in 1usize..6, ss in 1usize..6) {
                let ids: Vec<u32> = (0..n as u32).collect();
                let cfg = WindowConfig { word_len: 1, word_stride: 1, sent_len: sl, sent_stride: ss };
                for (k, s) in sentences(&ids, &cfg).iter().enumerate() {
                    prop_assert_eq!(s.len(), sl);
                    let start = (k * ss) as u32;
                    for (off, &w) in s.iter().enumerate() {
                        prop_assert_eq!(w, start + off as u32);
                    }
                }
            }
        }
    }
}
