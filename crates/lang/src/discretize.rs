//! Discretization of continuous features into categorical records
//! (§IV-C of the paper, used for the Backblaze HDD case study).
//!
//! Two schemes are supported, chosen per feature from its training
//! distribution:
//!
//! 1. **Binary** — if most observations equal zero (typical for error
//!    counters), the feature becomes a zero/non-zero indicator.
//! 2. **Percentile** — otherwise the 20th/40th/60th/80th percentiles of the
//!    training distribution become decision boundaries, yielding five
//!    quintile categories.
//!
//! Cumulative (monotonically non-decreasing) counters should first be
//! converted to daily deltas with [`first_difference`].

use serde::{Deserialize, Serialize};

/// A fitted per-feature discretization scheme.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Zero / non-zero indicator.
    Binary,
    /// Quintile boundaries (20th, 40th, 60th, 80th percentiles).
    Percentile {
        /// Ascending decision boundaries.
        boundaries: Vec<f64>,
    },
}

impl Scheme {
    /// Fits a scheme from training observations: binary when at least
    /// `zero_fraction` of the values are exactly zero, otherwise quintiles.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `zero_fraction` is outside `(0, 1]`.
    pub fn fit(values: &[f64], zero_fraction: f64) -> Self {
        assert!(!values.is_empty(), "cannot fit a scheme on no observations");
        assert!(
            zero_fraction > 0.0 && zero_fraction <= 1.0,
            "zero_fraction must be in (0, 1], got {zero_fraction}"
        );
        let zeros = values.iter().filter(|&&v| v == 0.0).count();
        if zeros as f64 / values.len() as f64 >= zero_fraction {
            return Scheme::Binary;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in feature values"));
        let boundaries = [0.2, 0.4, 0.6, 0.8]
            .iter()
            .map(|&q| percentile(&sorted, q))
            .collect();
        Scheme::Percentile { boundaries }
    }

    /// Fits with the conventional threshold of 50 % zeros.
    pub fn fit_default(values: &[f64]) -> Self {
        Self::fit(values, 0.5)
    }

    /// Discretizes one value into a categorical record.
    pub fn apply(&self, v: f64) -> String {
        match self {
            Scheme::Binary => if v == 0.0 { "zero" } else { "nonzero" }.to_owned(),
            Scheme::Percentile { boundaries } => {
                let bucket = boundaries.iter().filter(|&&b| v > b).count();
                format!("q{bucket}")
            }
        }
    }

    /// Discretizes a whole series.
    pub fn apply_all(&self, values: &[f64]) -> Vec<String> {
        values.iter().map(|&v| self.apply(v)).collect()
    }

    /// Number of categories this scheme can produce.
    pub fn cardinality(&self) -> usize {
        match self {
            Scheme::Binary => 2,
            Scheme::Percentile { boundaries } => boundaries.len() + 1,
        }
    }
}

/// Linear-interpolation percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// First-order difference of a cumulative counter: `out[t] = x[t] - x[t-1]`,
/// with `out[0] = 0`. Converts lifetime counts into daily deltas.
pub fn first_difference(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(values.len());
    out.push(0.0);
    for w in values.windows(2) {
        out.push(w[1] - w[0]);
    }
    out
}

/// Returns `true` if the series is monotonically non-decreasing — the
/// heuristic used to recognize cumulative SMART counters.
pub fn is_cumulative(values: &[f64]) -> bool {
    values.windows(2).all(|w| w[1] >= w[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mostly_zero_feature_becomes_binary() {
        let mut values = vec![0.0; 90];
        values.extend([1.0, 3.0, 7.0, 2.0, 1.0, 5.0, 2.0, 1.0, 4.0, 9.0]);
        let s = Scheme::fit_default(&values);
        assert_eq!(s, Scheme::Binary);
        assert_eq!(s.apply(0.0), "zero");
        assert_eq!(s.apply(3.5), "nonzero");
        assert_eq!(s.cardinality(), 2);
    }

    #[test]
    fn spread_feature_becomes_quintiles() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Scheme::fit_default(&values);
        match &s {
            Scheme::Percentile { boundaries } => {
                assert_eq!(boundaries.len(), 4);
                assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
            }
            other => panic!("expected percentile scheme, got {other:?}"),
        }
        assert_eq!(s.cardinality(), 5);
        assert_eq!(s.apply(1.0), "q0");
        assert_eq!(s.apply(100.0), "q4");
    }

    #[test]
    fn quintile_buckets_are_roughly_even() {
        let values: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 50.0 + 50.0)
            .collect();
        let s = Scheme::fit_default(&values);
        let cats = s.apply_all(&values);
        for q in 0..5 {
            let label = format!("q{q}");
            let count = cats.iter().filter(|c| **c == label).count();
            assert!(
                (120..=280).contains(&count),
                "bucket {label} has {count} of 1000 observations"
            );
        }
    }

    #[test]
    fn first_difference_of_cumulative_counter() {
        let values = vec![10.0, 10.0, 12.0, 15.0, 15.0];
        assert_eq!(first_difference(&values), vec![0.0, 0.0, 2.0, 3.0, 0.0]);
        assert!(is_cumulative(&values));
        assert!(!is_cumulative(&[3.0, 1.0]));
    }

    #[test]
    fn first_difference_preserves_length() {
        assert_eq!(first_difference(&[]).len(), 0);
        assert_eq!(first_difference(&[5.0]).len(), 1);
        assert_eq!(first_difference(&[1.0, 2.0, 3.0]).len(), 3);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = vec![0.0, 10.0];
        assert!((percentile(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile(&[7.0], 0.4), 7.0);
    }

    #[test]
    #[should_panic(expected = "cannot fit a scheme on no observations")]
    fn fit_rejects_empty() {
        let _ = Scheme::fit_default(&[]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn apply_is_monotone_for_percentile(values in proptest::collection::vec(-1e3..1e3f64, 10..100),
                                                a in -1e3..1e3f64, b in -1e3..1e3f64) {
                let s = Scheme::fit(&values, 0.99);
                if let Scheme::Percentile { .. } = s {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let ca = s.apply(lo);
                    let cb = s.apply(hi);
                    // Bucket labels q0..q4 compare lexicographically in order.
                    prop_assert!(ca <= cb, "{} > {}", ca, cb);
                }
            }

            #[test]
            fn bucket_count_bounded(values in proptest::collection::vec(-100.0..100.0f64, 5..80)) {
                let s = Scheme::fit_default(&values);
                let cats = s.apply_all(&values);
                let distinct: std::collections::HashSet<_> = cats.iter().collect();
                prop_assert!(distinct.len() <= s.cardinality());
            }

            #[test]
            fn difference_then_cumsum_roundtrip(values in proptest::collection::vec(0.0..1e4f64, 1..50)) {
                let diff = first_difference(&values);
                let mut acc = values[0];
                for (t, &d) in diff.iter().enumerate().skip(1) {
                    acc += d;
                    prop_assert!((acc - values[t]).abs() < 1e-6);
                }
            }
        }
    }
}
