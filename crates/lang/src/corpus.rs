//! End-to-end corpus construction: raw multivariate event traces in, aligned
//! sensor-language sentence sets out.
//!
//! The [`LanguagePipeline`] is fitted on a training range: it discards
//! constant sequences (§II-A1 *sequence filtering*), fits one
//! [`Alphabet`](crate::Alphabet) and one [`Vocab`](crate::Vocab) per
//! surviving sensor, and can then encode any sample range of the same traces
//! into [`SentenceSet`]s. Because every sensor shares the same
//! [`WindowConfig`] and sample range, sentence `k` of sensor `i` covers the
//! same wall-clock window as sentence `k` of sensor `j` — this alignment is
//! what turns simultaneous sensor sentences into translation pairs.

use crate::encrypt::{is_constant, Alphabet};
use crate::error::LangError;
use crate::vocab::Vocab;
use crate::window::{self, WindowConfig};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A named raw discrete event sequence, one record per sample tick.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawTrace {
    /// Sensor name (e.g. `"s4"` or a SMART attribute id).
    pub name: String,
    /// Categorical records, evenly sampled.
    pub events: Vec<String>,
}

impl RawTrace {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, events: Vec<String>) -> Self {
        Self {
            name: name.into(),
            events,
        }
    }
}

/// The fitted language of one sensor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SensorLanguage {
    /// Sensor name copied from the trace.
    pub name: String,
    /// Index of this sensor in the original trace array (pre-filtering).
    pub source_index: usize,
    /// Letter mapping fitted on training data.
    pub alphabet: Alphabet,
    /// Word vocabulary fitted on training data.
    pub vocab: Vocab,
}

/// Sentences of one sensor over one sample range, encoded as word ids.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SentenceSet {
    /// Encoded sentences (each `sent_len` word ids).
    pub sentences: Vec<Vec<u32>>,
    /// Character offset (within the encoded range) where each sentence starts.
    pub starts: Vec<usize>,
}

impl SentenceSet {
    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// Whether the set contains no sentences.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// Approximate heap footprint in bytes (word ids plus per-sentence and
    /// per-start vector headers). Sharded sweeps use this to verify that
    /// streamed per-shard corpora stay bounded by the shard, not the fleet.
    pub fn approx_bytes(&self) -> usize {
        let words: usize = self.sentences.iter().map(Vec::len).sum();
        words * std::mem::size_of::<u32>()
            + self.sentences.len() * std::mem::size_of::<Vec<u32>>()
            + self.starts.len() * std::mem::size_of::<usize>()
    }
}

/// A fitted multivariate language pipeline: fit on a training range, then
/// encode any sample range of the same traces into aligned sentence sets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LanguagePipeline {
    cfg: WindowConfig,
    languages: Vec<SensorLanguage>,
}

impl LanguagePipeline {
    /// Fits the pipeline on `traces[*].events[train.clone()]`.
    ///
    /// Constant training sequences are discarded, mirroring the paper;
    /// discarded sensors are not used during online testing either.
    ///
    /// # Errors
    ///
    /// Returns an error if the window config is invalid, `traces` is empty,
    /// the range is out of bounds or too short for a single sentence, or
    /// every sequence is constant.
    pub fn fit(
        traces: &[RawTrace],
        train: Range<usize>,
        cfg: WindowConfig,
    ) -> Result<Self, LangError> {
        cfg.validate()?;
        if traces.is_empty() {
            return Err(LangError::EmptyInput);
        }
        let len = train.end - train.start;
        if len < cfg.min_samples() {
            return Err(LangError::SegmentTooShort {
                available: len,
                required: cfg.min_samples(),
            });
        }
        let mut languages = Vec::new();
        for (idx, trace) in traces.iter().enumerate() {
            if train.end > trace.events.len() {
                return Err(LangError::RangeOutOfBounds {
                    end: train.end,
                    len: trace.events.len(),
                });
            }
            let segment = &trace.events[train.clone()];
            if is_constant(segment) {
                continue;
            }
            let alphabet = Alphabet::fit(segment)?;
            let encoded = alphabet.encode(segment);
            let word_list = window::words(&encoded, &cfg);
            let vocab = Vocab::fit(word_list.iter().copied());
            languages.push(SensorLanguage {
                name: trace.name.clone(),
                source_index: idx,
                alphabet,
                vocab,
            });
        }
        if languages.is_empty() {
            return Err(LangError::AllSequencesConstant);
        }
        Ok(Self { cfg, languages })
    }

    /// The window configuration used throughout.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// The fitted per-sensor languages (filtered sensors omitted).
    pub fn languages(&self) -> &[SensorLanguage] {
        &self.languages
    }

    /// Number of surviving sensors.
    pub fn sensor_count(&self) -> usize {
        self.languages.len()
    }

    /// Looks up a surviving sensor by name.
    pub fn sensor_by_name(&self, name: &str) -> Option<usize> {
        self.languages.iter().position(|l| l.name == name)
    }

    /// Encodes `traces[*].events[range.clone()]` into one [`SentenceSet`] per
    /// surviving sensor, aligned across sensors. Unknown records and unseen
    /// words become `<unk>`.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is out of bounds for any trace or too
    /// short for a single sentence.
    pub fn encode_segment(
        &self,
        traces: &[RawTrace],
        range: Range<usize>,
    ) -> Result<Vec<SentenceSet>, LangError> {
        let len = range.end.saturating_sub(range.start);
        if len < self.cfg.min_samples() {
            return Err(LangError::SegmentTooShort {
                available: len,
                required: self.cfg.min_samples(),
            });
        }
        let mut out = Vec::with_capacity(self.languages.len());
        for sensor in 0..self.languages.len() {
            out.push(self.encode_one(traces, range.clone(), sensor)?);
        }
        Ok(out)
    }

    /// Encodes `traces[*].events[range.clone()]` for a *single* surviving
    /// sensor (an index into [`LanguagePipeline::languages`]). Produces
    /// exactly the [`SentenceSet`] that [`LanguagePipeline::encode_segment`]
    /// would place at `sensor`, without materializing the other sensors —
    /// the building block for sharded sweeps whose memory must stay bounded
    /// by the shard's sensor set, not the fleet.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is out of bounds for the sensor's trace
    /// or too short for a single sentence.
    ///
    /// # Panics
    ///
    /// Panics if `sensor` is not a surviving-sensor index.
    pub fn encode_sensor_segment(
        &self,
        traces: &[RawTrace],
        range: Range<usize>,
        sensor: usize,
    ) -> Result<SentenceSet, LangError> {
        assert!(
            sensor < self.languages.len(),
            "sensor index {sensor} outside the {} surviving languages",
            self.languages.len()
        );
        let len = range.end.saturating_sub(range.start);
        if len < self.cfg.min_samples() {
            return Err(LangError::SegmentTooShort {
                available: len,
                required: self.cfg.min_samples(),
            });
        }
        self.encode_one(traces, range, sensor)
    }

    /// Shared per-sensor encoding body; bounds on `sensor` and the minimum
    /// segment length are the caller's responsibility.
    fn encode_one(
        &self,
        traces: &[RawTrace],
        range: Range<usize>,
        sensor: usize,
    ) -> Result<SentenceSet, LangError> {
        let lang = &self.languages[sensor];
        let trace = &traces[lang.source_index];
        if range.end > trace.events.len() {
            return Err(LangError::RangeOutOfBounds {
                end: range.end,
                len: trace.events.len(),
            });
        }
        let segment = &trace.events[range];
        let encoded = lang.alphabet.encode(segment);
        let word_ids: Vec<u32> = window::words(&encoded, &self.cfg)
            .iter()
            .map(|w| lang.vocab.encode(w))
            .collect();
        let sentences = window::sentences(&word_ids, &self.cfg);
        let starts = (0..sentences.len())
            .map(|s| self.cfg.sentence_start(s))
            .collect();
        Ok(SentenceSet { sentences, starts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggling(name: &str, n: usize, period: usize) -> RawTrace {
        let events = (0..n)
            .map(|t| {
                if (t / period).is_multiple_of(2) {
                    "on"
                } else {
                    "off"
                }
                .to_owned()
            })
            .collect();
        RawTrace::new(name, events)
    }

    fn small_cfg() -> WindowConfig {
        WindowConfig {
            word_len: 3,
            word_stride: 1,
            sent_len: 4,
            sent_stride: 4,
        }
    }

    #[test]
    fn fit_discards_constant_sensors() {
        let traces = vec![
            toggling("a", 100, 5),
            RawTrace::new("flat", vec!["x".to_owned(); 100]),
            toggling("b", 100, 7),
        ];
        let p = LanguagePipeline::fit(&traces, 0..100, small_cfg()).expect("fit");
        assert_eq!(p.sensor_count(), 2);
        assert_eq!(p.languages()[0].name, "a");
        assert_eq!(p.languages()[1].name, "b");
        assert_eq!(p.languages()[1].source_index, 2);
        assert!(p.sensor_by_name("flat").is_none());
    }

    #[test]
    fn sentence_sets_are_aligned_across_sensors() {
        let traces = vec![toggling("a", 120, 3), toggling("b", 120, 4)];
        let p = LanguagePipeline::fit(&traces, 0..60, small_cfg()).expect("fit");
        let sets = p.encode_segment(&traces, 60..120).expect("encode");
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].len(), sets[1].len());
        assert_eq!(sets[0].starts, sets[1].starts);
    }

    #[test]
    fn sentences_have_configured_length() {
        let traces = vec![toggling("a", 200, 3)];
        let cfg = small_cfg();
        let p = LanguagePipeline::fit(&traces, 0..100, cfg).expect("fit");
        let sets = p.encode_segment(&traces, 100..200).expect("encode");
        for s in &sets[0].sentences {
            assert_eq!(s.len(), cfg.sent_len);
        }
    }

    #[test]
    fn per_sensor_encoding_matches_full_segment() {
        let traces = vec![
            toggling("a", 120, 3),
            RawTrace::new("flat", vec!["x".to_owned(); 120]),
            toggling("b", 120, 4),
        ];
        let p = LanguagePipeline::fit(&traces, 0..60, small_cfg()).expect("fit");
        let all = p.encode_segment(&traces, 60..120).expect("encode");
        for (sensor, full) in all.iter().enumerate() {
            let one = p
                .encode_sensor_segment(&traces, 60..120, sensor)
                .expect("encode one");
            assert_eq!(one, *full);
            assert!(one.approx_bytes() > 0);
        }
        assert!(matches!(
            p.encode_sensor_segment(&traces, 60..62, 0),
            Err(LangError::SegmentTooShort { .. })
        ));
    }

    #[test]
    fn unseen_state_becomes_unk() {
        let mut trace = toggling("a", 120, 3);
        // Inject a brand-new state in the test half.
        for t in 80..90 {
            trace.events[t] = "meltdown".to_owned();
        }
        let traces = vec![trace, toggling("b", 120, 4)];
        let p = LanguagePipeline::fit(&traces, 0..60, small_cfg()).expect("fit");
        let sets = p.encode_segment(&traces, 60..120).expect("encode");
        let has_unk = sets[0].sentences.iter().flatten().any(|&w| w == Vocab::UNK);
        assert!(has_unk, "novel state should surface as <unk>");
    }

    #[test]
    fn all_constant_is_an_error() {
        let traces = vec![RawTrace::new("flat", vec!["x".to_owned(); 100])];
        assert_eq!(
            LanguagePipeline::fit(&traces, 0..100, small_cfg()).unwrap_err(),
            LangError::AllSequencesConstant
        );
    }

    #[test]
    fn out_of_bounds_range_is_an_error() {
        let traces = vec![toggling("a", 50, 3)];
        assert!(matches!(
            LanguagePipeline::fit(&traces, 0..80, small_cfg()),
            Err(LangError::RangeOutOfBounds { end: 80, len: 50 })
        ));
    }

    #[test]
    fn short_segment_is_an_error() {
        let traces = vec![toggling("a", 100, 3)];
        let p = LanguagePipeline::fit(&traces, 0..50, small_cfg()).expect("fit");
        assert!(matches!(
            p.encode_segment(&traces, 50..53),
            Err(LangError::SegmentTooShort { .. })
        ));
    }

    #[test]
    fn vocabulary_counts_are_plausible() {
        // A period-3 toggle over 3-letter words can produce at most 6
        // distinct words (cyclic shifts of aab/abb etc.).
        let traces = vec![toggling("a", 300, 3)];
        let p = LanguagePipeline::fit(&traces, 0..300, small_cfg()).expect("fit");
        let vocab = &p.languages()[0].vocab;
        assert!(
            vocab.word_count() <= 6,
            "vocab too large: {}",
            vocab.word_count()
        );
        assert!(vocab.word_count() >= 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn encode_never_panics_and_counts_match(
                seed in 0u64..1000, n in 60usize..200) {
                // Deterministic pseudo-random binary trace from the seed.
                let events: Vec<String> = (0..n)
                    .map(|t| {
                        let x = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((t as u64).wrapping_mul(1442695040888963407));
                        if (x >> 33) & 1 == 0 { "0".to_owned() } else { "1".to_owned() }
                    })
                    .collect();
                let traces = vec![RawTrace::new("s", events)];
                let cfg = small_cfg();
                let half = n / 2;
                if let Ok(p) = LanguagePipeline::fit(&traces, 0..half, cfg) {
                    let sets = p.encode_segment(&traces, half..n).expect("encode");
                    let chars = n - half;
                    prop_assert_eq!(sets[0].len(), cfg.sentence_count(chars));
                }
            }
        }
    }
}
