//! Corpus diagnostics: sentence counts, out-of-vocabulary rates and word
//! frequency summaries.
//!
//! At test time, unseen system states and unseen words surface as `<unk>`
//! tokens; an elevated OOV rate is itself an anomaly indicator, and the
//! paper's Fig. 3(b) vocabulary-size discussion is reproduced from the
//! summaries here.

use crate::corpus::SentenceSet;
use crate::vocab::Vocab;
use serde::{Deserialize, Serialize};

/// Summary statistics of one sensor's encoded sentence set.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of sentences.
    pub sentences: usize,
    /// Total word tokens.
    pub tokens: usize,
    /// Distinct word ids observed (including reserved ids if present).
    pub distinct_words: usize,
    /// Fraction of tokens that are `<unk>`.
    pub oov_rate: f64,
    /// Fraction of sentences containing at least one `<unk>`.
    pub oov_sentence_rate: f64,
}

/// Computes [`CorpusStats`] for one sentence set.
pub fn corpus_stats(set: &SentenceSet) -> CorpusStats {
    let mut tokens = 0usize;
    let mut unk = 0usize;
    let mut oov_sentences = 0usize;
    let mut seen = std::collections::HashSet::new();
    for sentence in &set.sentences {
        let mut has_unk = false;
        for &w in sentence {
            tokens += 1;
            seen.insert(w);
            if w == Vocab::UNK {
                unk += 1;
                has_unk = true;
            }
        }
        if has_unk {
            oov_sentences += 1;
        }
    }
    CorpusStats {
        sentences: set.sentences.len(),
        tokens,
        distinct_words: seen.len(),
        oov_rate: if tokens == 0 {
            0.0
        } else {
            unk as f64 / tokens as f64
        },
        oov_sentence_rate: if set.sentences.is_empty() {
            0.0
        } else {
            oov_sentences as f64 / set.sentences.len() as f64
        },
    }
}

/// Computes stats per sensor for a full aligned corpus.
pub fn all_corpus_stats(sets: &[SentenceSet]) -> Vec<CorpusStats> {
    sets.iter().map(corpus_stats).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(sentences: Vec<Vec<u32>>) -> SentenceSet {
        let starts = (0..sentences.len()).collect();
        SentenceSet { sentences, starts }
    }

    #[test]
    fn counts_tokens_and_oov() {
        let s = set(vec![vec![2, 3, 0], vec![2, 2, 2]]);
        let stats = corpus_stats(&s);
        assert_eq!(stats.sentences, 2);
        assert_eq!(stats.tokens, 6);
        assert_eq!(stats.distinct_words, 3);
        assert!((stats.oov_rate - 1.0 / 6.0).abs() < 1e-12);
        assert!((stats.oov_sentence_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clean_corpus_has_zero_oov() {
        let s = set(vec![vec![2, 3], vec![4, 5]]);
        let stats = corpus_stats(&s);
        assert_eq!(stats.oov_rate, 0.0);
        assert_eq!(stats.oov_sentence_rate, 0.0);
    }

    #[test]
    fn empty_set_is_all_zero() {
        let stats = corpus_stats(&set(vec![]));
        assert_eq!(stats, CorpusStats::default());
    }

    #[test]
    fn per_sensor_batch() {
        let sets = vec![set(vec![vec![0, 0]]), set(vec![vec![2, 3]])];
        let all = all_corpus_stats(&sets);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].oov_rate, 1.0);
        assert_eq!(all[1].oov_rate, 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn rates_are_bounded(sentences in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 1..8), 0..12)) {
                let stats = corpus_stats(&set(sentences));
                prop_assert!((0.0..=1.0).contains(&stats.oov_rate));
                prop_assert!((0.0..=1.0).contains(&stats.oov_sentence_rate));
                prop_assert!(stats.distinct_words <= stats.tokens.max(1));
            }
        }
    }
}
