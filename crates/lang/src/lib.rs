//! `mdes-lang` — the sensor-language pipeline of the `mdes` framework.
//!
//! Implements §II-A of the paper: multivariate discrete event sequences are
//! turned into per-sensor "languages" by
//!
//! 1. **sequence filtering** — constant sequences are discarded,
//! 2. **discrete event encryption** — each distinct record becomes a letter
//!    ([`Alphabet`]),
//! 3. **word generation** — letters are grouped into fixed-length words by a
//!    sliding window ([`window`]), with word ids assigned by a [`Vocab`],
//! 4. **sentence generation** — words are grouped into fixed-length
//!    sentences, each covering a known time window.
//!
//! The [`LanguagePipeline`] orchestrates all four steps and guarantees that
//! sentence `k` is time-aligned across sensors, which is what makes
//! simultaneous sentences usable as translation pairs.
//!
//! For continuous telemetry (the HDD case study, §IV-C), [`discretize`]
//! converts features to categorical records first.
//!
//! # Example
//!
//! ```
//! use mdes_lang::{LanguagePipeline, RawTrace, WindowConfig};
//!
//! # fn main() -> Result<(), mdes_lang::LangError> {
//! let trace = RawTrace::new(
//!     "valve",
//!     (0..60).map(|t| if t % 6 < 3 { "open" } else { "closed" }.to_owned()).collect(),
//! );
//! let cfg = WindowConfig { word_len: 3, word_stride: 1, sent_len: 4, sent_stride: 4 };
//! let pipeline = LanguagePipeline::fit(&[trace.clone()], 0..30, cfg)?;
//! let sentences = pipeline.encode_segment(&[trace], 30..60)?;
//! assert!(!sentences[0].is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod corpus;
pub mod dedup;
pub mod discretize;
mod encrypt;
mod error;
pub mod resample;
pub mod stats;
mod vocab;
pub mod window;

pub use corpus::{LanguagePipeline, RawTrace, SensorLanguage, SentenceSet};
pub use dedup::{dedupe_sensors, representative_traces, DedupResult};
pub use encrypt::{is_constant, Alphabet, MISSING_RECORD};
pub use error::LangError;
pub use resample::{resample, resample_all, Event};
pub use stats::{all_corpus_stats, corpus_stats, CorpusStats};
pub use vocab::Vocab;
pub use window::WindowConfig;
