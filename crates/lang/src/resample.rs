//! Resampling irregular event logs onto the even grid the framework needs.
//!
//! The paper assumes "the sensor output is evenly sampled" (§II-A). Real
//! controllers usually log *state changes* with timestamps instead; this
//! module converts such change logs into evenly-sampled [`RawTrace`]s via
//! last-observation-carried-forward.

use crate::error::LangError;
use crate::RawTrace;
use serde::{Deserialize, Serialize};

/// A timestamped state-change record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Event time (arbitrary integer units, e.g. epoch seconds).
    pub time: u64,
    /// The state the sensor switched to.
    pub state: String,
}

impl Event {
    /// Convenience constructor.
    pub fn new(time: u64, state: impl Into<String>) -> Self {
        Self {
            time,
            state: state.into(),
        }
    }
}

/// Resamples a change log onto an even grid covering `[start, end)` with
/// the given `period`, holding the last observed state between changes
/// (LOCF). Samples before the first event take the first event's state.
///
/// # Errors
///
/// Returns [`LangError::EmptyInput`] when `events` is empty or the grid is
/// empty, and [`LangError::ZeroWindowParameter`] when `period` is zero.
/// Events must be sorted by time; out-of-order input is an error
/// ([`LangError::RangeOutOfBounds`] with the offending position).
pub fn resample(
    name: &str,
    events: &[Event],
    start: u64,
    end: u64,
    period: u64,
) -> Result<RawTrace, LangError> {
    if period == 0 {
        return Err(LangError::ZeroWindowParameter);
    }
    if events.is_empty() || end <= start {
        return Err(LangError::EmptyInput);
    }
    for (i, w) in events.windows(2).enumerate() {
        if w[1].time < w[0].time {
            return Err(LangError::RangeOutOfBounds {
                end: i + 1,
                len: events.len(),
            });
        }
    }
    let mut out = Vec::with_capacity(((end - start) / period) as usize);
    let mut idx = 0usize;
    let mut current = events[0].state.as_str();
    let mut t = start;
    while t < end {
        while idx < events.len() && events[idx].time <= t {
            current = events[idx].state.as_str();
            idx += 1;
        }
        out.push(current.to_owned());
        t += period;
    }
    Ok(RawTrace::new(name, out))
}

/// Resamples several change logs onto one shared grid (the intersection
/// grid every sensor can serve), producing aligned [`RawTrace`]s.
///
/// # Errors
///
/// Propagates per-sensor errors from [`resample`].
pub fn resample_all(
    logs: &[(String, Vec<Event>)],
    start: u64,
    end: u64,
    period: u64,
) -> Result<Vec<RawTrace>, LangError> {
    logs.iter()
        .map(|(name, events)| resample(name, events, start, end, period))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_last_observation() {
        let events = vec![
            Event::new(0, "off"),
            Event::new(25, "on"),
            Event::new(40, "off"),
        ];
        let trace = resample("s", &events, 0, 60, 10).expect("resample");
        assert_eq!(trace.events, vec!["off", "off", "off", "on", "off", "off"]);
    }

    #[test]
    fn samples_before_first_event_use_first_state() {
        let events = vec![Event::new(35, "on")];
        let trace = resample("s", &events, 0, 40, 10).expect("resample");
        assert_eq!(trace.events, vec!["on", "on", "on", "on"]);
    }

    #[test]
    fn grid_length_matches_span() {
        let events = vec![Event::new(0, "x")];
        let trace = resample("s", &events, 100, 160, 15).expect("resample");
        assert_eq!(trace.events.len(), 4);
    }

    #[test]
    fn event_exactly_on_grid_takes_effect_at_that_sample() {
        let events = vec![Event::new(0, "a"), Event::new(10, "b")];
        let trace = resample("s", &events, 0, 30, 10).expect("resample");
        assert_eq!(trace.events, vec!["a", "b", "b"]);
    }

    #[test]
    fn rejects_bad_inputs() {
        let ev = vec![Event::new(0, "x")];
        assert_eq!(
            resample("s", &ev, 0, 10, 0),
            Err(LangError::ZeroWindowParameter)
        );
        assert_eq!(resample("s", &[], 0, 10, 1), Err(LangError::EmptyInput));
        assert_eq!(resample("s", &ev, 10, 10, 1), Err(LangError::EmptyInput));
        let unsorted = vec![Event::new(5, "a"), Event::new(1, "b")];
        assert!(matches!(
            resample("s", &unsorted, 0, 10, 1),
            Err(LangError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn resample_all_aligns_sensors() {
        let logs = vec![
            (
                "a".to_owned(),
                vec![Event::new(0, "x"), Event::new(12, "y")],
            ),
            ("b".to_owned(), vec![Event::new(3, "p")]),
        ];
        let traces = resample_all(&logs, 0, 30, 5).expect("resample all");
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].events.len(), traces[1].events.len());
        assert_eq!(traces[0].name, "a");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn output_length_is_grid_size(
                times in proptest::collection::vec(0u64..500, 1..20),
                period in 1u64..50,
                span in 1u64..300,
            ) {
                let mut times = times;
                times.sort_unstable();
                let events: Vec<Event> =
                    times.iter().map(|&t| Event::new(t, format!("s{}", t % 3))).collect();
                let trace = resample("s", &events, 0, span, period).expect("resample");
                prop_assert_eq!(trace.events.len() as u64, span.div_ceil(period));
            }

            #[test]
            fn every_sample_is_a_known_state(
                times in proptest::collection::vec(0u64..100, 1..10),
            ) {
                let mut times = times;
                times.sort_unstable();
                let events: Vec<Event> =
                    times.iter().map(|&t| Event::new(t, format!("s{}", t % 2))).collect();
                let trace = resample("s", &events, 0, 120, 7).expect("resample");
                let states: std::collections::HashSet<&str> =
                    events.iter().map(|e| e.state.as_str()).collect();
                for s in &trace.events {
                    prop_assert!(states.contains(s.as_str()));
                }
            }
        }
    }
}
