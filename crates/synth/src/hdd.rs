//! Synthetic HDD SMART telemetry in the style of the Backblaze dataset
//! (§IV of the paper).
//!
//! Each drive reports 20 SMART-like attributes once per day. A sampled
//! subset of drives fails: in the two weeks before failure their
//! error-related attributes (5, 187, 188, 197, 198 — exactly the features
//! the paper's Table III surfaces) escalate, while activity counters and
//! temperature stay on their normal trajectories. A failed drive's series
//! ends on its failure day, mirroring Backblaze semantics where a drive is
//! removed from production the day after it is marked failed.

use mdes_lang::discretize::{first_difference, is_cumulative, Scheme};
use mdes_lang::RawTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the HDD fleet simulator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HddConfig {
    /// Number of drives in the fleet.
    pub n_drives: usize,
    /// Days of telemetry per (healthy) drive.
    pub days: usize,
    /// Fraction of drives that fail within the horizon.
    pub failure_fraction: f64,
    /// Days before failure when degradation begins.
    pub degradation_window: usize,
    /// Fraction of failures that are *sudden*: no degradation precursor
    /// beyond the final two days. These are the drives the framework (and
    /// Fig. 12b of the paper) cannot detect ahead of time.
    pub sudden_fraction: f64,
    /// Fraction of failures that are *instant*: electronics death with no
    /// telemetry signature at all — even supervised models miss these.
    pub instant_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HddConfig {
    fn default() -> Self {
        Self {
            n_drives: 48,
            days: 120,
            failure_fraction: 0.5,
            degradation_window: 20,
            sudden_fraction: 0.3,
            instant_fraction: 0.2,
            seed: 7,
        }
    }
}

/// Telemetry of one drive.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriveRecord {
    /// Serial number (`Z000`, `Z001`, …).
    pub serial: String,
    /// Whether the drive fails within the horizon.
    pub failed: bool,
    /// 0-based index of the failure day (the drive's last day), if any.
    pub failure_day: Option<usize>,
    /// `features[f][d]` = value of feature `f` on day `d`. All features have
    /// the same number of days; failed drives stop at `failure_day`.
    pub features: Vec<Vec<f64>>,
}

impl DriveRecord {
    /// Number of telemetry days recorded.
    pub fn days(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }
}

/// The generated fleet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HddData {
    /// Configuration used.
    pub config: HddConfig,
    /// Per-drive telemetry.
    pub drives: Vec<DriveRecord>,
    /// SMART attribute names, aligned with `DriveRecord::features`.
    pub feature_names: Vec<String>,
    /// Whether each feature is a cumulative lifetime counter (candidates for
    /// first-order differencing, §IV-B).
    pub cumulative: Vec<bool>,
}

/// Names of the 20 raw SMART-like features generated.
pub const FEATURE_NAMES: [&str; 20] = [
    "smart_1_read_error_rate",
    "smart_3_spin_up_time",
    "smart_4_start_stop_count",
    "smart_5_reallocated_sectors",
    "smart_7_seek_error_rate",
    "smart_9_power_on_hours",
    "smart_10_spin_retry_count",
    "smart_11_calibration_retry",
    "smart_12_power_cycle_count",
    "smart_187_reported_uncorrectable",
    "smart_188_command_timeout",
    "smart_192_power_off_retract",
    "smart_193_load_cycle_count",
    "smart_194_temperature",
    "smart_197_pending_sectors",
    "smart_198_offline_uncorrectable",
    "smart_199_udma_crc_errors",
    "smart_240_head_flying_hours",
    "smart_241_lbas_written",
    "smart_242_lbas_read",
];

/// Indices (into [`FEATURE_NAMES`]) of the error features that genuinely
/// predict failure — the ground truth that knowledge discovery should
/// recover (paper Table III).
pub const ERROR_FEATURES: [usize; 6] = [3, 9, 10, 11, 14, 15];

/// Which features are cumulative lifetime counters.
pub const CUMULATIVE: [bool; 20] = [
    false, false, true, true, false, true, true, true, true, true, true, true, true, false, false,
    false, true, true, true, true,
];

/// Generates a fleet of drives.
///
/// # Panics
///
/// Panics if the configuration has zero drives/days or a degradation window
/// of zero.
pub fn generate(cfg: &HddConfig) -> HddData {
    assert!(
        cfg.n_drives > 0 && cfg.days > 0 && cfg.degradation_window > 0,
        "hdd configuration dimensions must be positive"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut drives = Vec::with_capacity(cfg.n_drives);
    for d in 0..cfg.n_drives {
        let fails = rng.gen::<f64>() < cfg.failure_fraction;
        let failure_day = if fails {
            // Fail somewhere in the second half of the horizon so every
            // drive has a training prefix.
            Some(rng.gen_range(cfg.days / 2..cfg.days))
        } else {
            None
        };
        let days = failure_day.map_or(cfg.days, |f| f + 1);
        let window = if !fails {
            cfg.degradation_window
        } else {
            let r = rng.gen::<f64>();
            if r < cfg.instant_fraction {
                0
            } else if r < cfg.instant_fraction + cfg.sudden_fraction {
                2
            } else {
                cfg.degradation_window
            }
        };
        drives.push(simulate_drive(d, days, failure_day, window, &mut rng));
    }
    HddData {
        config: cfg.clone(),
        drives,
        feature_names: FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
        cumulative: CUMULATIVE.to_vec(),
    }
}

fn simulate_drive(
    idx: usize,
    days: usize,
    failure_day: Option<usize>,
    degradation_window: usize,
    rng: &mut StdRng,
) -> DriveRecord {
    let n_feat = FEATURE_NAMES.len();
    let mut features = vec![Vec::with_capacity(days); n_feat];
    // Per-drive personality.
    let daily_hours = 24.0;
    let write_rate = rng.gen_range(5e6..5e7);
    let read_rate = rng.gen_range(1e7..9e7);
    let base_temp = rng.gen_range(24.0..32.0);
    let temp_freq = rng.gen_range(0.02..0.10);
    let temp_phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let load_rate = rng.gen_range(5.0..40.0);

    // Cumulative state.
    let mut cum = vec![0.0f64; n_feat];
    cum[5] = rng.gen_range(1000.0..20_000.0); // power-on hours head start
    cum[2] = rng.gen_range(5.0..50.0); // start/stop
    cum[8] = cum[2]; // power cycles track start/stop
    let mut pending = 0.0f64;

    for day in 0..days {
        // How deep into the degradation window are we? 0 = healthy.
        // A zero window means an instant failure with no signature.
        let sev = match failure_day {
            Some(f) if degradation_window > 0 && day + degradation_window >= f => {
                let into = day + degradation_window - f;
                (degradation_window as f64 - into as f64).max(0.0) / degradation_window as f64
            }
            _ => 0.0,
        };
        // sev runs 0 -> 1 approaching failure.
        let sev = if degradation_window > 0
            && failure_day.is_some_and(|f| day + degradation_window >= f)
        {
            1.0 - sev
        } else {
            0.0
        };

        // Error processes: rare blips normally, escalating before failure.
        let err_rate = 0.03 + 8.0 * sev * sev;
        cum[3] += poisson_like(err_rate * 1.2, rng); // reallocated
        cum[9] += poisson_like(err_rate * 0.75, rng); // reported uncorrectable
        cum[10] += poisson_like(err_rate * 0.5, rng); // command timeout
        cum[16] += poisson_like(0.008, rng); // CRC errors (not failure-linked)
        cum[11] += poisson_like(0.022 + 3.0 * sev, rng); // power-off retract
        pending = (pending + poisson_like(err_rate * 1.2, rng) - poisson_like(0.05, rng)).max(0.0);

        // Activity counters.
        cum[5] += daily_hours;
        cum[17] += daily_hours * rng.gen_range(0.8..1.0);
        cum[18] += write_rate * rng.gen_range(0.5..1.5);
        cum[19] += read_rate * rng.gen_range(0.5..1.5);
        cum[12] += load_rate * rng.gen_range(0.5..1.5);
        if rng.gen::<f64>() < 0.005 {
            cum[2] += 1.0;
            cum[8] += 1.0;
        }

        features[0].push(rng.gen_range(0.0..2e8) * (1.0 + sev)); // read error rate (noisy)
        features[1].push(415.0 + rng.gen_range(-2.0..2.0)); // spin-up (near-constant)
        features[2].push(cum[2]);
        features[3].push(cum[3]);
        features[4].push(rng.gen_range(0.0..9e7)); // seek error rate (noisy)
        features[5].push(cum[5]);
        features[6].push(0.0); // spin retry: constant zero
        features[7].push(0.0); // calibration retry: constant zero
        features[8].push(cum[8]);
        features[9].push(cum[9]);
        features[10].push(cum[10]);
        features[11].push(cum[11]);
        features[12].push(cum[12]);
        features[13].push(
            base_temp
                + 4.0 * ((day as f64) * temp_freq + temp_phase).sin()
                + rng.gen_range(-1.0..1.0),
        );
        features[14].push(pending);
        features[15].push((pending * 0.8).round()); // offline uncorrectable trails pending
        features[16].push(cum[16]);
        features[17].push(cum[17]);
        features[18].push(cum[18]);
        features[19].push(cum[19]);
    }
    DriveRecord {
        serial: format!("Z{idx:03}"),
        failed: failure_day.is_some(),
        failure_day,
        features,
    }
}

/// Small-mean integer event count (Poisson-like via thinning).
fn poisson_like(rate: f64, rng: &mut StdRng) -> f64 {
    let mut count = 0.0;
    let mut remaining = rate;
    while remaining > 0.0 {
        if rng.gen::<f64>() < remaining.min(1.0) {
            count += 1.0;
        }
        remaining -= 1.0;
    }
    count
}

impl HddData {
    /// Flattens the fleet into a drive-day tabular dataset for the baseline
    /// models: 20 raw features plus first-order differences of the
    /// cumulative ones (34 columns, as in §IV-B). The label is `1` on a
    /// failed drive's final day, else `0`.
    ///
    /// Returns `(rows, labels, column_names)`.
    pub fn to_tabular(&self) -> (Vec<Vec<f64>>, Vec<usize>, Vec<String>) {
        let mut names: Vec<String> = self.feature_names.clone();
        let diffed: Vec<usize> = (0..self.cumulative.len())
            .filter(|&f| self.cumulative[f])
            .collect();
        for &f in &diffed {
            names.push(format!("{}_delta", self.feature_names[f]));
        }
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for drive in &self.drives {
            let days = drive.days();
            let deltas: Vec<Vec<f64>> = diffed
                .iter()
                .map(|&f| first_difference(&drive.features[f]))
                .collect();
            for day in 0..days {
                let mut row: Vec<f64> = drive.features.iter().map(|f| f[day]).collect();
                row.extend(deltas.iter().map(|d| d[day]));
                rows.push(row);
                labels.push(usize::from(drive.failure_day == Some(day)));
            }
        }
        (rows, labels, names)
    }

    /// Like [`HddData::to_tabular`] but labels the final `horizon` days of
    /// every failed drive positive — the *failure prediction window* used by
    /// the supervised-baseline literature the paper builds on (Mahdisoltani
    /// et al., ATC'17), where single failure-day labels are too sparse.
    pub fn to_tabular_windowed(&self, horizon: usize) -> (Vec<Vec<f64>>, Vec<usize>, Vec<String>) {
        let (rows, mut labels, names) = self.to_tabular();
        let mut offset = 0;
        for drive in &self.drives {
            let days = drive.days();
            if drive.failed {
                for d in days.saturating_sub(horizon)..days {
                    labels[offset + d] = 1;
                }
            }
            offset += days;
        }
        (rows, labels, names)
    }

    /// Drives with at least `min_days` days of telemetry (the paper keeps
    /// drives with 10+ months of data).
    pub fn drives_with_min_days(&self, min_days: usize) -> Vec<usize> {
        (0..self.drives.len())
            .filter(|&d| self.drives[d].days() >= min_days)
            .collect()
    }

    /// Fits one discretization scheme per feature on the *pooled* training
    /// windows of several drives (the paper aggregates data across all disks
    /// to stabilize discretization and acquire more anomalies, §IV-C).
    ///
    /// For each listed drive, the first `fit_days` days (clamped to its
    /// telemetry length) contribute to the pool; cumulative features are
    /// differenced first. Returns `None` for features that are constant over
    /// the pool (they carry no information and are dropped, as in §IV-C).
    ///
    /// # Panics
    ///
    /// Panics if `drives` is empty, an index is out of bounds, or
    /// `fit_days` is zero.
    pub fn pooled_schemes(&self, drives: &[usize], fit_days: usize) -> Vec<Option<Scheme>> {
        assert!(!drives.is_empty(), "need at least one drive to fit schemes");
        assert!(fit_days > 0, "fit_days must be positive");
        (0..self.feature_names.len())
            .map(|f| {
                let mut pool = Vec::new();
                for &d in drives {
                    let rec = &self.drives[d];
                    let series: Vec<f64> = if self.cumulative[f] && is_cumulative(&rec.features[f])
                    {
                        first_difference(&rec.features[f])
                    } else {
                        rec.features[f].clone()
                    };
                    let take = fit_days.min(series.len());
                    pool.extend_from_slice(&series[..take]);
                }
                let lo = pool.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = pool.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if hi - lo < 1e-12 {
                    None
                } else {
                    Some(Scheme::fit_default(&pool))
                }
            })
            .collect()
    }

    /// Converts one drive's telemetry into discrete traces using externally
    /// fitted per-feature schemes (see [`HddData::pooled_schemes`]); `None`
    /// schemes are skipped. All drives processed with the same scheme vector
    /// share an identical feature set and ordering.
    pub fn drive_traces_with_schemes(
        &self,
        drive: usize,
        schemes: &[Option<Scheme>],
    ) -> Vec<RawTrace> {
        let rec = &self.drives[drive];
        let mut traces = Vec::new();
        for (f, scheme) in schemes.iter().enumerate() {
            let Some(scheme) = scheme else { continue };
            let series: Vec<f64> = if self.cumulative[f] && is_cumulative(&rec.features[f]) {
                first_difference(&rec.features[f])
            } else {
                rec.features[f].clone()
            };
            traces.push(RawTrace::new(
                self.feature_names[f].clone(),
                scheme.apply_all(&series),
            ));
        }
        traces
    }

    /// Converts one drive's telemetry into discrete event traces using
    /// per-feature schemes fitted on `fit_days` (cumulative features are
    /// differenced first). Near-constant features (cardinality 1 on the fit
    /// window) are dropped, mirroring §IV-C.
    ///
    /// # Panics
    ///
    /// Panics if `fit_days` is zero or exceeds the drive's telemetry.
    pub fn drive_traces(&self, drive: usize, fit_days: usize) -> Vec<RawTrace> {
        let rec = &self.drives[drive];
        assert!(
            fit_days > 0 && fit_days <= rec.days(),
            "fit_days {fit_days} outside 1..={}",
            rec.days()
        );
        let mut traces = Vec::new();
        for (f, series) in rec.features.iter().enumerate() {
            let series: Vec<f64> = if self.cumulative[f] && is_cumulative(series) {
                first_difference(series)
            } else {
                series.clone()
            };
            let fit = &series[..fit_days];
            let lo = fit.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = fit.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if hi - lo < 1e-12 {
                continue; // constant on the fit window: uninformative
            }
            let scheme = Scheme::fit_default(fit);
            traces.push(RawTrace::new(
                self.feature_names[f].clone(),
                scheme.apply_all(&series),
            ));
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_shape() {
        let cfg = HddConfig {
            n_drives: 10,
            days: 60,
            ..Default::default()
        };
        let data = generate(&cfg);
        assert_eq!(data.drives.len(), 10);
        assert_eq!(data.feature_names.len(), 20);
        for d in &data.drives {
            assert_eq!(d.features.len(), 20);
            match d.failure_day {
                Some(f) => assert_eq!(d.days(), f + 1),
                None => assert_eq!(d.days(), 60),
            }
        }
    }

    #[test]
    fn failure_fraction_respected() {
        let data = generate(&HddConfig {
            n_drives: 100,
            ..Default::default()
        });
        let failed = data.drives.iter().filter(|d| d.failed).count();
        assert!((30..=70).contains(&failed), "failed {failed}/100");
    }

    #[test]
    fn error_counters_escalate_before_failure() {
        let data = generate(&HddConfig::default());
        let failed: Vec<&DriveRecord> = data
            .drives
            .iter()
            .filter(|d| d.failed && d.days() > 40)
            .collect();
        assert!(!failed.is_empty());
        // Mean uncorrectable-error delta in the final week far exceeds the
        // healthy baseline.
        let mut pre = 0.0;
        let mut base = 0.0;
        for d in &failed {
            let errs = first_difference(&d.features[9]);
            let n = errs.len();
            pre += errs[n - 7..].iter().sum::<f64>() / 7.0;
            base += errs[..n - 14].iter().sum::<f64>() / (n - 14) as f64;
        }
        pre /= failed.len() as f64;
        base /= failed.len() as f64;
        assert!(pre > base * 5.0, "pre-failure {pre} vs baseline {base}");
    }

    #[test]
    fn tabular_conversion_shapes_and_labels() {
        let cfg = HddConfig {
            n_drives: 8,
            days: 40,
            ..Default::default()
        };
        let data = generate(&cfg);
        let (rows, labels, names) = data.to_tabular();
        assert_eq!(rows.len(), labels.len());
        assert_eq!(names.len(), 20 + CUMULATIVE.iter().filter(|&&c| c).count());
        assert!(rows.iter().all(|r| r.len() == names.len()));
        let positives = labels.iter().filter(|&&l| l == 1).count();
        let failed = data.drives.iter().filter(|d| d.failed).count();
        assert_eq!(positives, failed, "one positive per failed drive");
    }

    #[test]
    fn drive_traces_drop_constant_features() {
        let data = generate(&HddConfig {
            n_drives: 6,
            days: 80,
            ..Default::default()
        });
        let traces = data.drive_traces(0, 40);
        // Spin retry and calibration retry are constant zero -> dropped.
        assert!(traces.iter().all(|t| t.name != "smart_10_spin_retry_count"));
        assert!(traces
            .iter()
            .all(|t| t.name != "smart_11_calibration_retry"));
        assert!(traces.len() >= 10, "kept {} features", traces.len());
        let days = data.drives[0].days();
        assert!(traces.iter().all(|t| t.events.len() == days));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = HddConfig {
            n_drives: 4,
            days: 30,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn min_days_filter() {
        let data = generate(&HddConfig {
            n_drives: 30,
            days: 100,
            ..Default::default()
        });
        let long = data.drives_with_min_days(100);
        assert!(long
            .iter()
            .all(|&d| !data.drives[d].failed || data.drives[d].days() >= 100));
    }

    #[test]
    fn poisson_like_mean_tracks_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| poisson_like(2.5, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }
}
