//! `mdes-synth` — synthetic workload generators for the `mdes` evaluation.
//!
//! Both datasets used by the paper are unavailable (the physical-plant log
//! is under an NDA; the Backblaze HDD data is an external download), so this
//! crate generates the closest synthetic equivalents, matched to every
//! statistic the paper reports. See `DESIGN.md` §5 for the substitution
//! rationale.
//!
//! * [`plant`] — a componentized plant of per-minute categorical sensors
//!   with injected anomalies on days 21 and 28 (plus precursors);
//! * [`hdd`] — a fleet of drives reporting daily SMART-like attributes, with
//!   error counters escalating before failures.
//!
//! # Example
//!
//! ```
//! use mdes_synth::plant::{generate, PlantConfig};
//!
//! let data = generate(&PlantConfig::small(16, 3));
//! assert_eq!(data.traces.len(), 16);
//! assert_eq!(data.traces[0].events.len(), 3 * 1440);
//! ```

#![warn(missing_docs)]

pub mod faults;
pub mod hdd;
pub mod plant;

pub use faults::{Fault, FaultInjector, FaultKind};
pub use hdd::{HddConfig, HddData};
pub use plant::{PlantConfig, PlantData, SensorKind};
