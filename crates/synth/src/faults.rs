//! Deterministic fault injection for chaos-testing the pipeline.
//!
//! Real deployments lose sensors: packets drop, transducers freeze, buses
//! flip bits. The [`FaultInjector`] applies those failure modes to clean
//! synthetic traces so tests can assert the analytics *degrade* — reduced
//! coverage, raised anomaly scores — instead of panicking. Injection is
//! fully seeded: the same injector over the same traces always yields the
//! same corrupted traces, which keeps chaos tests reproducible.
//!
//! Dropped records are written as [`MISSING_RECORD`] — the same sentinel the
//! online monitor substitutes for a `None` record — so injected traces can
//! be replayed through either the batch or the streaming path.

use mdes_lang::{RawTrace, MISSING_RECORD};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::plant::PlantData;

/// A sensor failure mode.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The sensor delivers no records: every sample in the fault window
    /// becomes [`MISSING_RECORD`].
    Dropout,
    /// The sensor freezes on whatever record it held when the fault began.
    StuckAt,
    /// Each record in the window is independently replaced, with the given
    /// probability, by a garbled string no training alphabet contains.
    Corrupt {
        /// Per-sample replacement probability in `[0, 1]`.
        prob: f64,
    },
    /// Every record in the window is replaced by seeded random noise drawn
    /// from a garbage alphabet — a bursty, total corruption of the channel.
    BurstNoise,
}

/// One injected fault: a failure mode applied to one sensor over a
/// half-open sample range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Index of the affected trace.
    pub sensor: usize,
    /// Failure mode.
    pub kind: FaultKind,
    /// First affected sample index.
    pub start: usize,
    /// One past the last affected sample index.
    pub end: usize,
}

/// A seeded, reproducible applier of [`Fault`]s to raw traces.
///
/// # Example
///
/// ```
/// use mdes_synth::faults::{FaultInjector, FaultKind};
/// use mdes_synth::plant::{generate, PlantConfig};
///
/// let data = generate(&PlantConfig::small(4, 1));
/// let faulty = FaultInjector::new(7)
///     .dropout(0, 100, 200)
///     .corrupt(1, 300, 400, 0.5)
///     .apply(&data.traces);
/// assert_eq!(faulty.len(), data.traces.len());
/// assert_ne!(faulty[0].events[150], data.traces[0].events[150]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultInjector {
    /// Creates an injector with no faults; randomness (for `Corrupt` and
    /// `BurstNoise`) derives deterministically from `seed` and each fault's
    /// position in the list.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds an arbitrary fault (builder style).
    pub fn fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sensor `sensor` delivers nothing for samples `start..end`.
    pub fn dropout(self, sensor: usize, start: usize, end: usize) -> Self {
        self.fault(Fault {
            sensor,
            kind: FaultKind::Dropout,
            start,
            end,
        })
    }

    /// Sensor `sensor` freezes on its `start`-time record for `start..end`.
    pub fn stuck_at(self, sensor: usize, start: usize, end: usize) -> Self {
        self.fault(Fault {
            sensor,
            kind: FaultKind::StuckAt,
            start,
            end,
        })
    }

    /// Each record of `sensor` in `start..end` is garbled with probability
    /// `prob`.
    pub fn corrupt(self, sensor: usize, start: usize, end: usize, prob: f64) -> Self {
        self.fault(Fault {
            sensor,
            kind: FaultKind::Corrupt { prob },
            start,
            end,
        })
    }

    /// Sensor `sensor` emits pure noise for `start..end`.
    pub fn burst_noise(self, sensor: usize, start: usize, end: usize) -> Self {
        self.fault(Fault {
            sensor,
            kind: FaultKind::BurstNoise,
            start,
            end,
        })
    }

    /// The configured faults, in insertion (application) order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Applies every fault to a copy of `traces` (later faults see earlier
    /// faults' effects). Out-of-range sensors or sample windows are clipped,
    /// never a panic — chaos harnesses should not crash on a typo.
    pub fn apply(&self, traces: &[RawTrace]) -> Vec<RawTrace> {
        let mut out: Vec<RawTrace> = traces.to_vec();
        for (f_idx, fault) in self.faults.iter().enumerate() {
            let Some(trace) = out.get_mut(fault.sensor) else {
                continue;
            };
            let len = trace.events.len();
            let start = fault.start.min(len);
            let end = fault.end.min(len);
            if start >= end {
                continue;
            }
            // One RNG per fault, seeded by position: appending a fault never
            // changes what earlier faults injected.
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (f_idx as u64).wrapping_mul(0x9E37_79B9));
            match &fault.kind {
                FaultKind::Dropout => {
                    for e in &mut trace.events[start..end] {
                        *e = MISSING_RECORD.to_owned();
                    }
                }
                FaultKind::StuckAt => {
                    let frozen = trace.events[start].clone();
                    for e in &mut trace.events[start..end] {
                        *e = frozen.clone();
                    }
                }
                FaultKind::Corrupt { prob } => {
                    for e in &mut trace.events[start..end] {
                        if rng.gen::<f64>() < *prob {
                            *e = garbage(&mut rng);
                        }
                    }
                }
                FaultKind::BurstNoise => {
                    for e in &mut trace.events[start..end] {
                        *e = garbage(&mut rng);
                    }
                }
            }
        }
        out
    }

    /// Applies the faults to a plant dataset, returning a copy whose traces
    /// are corrupted (config and ground-truth metadata are untouched).
    pub fn apply_plant(&self, data: &PlantData) -> PlantData {
        PlantData {
            traces: self.apply(&data.traces),
            ..data.clone()
        }
    }
}

/// A garbled record no training alphabet contains (real records never carry
/// the `\u{1a}` marker).
fn garbage(rng: &mut StdRng) -> String {
    format!("\u{1a}garbage{}\u{1a}", rng.gen_range(0u32..1000))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_traces() -> Vec<RawTrace> {
        (0..3)
            .map(|s| {
                RawTrace::new(
                    format!("s{s}"),
                    (0..100)
                        .map(|t| if (t + s) % 4 < 2 { "on" } else { "off" }.to_owned())
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn dropout_writes_the_missing_sentinel() {
        let traces = toy_traces();
        let out = FaultInjector::new(1).dropout(0, 10, 20).apply(&traces);
        assert!(out[0].events[10..20].iter().all(|e| e == MISSING_RECORD));
        assert_eq!(out[0].events[..10], traces[0].events[..10]);
        assert_eq!(out[0].events[20..], traces[0].events[20..]);
        assert_eq!(out[1].events, traces[1].events);
    }

    #[test]
    fn stuck_at_freezes_the_start_record() {
        let traces = toy_traces();
        let out = FaultInjector::new(1).stuck_at(1, 5, 30).apply(&traces);
        let frozen = &traces[1].events[5];
        assert!(out[1].events[5..30].iter().all(|e| e == frozen));
        assert_eq!(out[1].events[30..], traces[1].events[30..]);
    }

    #[test]
    fn corruption_is_probabilistic_and_marked() {
        let traces = toy_traces();
        let out = FaultInjector::new(2).corrupt(2, 0, 100, 0.5).apply(&traces);
        let changed = out[2]
            .events
            .iter()
            .zip(&traces[2].events)
            .filter(|(a, b)| a != b)
            .count();
        assert!((20..=80).contains(&changed), "~half corrupted: {changed}");
        assert!(out[2]
            .events
            .iter()
            .filter(|e| e.contains('\u{1a}'))
            .count()
            .eq(&changed));
    }

    #[test]
    fn burst_noise_replaces_every_record() {
        let traces = toy_traces();
        let out = FaultInjector::new(3).burst_noise(0, 40, 60).apply(&traces);
        assert!(out[0].events[40..60].iter().all(|e| e.contains('\u{1a}')));
    }

    #[test]
    fn injection_is_deterministic() {
        let traces = toy_traces();
        let mk = || {
            FaultInjector::new(42)
                .corrupt(0, 0, 100, 0.3)
                .burst_noise(1, 20, 80)
                .apply(&traces)
        };
        let a = mk();
        let b = mk();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.events, y.events);
        }
    }

    #[test]
    fn out_of_range_faults_are_clipped_not_panics() {
        let traces = toy_traces();
        let out = FaultInjector::new(1)
            .dropout(99, 0, 10) // no such sensor
            .dropout(0, 90, 500) // window past the end
            .stuck_at(1, 70, 70) // empty window
            .apply(&traces);
        assert!(out[0].events[90..].iter().all(|e| e == MISSING_RECORD));
        assert_eq!(out[1].events, traces[1].events);
    }
}
