//! Synthetic physical-plant sensor log.
//!
//! Stands in for the paper's proprietary dataset (§III-A), which is under an
//! NDA. The generator reproduces every statistic the paper reports:
//!
//! * 128 sensors sampled once per minute for 30 days (43 200 samples each,
//!   5.5 M total);
//! * mean cardinality ≈ 2.07, ~97.6 % binary, maximum 7 distinct states;
//! * sensors organized in components sharing a latent periodic driver, so
//!   strongly-related pairs exist (the basis of the relationship graph);
//! * a population of *rare-event* sensors that stay in one state almost all
//!   the time (like the paper's sensor #91) — these become the easily
//!   translatable, high-in-degree "popular" nodes;
//! * two anomalous days (21 and 28, as in November 2017) where pairwise
//!   phase relationships break while marginal behavior stays visually
//!   similar, plus milder *precursor* perturbations on days 19, 20 and 27
//!   that the paper observed as early-detection spikes.

use mdes_lang::RawTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What drives a sensor's state sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensorKind {
    /// Tracks its component driver's phase (a periodic wave).
    Periodic,
    /// Stays in a base state and fires briefly at long intervals.
    RareEvent,
}

/// Configuration of the plant simulator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlantConfig {
    /// Number of sensors (paper: 128).
    pub n_sensors: usize,
    /// Number of days simulated (paper: 30).
    pub days: usize,
    /// Samples per day (paper: 1440, one per minute).
    pub minutes_per_day: usize,
    /// Number of physical components (sensor clusters).
    pub n_components: usize,
    /// 1-based days with a full anomaly (paper: 21 and 28).
    pub anomaly_days: Vec<usize>,
    /// 1-based days with milder precursor perturbations (paper: 19, 20, 27).
    pub precursor_days: Vec<usize>,
    /// Fraction of sensors that are rare-event (mostly constant) sensors.
    pub rare_fraction: f64,
    /// Per-sample probability of flipping to a random other state during
    /// normal operation.
    pub noise_flip_prob: f64,
    /// Spread component driver periods deterministically (cycling and
    /// stretching the base period table) instead of drawing them at random.
    /// With many components the random draw makes most component pairs
    /// share a period — and therefore translate well — which defeats
    /// prescreen pruning at fleet scale. `false` preserves the historical
    /// RNG call sequence exactly.
    pub distinct_periods: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantConfig {
    fn default() -> Self {
        Self {
            n_sensors: 128,
            days: 30,
            minutes_per_day: 1440,
            n_components: 8,
            anomaly_days: vec![21, 28],
            precursor_days: vec![19, 20, 27],
            rare_fraction: 0.4,
            noise_flip_prob: 0.002,
            distinct_periods: false,
            seed: 2017,
        }
    }
}

impl PlantConfig {
    /// A reduced-scale configuration for fast experiments and tests.
    pub fn small(n_sensors: usize, days: usize) -> Self {
        Self {
            n_sensors,
            days,
            ..Self::default()
        }
    }

    /// A fleet-scale configuration for the 512–1000 sensor scalability
    /// experiments: many small components with deterministically spread
    /// driver periods (so most cross-component pairs do *not* translate
    /// and prescreen pruning has something to prune), a coarser 5-minute
    /// sampling grid and a short horizon so the corpus grows linearly
    /// with the fleet rather than quadratically with the study length.
    pub fn fleet(n_sensors: usize) -> Self {
        Self {
            n_sensors,
            days: 8,
            minutes_per_day: 288,
            n_components: (n_sensors / 8).max(1),
            anomaly_days: vec![8],
            precursor_days: vec![],
            distinct_periods: true,
            // Few rare-event sensors: their mostly-constant streams all
            // translate into each other, and at fleet scale that quadratic
            // population of trivial pairs would dominate the sweep.
            rare_fraction: 0.1,
            ..Self::default()
        }
    }

    /// Total samples per sensor.
    pub fn samples(&self) -> usize {
        self.days * self.minutes_per_day
    }

    /// Whether 1-based `day` is one of the injected anomalies.
    pub fn is_anomalous_day(&self, day: usize) -> bool {
        self.anomaly_days.contains(&day)
    }

    /// Whether 1-based `day` carries precursor perturbations.
    pub fn is_precursor_day(&self, day: usize) -> bool {
        self.precursor_days.contains(&day)
    }
}

/// Static description of one simulated sensor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensorInfo {
    /// Sensor name (`s0`, `s1`, …).
    pub name: String,
    /// Component (cluster) the sensor belongs to.
    pub component: usize,
    /// Behavioral kind.
    pub kind: SensorKind,
    /// Number of distinct states.
    pub cardinality: usize,
}

/// The generated dataset: traces plus ground-truth structure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlantData {
    /// Configuration used.
    pub config: PlantConfig,
    /// One trace per sensor, `config.samples()` records each.
    pub traces: Vec<RawTrace>,
    /// Ground-truth sensor metadata (for validating knowledge discovery).
    pub sensors: Vec<SensorInfo>,
}

struct SensorSpec {
    component: usize,
    kind: SensorKind,
    cardinality: usize,
    /// Phase lag relative to the component driver.
    lag: usize,
    /// Rare-event recurrence period (RareEvent only).
    long_period: usize,
    /// Rare-event pulse width (RareEvent only).
    on_duration: usize,
}

/// Generates a plant dataset.
///
/// # Panics
///
/// Panics if the configuration has zero sensors, days, components or
/// minutes per day.
pub fn generate(cfg: &PlantConfig) -> PlantData {
    assert!(
        cfg.n_sensors > 0 && cfg.days > 0 && cfg.minutes_per_day > 0 && cfg.n_components > 0,
        "plant configuration dimensions must be positive"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Component drivers: a period per component (in minutes).
    let periods = [24usize, 36, 48, 60, 90, 120];
    let comp_period: Vec<usize> = (0..cfg.n_components)
        .map(|c| {
            if cfg.distinct_periods {
                // Cycle the table and stretch each repeat (×1, ×2, ×3), so
                // period collisions across components are the exception.
                periods[c % periods.len()] * (1 + (c / periods.len()) % 3)
            } else {
                periods[rng.gen_range(0..periods.len())]
            }
        })
        .collect();

    // Sensor static specs. Cardinalities follow the paper: ~97.6 % binary,
    // the rest uniform in 3..=7 (max observed cardinality 7).
    let specs: Vec<SensorSpec> = (0..cfg.n_sensors)
        .map(|i| {
            let component = i % cfg.n_components;
            let p = comp_period[component];
            let kind = if rng.gen::<f64>() < cfg.rare_fraction {
                SensorKind::RareEvent
            } else {
                SensorKind::Periodic
            };
            let cardinality = match kind {
                SensorKind::RareEvent => 2,
                SensorKind::Periodic => {
                    if rng.gen::<f64>() < 0.968 {
                        2
                    } else {
                        rng.gen_range(3..=7)
                    }
                }
            };
            SensorSpec {
                component,
                kind,
                cardinality,
                lag: rng.gen_range(0..p),
                long_period: p * rng.gen_range(8..16),
                on_duration: (p / 4).max(2),
            }
        })
        .collect();

    let samples = cfg.samples();
    let mut values: Vec<Vec<usize>> = vec![Vec::with_capacity(samples); cfg.n_sensors];

    // Per-day perturbations (anomalies/precursors): each affected sensor
    // receives an independent lag shift for the whole day, decoupling it
    // from its component peers, plus an elevated flip probability.
    for day in 1..=cfg.days {
        let (affected_fraction, max_shift_frac, flip) = if cfg.is_anomalous_day(day) {
            (0.8, 0.5, 0.012)
        } else if cfg.is_precursor_day(day) {
            (0.4, 0.25, 0.006)
        } else {
            (0.0, 0.0, cfg.noise_flip_prob)
        };
        let shifts: Vec<usize> = specs
            .iter()
            .map(|s| {
                let p = comp_period[s.component];
                if affected_fraction > 0.0 && rng.gen::<f64>() < affected_fraction {
                    rng.gen_range(0..((p as f64 * max_shift_frac) as usize + 1))
                } else {
                    0
                }
            })
            .collect();
        let start = (day - 1) * cfg.minutes_per_day;
        for t in start..start + cfg.minutes_per_day {
            for (i, spec) in specs.iter().enumerate() {
                let p = comp_period[spec.component];
                let phase_t = t + spec.lag + shifts[i];
                let mut state = match spec.kind {
                    SensorKind::Periodic => (phase_t % p) * spec.cardinality / p,
                    SensorKind::RareEvent => {
                        usize::from(phase_t % spec.long_period < spec.on_duration)
                    }
                };
                if spec.cardinality > 1 && rng.gen::<f64>() < flip {
                    let other = rng.gen_range(0..spec.cardinality - 1);
                    state = if other >= state { other + 1 } else { other };
                }
                values[i].push(state);
            }
        }
    }

    let state_names = ["OFF", "ON", "S2", "S3", "S4", "S5", "S6"];
    let traces = values
        .iter()
        .enumerate()
        .map(|(i, vals)| {
            RawTrace::new(
                format!("s{i}"),
                vals.iter().map(|&v| state_names[v].to_owned()).collect(),
            )
        })
        .collect();
    let sensors = specs
        .iter()
        .enumerate()
        .map(|(i, s)| SensorInfo {
            name: format!("s{i}"),
            component: s.component,
            kind: s.kind,
            cardinality: s.cardinality,
        })
        .collect();
    PlantData {
        config: cfg.clone(),
        traces,
        sensors,
    }
}

impl PlantData {
    /// Sample range of 1-based day `day` (for slicing traces).
    ///
    /// # Panics
    ///
    /// Panics if `day` is zero or beyond the simulated horizon.
    pub fn day_range(&self, day: usize) -> std::ops::Range<usize> {
        assert!(
            day >= 1 && day <= self.config.days,
            "day {day} outside 1..={}",
            self.config.days
        );
        let m = self.config.minutes_per_day;
        (day - 1) * m..day * m
    }

    /// Sample range spanning 1-based days `[from, to]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if the day interval is invalid.
    pub fn days_range(&self, from: usize, to: usize) -> std::ops::Range<usize> {
        assert!(
            from >= 1 && from <= to && to <= self.config.days,
            "invalid day span {from}..={to}"
        );
        let m = self.config.minutes_per_day;
        (from - 1) * m..to * m
    }

    /// The multivariate sample at time `t` — one record per sensor, in
    /// trace order — ready to feed a streaming monitor or serving session.
    ///
    /// # Panics
    ///
    /// Panics if `t` is beyond the simulated horizon.
    pub fn sample(&self, t: usize) -> Vec<String> {
        assert!(
            t < self.config.samples(),
            "sample {t} outside 0..{}",
            self.config.samples()
        );
        self.traces.iter().map(|tr| tr.events[t].clone()).collect()
    }

    /// Index of a representative periodic sensor (Fig. 2a), if any.
    pub fn representative_periodic(&self) -> Option<usize> {
        self.sensors
            .iter()
            .position(|s| s.kind == SensorKind::Periodic)
    }

    /// Index of a representative rare-event sensor (Fig. 2b), if any.
    pub fn representative_rare(&self) -> Option<usize> {
        self.sensors
            .iter()
            .position(|s| s.kind == SensorKind::RareEvent)
    }

    /// Mean cardinality across sensors (paper reports 2.07).
    pub fn mean_cardinality(&self) -> f64 {
        self.sensors
            .iter()
            .map(|s| s.cardinality as f64)
            .sum::<f64>()
            / self.sensors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = PlantConfig::small(16, 3);
        let data = generate(&cfg);
        assert_eq!(data.traces.len(), 16);
        assert!(data.traces.iter().all(|t| t.events.len() == cfg.samples()));
        assert_eq!(data.sensors.len(), 16);
    }

    #[test]
    fn cardinality_distribution_matches_paper() {
        let data = generate(&PlantConfig::default());
        let binary = data.sensors.iter().filter(|s| s.cardinality == 2).count() as f64 / 128.0;
        assert!(binary > 0.9, "binary fraction {binary}");
        let mean = data.mean_cardinality();
        assert!((1.9..=2.4).contains(&mean), "mean cardinality {mean}");
        assert!(data.sensors.iter().all(|s| s.cardinality <= 7));
    }

    #[test]
    fn same_component_sensors_are_phase_locked_normally() {
        let cfg = PlantConfig::small(16, 2);
        let data = generate(&cfg);
        // Two periodic binary sensors in the same component must have a
        // (nearly) constant state relationship up to their fixed lags: check
        // mutual information proxy — agreement rate far from 50 % or stable
        // lagged match.
        let periodic: Vec<usize> = data
            .sensors
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == SensorKind::Periodic && s.cardinality == 2)
            .map(|(i, _)| i)
            .collect();
        let same_comp: Vec<(usize, usize)> = periodic
            .iter()
            .flat_map(|&a| periodic.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a < b && data.sensors[*a].component == data.sensors[*b].component)
            .collect();
        assert!(
            !same_comp.is_empty(),
            "need at least one same-component pair"
        );
        let (a, b) = same_comp[0];
        let ea = &data.traces[a].events;
        let eb = &data.traces[b].events;
        let agree = ea.iter().zip(eb).filter(|(x, y)| x == y).count() as f64 / ea.len() as f64;
        // Phase-locked square waves agree at a fixed rate; noise keeps it off
        // 0/1 but it must be far from coin-flipping OR nearly constant —
        // either way deterministic structure exists.
        assert!(
            (agree - 0.5).abs() > 0.05 || agree == 0.0,
            "agreement suspiciously random: {agree}"
        );
    }

    #[test]
    fn anomalous_day_differs_more_than_normal_day() {
        let cfg = PlantConfig {
            n_sensors: 12,
            days: 30,
            minutes_per_day: 240,
            ..PlantConfig::default()
        };
        let data = generate(&cfg);
        // Compare each day against day 1 via per-sensor mismatch; anomaly
        // days should diverge more than a typical normal day.
        let base: Vec<&[String]> = data
            .traces
            .iter()
            .map(|t| &t.events[data.day_range(1)])
            .collect();
        let mismatch = |day: usize| -> f64 {
            let mut total = 0.0;
            for (s, t) in data.traces.iter().enumerate() {
                let seg = &t.events[data.day_range(day)];
                let m = seg.iter().zip(base[s]).filter(|(a, b)| a != b).count();
                total += m as f64 / seg.len() as f64;
            }
            total / data.traces.len() as f64
        };
        let normal = mismatch(5);
        let anomalous = mismatch(21);
        assert!(
            anomalous > normal,
            "anomaly day mismatch {anomalous} should exceed normal {normal}"
        );
    }

    #[test]
    fn fleet_preset_scales_and_generates() {
        let cfg = PlantConfig::fleet(512);
        assert_eq!(cfg.n_sensors, 512);
        assert!(cfg.n_components >= 32);
        assert!(cfg.distinct_periods);
        // Generate a reduced fleet end-to-end; component structure must
        // survive the deterministic period spread.
        let data = generate(&PlantConfig::fleet(48));
        assert_eq!(data.traces.len(), 48);
        let comps: std::collections::BTreeSet<usize> =
            data.sensors.iter().map(|s| s.component).collect();
        assert_eq!(comps.len(), PlantConfig::fleet(48).n_components);
    }

    #[test]
    fn distinct_periods_only_changes_flagged_runs() {
        // The flag must not perturb the RNG call sequence of the default
        // path: a `false` run is byte-identical to the historical output,
        // so only `true` runs may diverge.
        let base = PlantConfig::small(8, 2);
        let spread = PlantConfig {
            distinct_periods: true,
            ..base.clone()
        };
        assert_eq!(generate(&base).traces, generate(&base).traces);
        assert_eq!(generate(&spread).traces, generate(&spread).traces);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PlantConfig::small(8, 2);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn day_ranges() {
        let data = generate(&PlantConfig::small(4, 3));
        assert_eq!(data.day_range(1), 0..1440);
        assert_eq!(data.day_range(3), 2880..4320);
        assert_eq!(data.days_range(1, 2), 0..2880);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn day_range_out_of_bounds_panics() {
        let data = generate(&PlantConfig::small(4, 3));
        let _ = data.day_range(4);
    }

    #[test]
    fn representatives_exist_and_rare_is_mostly_constant() {
        let data = generate(&PlantConfig::small(32, 2));
        let rare = data.representative_rare().expect("rare sensor");
        let events = &data.traces[rare].events;
        let off = events.iter().filter(|e| *e == "OFF").count() as f64 / events.len() as f64;
        assert!(
            off > 0.8,
            "rare-event sensor should be mostly OFF, got {off}"
        );
        assert!(data.representative_periodic().is_some());
    }
}
