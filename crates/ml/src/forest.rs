//! Random forest classifier (Breiman 2001) with Gini feature importance.
//!
//! The paper uses a random forest as the supervised baseline on the
//! Backblaze data (§IV-B) and its feature-importance ranking as the
//! reference for the graph-based ranking (Fig. 11b).

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`RandomForest`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree induction parameters; `max_features = None` here means
    /// `sqrt(n_features)` is chosen automatically.
    pub tree: TreeConfig,
    /// RNG seed for bootstrapping and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            tree: TreeConfig::default(),
            seed: 42,
        }
    }
}

/// A fitted random forest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    importances: Vec<f64>,
}

impl RandomForest {
    /// Fits `cfg.n_trees` trees on bootstrap resamples of `data`, each split
    /// considering `sqrt(n_features)` random features (unless overridden).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `cfg.n_trees == 0`.
    pub fn fit(data: &Dataset, cfg: &ForestConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(cfg.n_trees > 0, "forest needs at least one tree");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = data.len();
        let d = data.n_features();
        let tree_cfg = TreeConfig {
            max_features: cfg
                .tree
                .max_features
                .or(Some(((d as f64).sqrt().round() as usize).max(1))),
            ..cfg.tree
        };
        let mut trees = Vec::with_capacity(cfg.n_trees);
        let mut importances = vec![0.0; d];
        for _ in 0..cfg.n_trees {
            let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let boot = Dataset {
                x: rows.iter().map(|&r| data.x[r].clone()).collect(),
                y: rows.iter().map(|&r| data.y[r]).collect(),
                feature_names: data.feature_names.clone(),
            };
            let tree = DecisionTree::fit(&boot, &tree_cfg, &mut rng);
            for (acc, &imp) in importances.iter_mut().zip(tree.importances()) {
                *acc += imp;
            }
            trees.push(tree);
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for imp in &mut importances {
                *imp /= total;
            }
        }
        Self {
            trees,
            n_classes: data.n_classes(),
            importances,
        }
    }

    /// Majority-vote prediction for one row.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes.max(1)];
        for t in &self.trees {
            votes[t.predict_one(row)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Majority-vote predictions for a matrix of rows.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<usize> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Fraction of trees voting for `class` on `row`.
    pub fn predict_proba(&self, row: &[f64], class: usize) -> f64 {
        let votes = self
            .trees
            .iter()
            .filter(|t| t.predict_one(row) == class)
            .count();
        votes as f64 / self.trees.len() as f64
    }

    /// Normalized Gini feature importances (sum to 1 when any split
    /// happened).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Features sorted by decreasing importance: `(feature index, weight)`.
    pub fn ranked_features(&self) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = self.importances.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("importances are finite"));
        ranked
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has no trees (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two informative features out of four; labels from a noisy XOR-ish rule
    /// a single stump cannot capture.
    fn dataset(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(99);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let y = x
            .iter()
            .map(|r| usize::from((r[0] > 0.5) ^ (r[1] > 0.5)))
            .collect();
        Dataset::new(x, y)
    }

    #[test]
    fn forest_learns_xor_rule() {
        let data = dataset(400);
        let forest = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 30,
                ..Default::default()
            },
        );
        let preds = forest.predict(&data.x);
        let acc =
            preds.iter().zip(&data.y).filter(|(a, b)| a == b).count() as f64 / data.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn importances_identify_informative_features() {
        let data = dataset(400);
        let forest = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 30,
                ..Default::default()
            },
        );
        let imp = forest.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let ranked = forest.ranked_features();
        let top2: Vec<usize> = ranked[..2].iter().map(|&(f, _)| f).collect();
        assert!(top2.contains(&0) && top2.contains(&1), "ranked {ranked:?}");
    }

    #[test]
    fn proba_bounded_and_consistent() {
        let data = dataset(100);
        let forest = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 15,
                ..Default::default()
            },
        );
        for row in data.x.iter().take(10) {
            let p0 = forest.predict_proba(row, 0);
            let p1 = forest.predict_proba(row, 1);
            assert!((p0 + p1 - 1.0).abs() < 1e-9);
            let pred = forest.predict_one(row);
            let p_pred = forest.predict_proba(row, pred);
            assert!(p_pred >= 0.5 - 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = dataset(100);
        let cfg = ForestConfig {
            n_trees: 10,
            ..Default::default()
        };
        let a = RandomForest::fit(&data, &cfg);
        let b = RandomForest::fit(&data, &cfg);
        assert_eq!(a.predict(&data.x), b.predict(&data.x));
        assert_eq!(a.feature_importances(), b.feature_importances());
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let data = dataset(10);
        let _ = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 0,
                ..Default::default()
            },
        );
    }
}
