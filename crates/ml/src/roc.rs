//! Threshold-free evaluation: ROC curves and AUC for continuous anomaly
//! scores (e.g. OC-SVM decision values, k-means distances, or the
//! framework's `a_t`).

/// One point of a ROC curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    /// Score threshold producing this point (predict positive when
    /// `score >= threshold`).
    pub threshold: f64,
    /// True-positive rate at the threshold.
    pub tpr: f64,
    /// False-positive rate at the threshold.
    pub fpr: f64,
}

/// Computes the ROC curve of `scores` against binary `labels` (1 =
/// positive). Higher scores should indicate positives. Points are ordered
/// by increasing FPR, starting at `(0, 0)` and ending at `(1, 1)`.
///
/// # Panics
///
/// Panics if the slices differ in length or either class is absent.
pub fn roc_curve(scores: &[f64], labels: &[usize]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l != 0).count();
    let neg = labels.len() - pos;
    assert!(pos > 0 && neg > 0, "roc needs both classes present");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut points = vec![RocPoint {
        threshold: f64::INFINITY,
        tpr: 0.0,
        fpr: 0.0,
    }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        // Consume all observations tied at this score before emitting.
        let score = scores[order[i]];
        while i < order.len() && scores[order[i]] == score {
            if labels[order[i]] != 0 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: score,
            tpr: tp as f64 / pos as f64,
            fpr: fp as f64 / neg as f64,
        });
    }
    points
}

/// Area under the ROC curve via trapezoidal integration.
///
/// # Panics
///
/// Same conditions as [`roc_curve`].
pub fn auc(scores: &[f64], labels: &[usize]) -> f64 {
    let curve = roc_curve(scores, labels);
    curve
        .windows(2)
        .map(|w| (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1, 1, 0, 0];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1, 1, 0, 0];
        assert!(auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn pairwise_ordering_auc() {
        // Positives {4, 2} vs negatives {3, 1}: 3 of 4 pairwise orderings
        // favor the positive -> AUC = 0.75.
        let scores = [4.0, 3.0, 2.0, 1.0];
        let labels = [1, 0, 1, 0];
        let a = auc(&scores, &labels);
        assert!((a - 0.75).abs() < 1e-12, "auc {a}");
    }

    #[test]
    fn ties_are_averaged() {
        let scores = [0.5, 0.5];
        let labels = [1, 0];
        // A single tied group: trapezoid through (0,0)-(1,1) = 0.5.
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_endpoints() {
        let scores = [0.9, 0.1, 0.8, 0.3];
        let labels = [1, 0, 0, 1];
        let curve = roc_curve(&scores, &labels);
        let first = curve.first().expect("non-empty");
        let last = curve.last().expect("non-empty");
        assert_eq!((first.tpr, first.fpr), (0.0, 0.0));
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let _ = auc(&[0.1, 0.2], &[1, 1]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn auc_is_bounded(scores in proptest::collection::vec(-10.0..10.0f64, 4..40)) {
                // Assign alternating labels so both classes exist.
                let labels: Vec<usize> = (0..scores.len()).map(|i| i % 2).collect();
                let a = auc(&scores, &labels);
                prop_assert!((0.0..=1.0).contains(&a), "auc {}", a);
            }

            #[test]
            fn monotone_transform_preserves_auc(scores in proptest::collection::vec(0.1..10.0f64, 4..30)) {
                let labels: Vec<usize> = (0..scores.len()).map(|i| usize::from(i % 3 == 0)).collect();
                let transformed: Vec<f64> = scores.iter().map(|s| s.ln() * 2.0 + 1.0).collect();
                let a = auc(&scores, &labels);
                let b = auc(&transformed, &labels);
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
