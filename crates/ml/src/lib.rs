//! `mdes-ml` — baseline machine-learning models and evaluation metrics.
//!
//! The paper compares its translation-graph framework against two
//! conventional models on the HDD dataset (§IV-B, Table II):
//!
//! * [`RandomForest`] — the supervised baseline, also supplying the
//!   feature-importance ranking of Fig. 11(b);
//! * [`OneClassSvm`] — the unsupervised baseline (RBF kernel, ν-form);
//!
//! plus [`KMeans`], the classic unsupervised clustering alternative cited in
//! the introduction. [`Dataset`] provides splitting/under-sampling and
//! [`Confusion`] the recall/precision metrics Table II reports.
//!
//! # Example
//!
//! ```
//! use mdes_ml::{Dataset, ForestConfig, RandomForest};
//!
//! let x = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
//! let y = vec![0, 0, 1, 1];
//! let forest = RandomForest::fit(&Dataset::new(x, y), &ForestConfig::default());
//! assert_eq!(forest.predict_one(&[5.05]), 1);
//! ```

#![warn(missing_docs)]

mod dataset;
mod forest;
pub mod hawkes;
mod kmeans;
mod metrics;
mod roc;
mod scale;
mod svm;
pub mod tree;

pub use dataset::Dataset;
pub use forest::{ForestConfig, RandomForest};
pub use hawkes::{Hawkes, HawkesConfig, HawkesEvent};
pub use kmeans::{KMeans, KMeansConfig};
pub use metrics::Confusion;
pub use roc::{auc, roc_curve, RocPoint};
pub use scale::Scaler;
pub use svm::{Gamma, OneClassSvm, SvmConfig};
pub use tree::{DecisionTree, TreeConfig};
