//! Classification evaluation metrics (recall is Table II's headline number).

use serde::{Deserialize, Serialize};

/// A binary confusion matrix with class `1` treated as positive (anomaly).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds the matrix from prediction/truth pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(pred: &[usize], truth: &[usize]) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
        let mut c = Confusion::default();
        for (&p, &t) in pred.iter().zip(truth) {
            match (p != 0, t != 0) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Recall (true-positive rate): `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Precision: `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// F1 score (harmonic mean of precision and recall); 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all predictions; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.tp + self.tn + self.fp + self.fn_)
    }

    /// False-positive rate: `fp / (fp + tn)`; 0 when undefined.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_from_predictions() {
        let pred = [1, 1, 0, 0, 1];
        let truth = [1, 0, 0, 1, 1];
        let c = Confusion::from_predictions(&pred, &truth);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
    }

    #[test]
    fn metric_values() {
        let c = Confusion {
            tp: 8,
            fp: 2,
            tn: 85,
            fn_: 5,
        };
        assert!((c.recall() - 8.0 / 13.0).abs() < 1e-12);
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.accuracy() - 0.93).abs() < 1e-12);
        assert!((c.false_positive_rate() - 2.0 / 87.0).abs() < 1e-12);
        let f1 = c.f1();
        assert!(f1 > 0.0 && f1 < 1.0);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn perfect_predictions() {
        let c = Confusion::from_predictions(&[1, 0, 1], &[1, 0, 1]);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Confusion::from_predictions(&[1], &[1, 0]);
    }
}
