//! Lloyd's k-means with k-means++ initialization — the classic unsupervised
//! clustering alternative cited by the paper's introduction.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`KMeans`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iters: 100,
            tol: 1e-6,
        }
    }
}

/// A fitted k-means model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
}

impl KMeans {
    /// Fits `cfg.k` clusters to `x` with k-means++ seeding.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, rows are ragged, or `k` is zero or larger
    /// than the number of rows.
    pub fn fit(x: &[Vec<f64>], cfg: &KMeansConfig, rng: &mut impl Rng) -> Self {
        assert!(!x.is_empty(), "cannot cluster an empty dataset");
        assert!(
            cfg.k > 0 && cfg.k <= x.len(),
            "k = {} must be in 1..={}",
            cfg.k,
            x.len()
        );
        let d = x[0].len();
        assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(cfg.k);
        centroids.push(x[rng.gen_range(0..x.len())].clone());
        while centroids.len() < cfg.k {
            let d2: Vec<f64> = x
                .iter()
                .map(|r| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(r, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                rng.gen_range(0..x.len())
            } else {
                let mut pick = rng.gen::<f64>() * total;
                let mut chosen = x.len() - 1;
                for (i, &w) in d2.iter().enumerate() {
                    pick -= w;
                    if pick <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            centroids.push(x[next].clone());
        }

        // Lloyd iterations.
        for _ in 0..cfg.max_iters {
            let assign: Vec<usize> = x.iter().map(|r| nearest(r, &centroids).0).collect();
            let mut sums = vec![vec![0.0; d]; cfg.k];
            let mut counts = vec![0usize; cfg.k];
            for (r, &a) in x.iter().zip(&assign) {
                counts[a] += 1;
                for (s, v) in sums[a].iter_mut().zip(r) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count == 0 {
                    continue; // keep empty centroid in place
                }
                let new: Vec<f64> = sum.iter().map(|s| s / count as f64).collect();
                movement += sq_dist(c, &new).sqrt();
                *c = new;
            }
            if movement < cfg.tol {
                break;
            }
        }
        Self { centroids }
    }

    /// Cluster index of the nearest centroid.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        nearest(row, &self.centroids).0
    }

    /// Cluster indices for a matrix of rows.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<usize> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Euclidean distance from `row` to its nearest centroid — usable as an
    /// anomaly score.
    pub fn distance_to_nearest(&self, row: &[f64]) -> f64 {
        nearest(row, &self.centroids).1.sqrt()
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

fn nearest(row: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(row, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = Vec::new();
        for center in [0.0, 10.0] {
            for _ in 0..50 {
                x.push(vec![center + rng.gen::<f64>(), center + rng.gen::<f64>()]);
            }
        }
        x
    }

    #[test]
    fn separates_two_blobs() {
        let x = blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let km = KMeans::fit(&x, &KMeansConfig::default(), &mut rng);
        let labels = km.predict(&x);
        // All of blob 1 in one cluster, all of blob 2 in the other.
        let first = labels[0];
        assert!(labels[..50].iter().all(|&l| l == first));
        assert!(labels[50..].iter().all(|&l| l != first));
    }

    #[test]
    fn distance_score_flags_outliers() {
        let x = blobs();
        let mut rng = StdRng::seed_from_u64(2);
        let km = KMeans::fit(&x, &KMeansConfig::default(), &mut rng);
        let inlier = km.distance_to_nearest(&[0.5, 0.5]);
        let outlier = km.distance_to_nearest(&[50.0, 50.0]);
        assert!(outlier > inlier * 10.0);
    }

    #[test]
    fn k_equals_one_gives_mean_centroid() {
        let x = vec![vec![0.0], vec![2.0], vec![4.0]];
        let mut rng = StdRng::seed_from_u64(3);
        let km = KMeans::fit(
            &x,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            &mut rng,
        );
        assert!((km.centroids()[0][0] - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in 1..=")]
    fn k_larger_than_points_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = KMeans::fit(
            &[vec![0.0]],
            &KMeansConfig {
                k: 5,
                ..Default::default()
            },
            &mut rng,
        );
    }
}
