//! Feature standardization (z-scoring) — required by kernel methods on
//! telemetry whose raw features span many orders of magnitude.

use serde::{Deserialize, Serialize};

/// A per-feature standardizer fitted on training data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    /// Fits means and standard deviations per column.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or rows are ragged.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit a scaler on no rows");
        let d = x[0].len();
        assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        let n = x.len() as f64;
        let mut mean = vec![0.0; d];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; d];
        for row in x {
            for ((s, v), m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: map to zero rather than NaN
            }
        }
        Self { mean, std }
    }

    /// Standardizes one row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the fitted dimension.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.mean.len(), "feature count mismatch");
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardizes a whole matrix.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Fits on `x` and immediately transforms it.
    pub fn fit_transform(x: &[Vec<f64>]) -> (Self, Vec<Vec<f64>>) {
        let s = Self::fit(x);
        let t = s.transform(x);
        (s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let x = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let (_, t) = Scaler::fit_transform(&x);
        for c in 0..2 {
            let mean: f64 = t.iter().map(|r| r[c]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[c].powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_features_become_zero() {
        let x = vec![vec![7.0], vec![7.0], vec![7.0]];
        let (s, t) = Scaler::fit_transform(&x);
        assert!(t.iter().all(|r| r[0] == 0.0));
        // Unseen values still map finitely.
        assert!(s.transform_row(&[9.0])[0].is_finite());
    }

    #[test]
    fn transform_consistent_with_fit() {
        let x = vec![vec![0.0, 2.0], vec![4.0, 6.0]];
        let s = Scaler::fit(&x);
        assert_eq!(s.transform(&x), Scaler::fit_transform(&x).1);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_width_panics() {
        let s = Scaler::fit(&[vec![1.0, 2.0]]);
        let _ = s.transform_row(&[1.0]);
    }
}
