//! CART decision trees with Gini impurity.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for decision-tree induction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = all; forests pass `sqrt(d)`).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART classifier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Total Gini decrease attributed to each feature during induction.
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, cfg: &TreeConfig, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let n_classes = data.n_classes().max(1);
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_features: data.n_features(),
            importances: vec![0.0; data.n_features()],
        };
        let rows: Vec<usize> = (0..data.len()).collect();
        tree.grow(data, &rows, n_classes, cfg, 0, rng);
        tree
    }

    fn grow(
        &mut self,
        data: &Dataset,
        rows: &[usize],
        n_classes: usize,
        cfg: &TreeConfig,
        depth: usize,
        rng: &mut impl Rng,
    ) -> usize {
        let counts = class_counts(data, rows, n_classes);
        let majority = argmax(&counts);
        let node_gini = gini(&counts, rows.len());
        let stop = depth >= cfg.max_depth || rows.len() < cfg.min_samples_split || node_gini == 0.0;
        if stop {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }
        let split = self.best_split(data, rows, n_classes, cfg, node_gini, rng);
        match split {
            None => {
                self.nodes.push(Node::Leaf { class: majority });
                self.nodes.len() - 1
            }
            Some(s) => {
                self.importances[s.feature] += s.gain * rows.len() as f64;
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
                    .iter()
                    .partition(|&&r| data.x[r][s.feature] <= s.threshold);
                // Reserve our slot before growing children.
                self.nodes.push(Node::Leaf { class: majority });
                let slot = self.nodes.len() - 1;
                let left = self.grow(data, &left_rows, n_classes, cfg, depth + 1, rng);
                let right = self.grow(data, &right_rows, n_classes, cfg, depth + 1, rng);
                self.nodes[slot] = Node::Split {
                    feature: s.feature,
                    threshold: s.threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }

    fn best_split(
        &self,
        data: &Dataset,
        rows: &[usize],
        n_classes: usize,
        cfg: &TreeConfig,
        node_gini: f64,
        rng: &mut impl Rng,
    ) -> Option<SplitChoice> {
        let mut features: Vec<usize> = (0..data.n_features()).collect();
        if let Some(k) = cfg.max_features {
            features.shuffle(rng);
            features.truncate(k.clamp(1, data.n_features()));
        }
        let n = rows.len() as f64;
        let mut best: Option<SplitChoice> = None;
        for &f in &features {
            let mut vals: Vec<(f64, usize)> =
                rows.iter().map(|&r| (data.x[r][f], data.y[r])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN features"));
            let mut left_counts = vec![0usize; n_classes];
            let total_counts = {
                let mut c = vec![0usize; n_classes];
                for &(_, y) in &vals {
                    c[y] += 1;
                }
                c
            };
            for i in 0..vals.len() - 1 {
                left_counts[vals[i].1] += 1;
                if vals[i].0 == vals[i + 1].0 {
                    continue;
                }
                let left_n = i + 1;
                let right_n = vals.len() - left_n;
                let right_counts: Vec<usize> = total_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(&t, &l)| t - l)
                    .collect();
                let weighted = (left_n as f64 / n) * gini(&left_counts, left_n)
                    + (right_n as f64 / n) * gini(&right_counts, right_n);
                let gain = node_gini - weighted;
                if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(SplitChoice {
                        feature: f,
                        threshold: (vals[i].0 + vals[i + 1].0) / 2.0,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Predicts the class of one row.
    ///
    /// # Panics
    ///
    /// Panics if the row has the wrong feature count.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts classes for every row of `x`.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<usize> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Raw (unnormalized) per-feature importance: total weighted Gini
    /// decrease.
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain: f64,
}

fn class_counts(data: &Dataset, rows: &[usize], n_classes: usize) -> Vec<usize> {
    let mut c = vec![0usize; n_classes];
    for &r in rows {
        c[data.y[r]] += 1;
    }
    c
}

fn argmax(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn axis_separable(n: usize) -> Dataset {
        // Class determined by x0 > 0.5; x1 is noise.
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let y = x.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        Dataset::new(x, y)
    }

    #[test]
    fn learns_axis_aligned_boundary() {
        let data = axis_separable(200);
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        let preds = tree.predict(&data.x);
        let acc =
            preds.iter().zip(&data.y).filter(|(a, b)| a == b).count() as f64 / data.len() as f64;
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn importance_concentrates_on_informative_feature() {
        let data = axis_separable(300);
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        let imp = tree.importances();
        assert!(imp[0] > imp[1] * 5.0, "importances {imp:?}");
    }

    #[test]
    fn depth_limit_respected() {
        let data = axis_separable(200);
        let mut rng = StdRng::seed_from_u64(3);
        let stump = DecisionTree::fit(
            &data,
            &TreeConfig {
                max_depth: 1,
                ..TreeConfig::default()
            },
            &mut rng,
        );
        // A depth-1 tree has at most 3 nodes.
        assert!(stump.node_count() <= 3);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1, 1, 1]);
        let mut rng = StdRng::seed_from_u64(4);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_one(&[5.0]), 1);
    }

    #[test]
    fn constant_features_yield_majority_leaf() {
        let data = Dataset::new(vec![vec![1.0], vec![1.0], vec![1.0]], vec![0, 1, 1]);
        let mut rng = StdRng::seed_from_u64(5);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.predict_one(&[1.0]), 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = DecisionTree::fit(&Dataset::default(), &TreeConfig::default(), &mut rng);
    }

    #[test]
    fn multiclass_works() {
        // Three bands on one axis.
        let x: Vec<Vec<f64>> = (0..90).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..90).map(|i| i / 30).collect();
        let data = Dataset::new(x, y);
        let mut rng = StdRng::seed_from_u64(8);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.predict_one(&[5.0]), 0);
        assert_eq!(tree.predict_one(&[45.0]), 1);
        assert_eq!(tree.predict_one(&[85.0]), 2);
    }
}
