//! One-class support vector machine (Schölkopf et al., 2001) with an RBF
//! kernel — the paper's unsupervised baseline (§IV-B).
//!
//! Solves the ν-formulation dual
//!
//! ```text
//! min  1/2 Σ_ij α_i α_j K(x_i, x_j)
//! s.t. 0 <= α_i <= 1/(ν n),  Σ_i α_i = 1
//! ```
//!
//! with a pairwise (SMO-style) coordinate solver: the equality constraint is
//! preserved by optimizing two multipliers at a time in closed form. The
//! decision function `f(x) = Σ_i α_i K(x_i, x) - ρ` is non-negative for
//! inliers.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// RBF kernel bandwidth selection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Gamma {
    /// `1 / (n_features * variance)` — scikit-learn's `"scale"` heuristic.
    Scale,
    /// Explicit value.
    Value(f64),
}

/// Hyper-parameters for [`OneClassSvm`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Upper bound on the fraction of training outliers / lower bound on the
    /// fraction of support vectors.
    pub nu: f64,
    /// RBF bandwidth.
    pub gamma: Gamma,
    /// Maximum passes over all index pairs.
    pub max_epochs: usize,
    /// Convergence tolerance on the largest multiplier change per epoch.
    pub tol: f64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            nu: 0.1,
            gamma: Gamma::Scale,
            max_epochs: 60,
            tol: 1e-6,
        }
    }
}

/// A fitted one-class SVM.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OneClassSvm {
    support: Vec<Vec<f64>>,
    alphas: Vec<f64>,
    rho: f64,
    gamma: f64,
}

impl OneClassSvm {
    /// Fits the model on `data` (labels are ignored — pass inlier rows only).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `nu` is outside `(0, 1]`.
    pub fn fit(data: &Dataset, cfg: &SvmConfig) -> Self {
        assert!(
            !data.is_empty(),
            "cannot fit a one-class SVM on an empty dataset"
        );
        assert!(
            cfg.nu > 0.0 && cfg.nu <= 1.0,
            "nu must be in (0, 1], got {}",
            cfg.nu
        );
        let n = data.len();
        let gamma = resolve_gamma(cfg.gamma, data);
        // Precompute the kernel matrix (training sets are sub-sampled, so n
        // stays modest — the paper notes the same scaling limitation).
        let k: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| rbf(&data.x[i], &data.x[j], gamma)).collect())
            .collect();
        let ub = 1.0 / (cfg.nu * n as f64);
        // Feasible start: uniform weights (satisfies both constraints since
        // 1/n <= 1/(nu n) for nu <= 1).
        let mut alpha = vec![1.0 / n as f64; n];
        // Gradient of the objective: g = K alpha.
        let mut grad: Vec<f64> = (0..n)
            .map(|i| k[i].iter().zip(&alpha).map(|(kij, aj)| kij * aj).sum())
            .collect();

        for _ in 0..cfg.max_epochs {
            let mut max_change = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let denom = k[i][i] - 2.0 * k[i][j] + k[j][j];
                    if denom <= 1e-12 {
                        continue;
                    }
                    // Unconstrained optimum along the (e_i - e_j) direction.
                    let delta = (grad[j] - grad[i]) / denom;
                    let s = alpha[i] + alpha[j];
                    let new_i = (alpha[i] + delta).clamp((s - ub).max(0.0), ub.min(s));
                    let change = new_i - alpha[i];
                    if change.abs() < 1e-15 {
                        continue;
                    }
                    alpha[i] = new_i;
                    alpha[j] = s - new_i;
                    for (t, g) in grad.iter_mut().enumerate() {
                        *g += change * (k[t][i] - k[t][j]);
                    }
                    max_change = max_change.max(change.abs());
                }
            }
            if max_change < cfg.tol {
                break;
            }
        }

        // rho = average decision value over margin support vectors
        // (0 < alpha < ub); fall back to all support vectors.
        let margin: Vec<usize> = (0..n)
            .filter(|&i| alpha[i] > 1e-9 && alpha[i] < ub - 1e-9)
            .collect();
        let candidates: Vec<usize> = if margin.is_empty() {
            (0..n).filter(|&i| alpha[i] > 1e-9).collect()
        } else {
            margin
        };
        let rho = candidates.iter().map(|&i| grad[i]).sum::<f64>() / candidates.len() as f64;

        let support: Vec<Vec<f64>> = (0..n)
            .filter(|&i| alpha[i] > 1e-9)
            .map(|i| data.x[i].clone())
            .collect();
        let alphas: Vec<f64> = alpha.into_iter().filter(|&a| a > 1e-9).collect();
        Self {
            support,
            alphas,
            rho,
            gamma,
        }
    }

    /// Signed decision value: non-negative for inliers.
    pub fn decision(&self, row: &[f64]) -> f64 {
        let k_sum: f64 = self
            .support
            .iter()
            .zip(&self.alphas)
            .map(|(sv, &a)| a * rbf(sv, row, self.gamma))
            .sum();
        k_sum - self.rho
    }

    /// `true` when the row is classified as an inlier.
    pub fn is_inlier(&self, row: &[f64]) -> bool {
        self.decision(row) >= 0.0
    }

    /// Predicts `0` for inliers and `1` for outliers (anomalies) — matching
    /// the label convention of the HDD evaluation.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<usize> {
        x.iter().map(|r| usize::from(!self.is_inlier(r))).collect()
    }

    /// Number of support vectors retained.
    pub fn support_count(&self) -> usize {
        self.support.len()
    }
}

fn resolve_gamma(gamma: Gamma, data: &Dataset) -> f64 {
    match gamma {
        Gamma::Value(v) => v,
        Gamma::Scale => {
            let d = data.n_features().max(1) as f64;
            let n = (data.len() * data.n_features()).max(1) as f64;
            let mean: f64 = data.x.iter().flatten().sum::<f64>() / n;
            let var: f64 = data
                .x
                .iter()
                .flatten()
                .map(|v| (v - mean).powi(2))
                .sum::<f64>()
                / n;
            1.0 / (d * var.max(1e-12))
        }
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
    (-gamma * d2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster(n: usize, center: f64, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..2)
                    .map(|_| center + spread * (rng.gen::<f64>() - 0.5))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn inliers_accepted_outliers_rejected() {
        let train = Dataset::new(cluster(120, 0.0, 1.0, 1), vec![0; 120]);
        let svm = OneClassSvm::fit(&train, &SvmConfig::default());
        // Points near the training cluster are inliers.
        let test_in = cluster(40, 0.0, 0.8, 2);
        let accepted = test_in.iter().filter(|r| svm.is_inlier(r)).count();
        assert!(accepted >= 32, "only {accepted}/40 inliers accepted");
        // Far-away points are outliers.
        let test_out = cluster(40, 10.0, 1.0, 3);
        let rejected = test_out.iter().filter(|r| !svm.is_inlier(r)).count();
        assert!(rejected >= 38, "only {rejected}/40 outliers rejected");
    }

    #[test]
    fn nu_controls_training_outlier_fraction() {
        let train = Dataset::new(cluster(100, 0.0, 1.0, 4), vec![0; 100]);
        for nu in [0.05, 0.3] {
            let svm = OneClassSvm::fit(
                &train,
                &SvmConfig {
                    nu,
                    ..Default::default()
                },
            );
            let rejected = train.x.iter().filter(|r| !svm.is_inlier(r)).count() as f64 / 100.0;
            // The training rejection rate tracks nu loosely from below.
            assert!(
                rejected <= nu + 0.12,
                "nu={nu}: rejected fraction {rejected}"
            );
        }
    }

    #[test]
    fn predict_uses_anomaly_convention() {
        let train = Dataset::new(cluster(80, 0.0, 1.0, 5), vec![0; 80]);
        // A broad kernel smooths the interior so the cluster center is a
        // clear inlier (the `Scale` heuristic is tighter and can leave small
        // interior dips with uniform data).
        let svm = OneClassSvm::fit(
            &train,
            &SvmConfig {
                gamma: Gamma::Value(1.0),
                ..Default::default()
            },
        );
        let preds = svm.predict(&[vec![0.0, 0.0], vec![50.0, 50.0]]);
        assert_eq!(preds, vec![0, 1]);
    }

    #[test]
    fn decision_is_continuous_in_distance() {
        let train = Dataset::new(cluster(80, 0.0, 1.0, 6), vec![0; 80]);
        let svm = OneClassSvm::fit(&train, &SvmConfig::default());
        let near = svm.decision(&[0.1, 0.1]);
        let mid = svm.decision(&[2.0, 2.0]);
        let far = svm.decision(&[8.0, 8.0]);
        assert!(near > mid && mid > far, "{near} {mid} {far}");
    }

    #[test]
    fn explicit_gamma_respected() {
        let train = Dataset::new(cluster(50, 0.0, 1.0, 7), vec![0; 50]);
        let svm = OneClassSvm::fit(
            &train,
            &SvmConfig {
                gamma: Gamma::Value(0.5),
                ..Default::default()
            },
        );
        assert!(svm.support_count() > 0);
    }

    #[test]
    #[should_panic(expected = "nu must be in (0, 1]")]
    fn invalid_nu_rejected() {
        let train = Dataset::new(cluster(10, 0.0, 1.0, 8), vec![0; 10]);
        let _ = OneClassSvm::fit(
            &train,
            &SvmConfig {
                nu: 0.0,
                ..Default::default()
            },
        );
    }
}
