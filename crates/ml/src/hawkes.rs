//! Multivariate Hawkes processes with exponential kernels.
//!
//! The paper's related work (§V) names multidimensional Hawkes processes as
//! the established alternative for modeling inter-dependent multi-source
//! event streams. This module provides a full implementation — simulation
//! via Ogata thinning and maximum-likelihood fitting via EM — so the
//! `exp_baseline_hawkes` experiment can compare the Hawkes *influence
//! matrix* against the translation graph as a structure-discovery device.
//!
//! Model: the intensity of dimension `i` is
//!
//! ```text
//! lambda_i(t) = mu_i + sum_{t_m < t} alpha[i][d_m] * beta * exp(-beta (t - t_m))
//! ```
//!
//! where `mu` are background rates and `alpha[i][j]` is the expected number
//! of type-`i` events directly triggered by one type-`j` event.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A timestamped event: `(time, dimension)`.
pub type HawkesEvent = (f64, usize);

/// Configuration for [`Hawkes::fit`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HawkesConfig {
    /// Exponential kernel decay rate (events influence ~`1/beta` time units).
    pub beta: f64,
    /// EM iterations.
    pub iters: usize,
    /// Triggering kernels are truncated once `exp(-beta dt)` falls below
    /// this, bounding the per-event look-back.
    pub kernel_cutoff: f64,
}

impl Default for HawkesConfig {
    fn default() -> Self {
        Self {
            beta: 1.0,
            iters: 30,
            kernel_cutoff: 1e-4,
        }
    }
}

/// A fitted (or hand-constructed) multivariate Hawkes process.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hawkes {
    mu: Vec<f64>,
    /// `alpha[i][j]`: branching ratio from dimension `j` to dimension `i`.
    alpha: Vec<Vec<f64>>,
    beta: f64,
}

impl Hawkes {
    /// Constructs a process with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent, `beta <= 0`, or any parameter is
    /// negative.
    pub fn new(mu: Vec<f64>, alpha: Vec<Vec<f64>>, beta: f64) -> Self {
        let d = mu.len();
        assert!(d > 0, "at least one dimension required");
        assert_eq!(alpha.len(), d, "alpha row count must match mu");
        assert!(alpha.iter().all(|r| r.len() == d), "alpha must be square");
        assert!(beta > 0.0, "beta must be positive");
        assert!(
            mu.iter().all(|&m| m >= 0.0) && alpha.iter().flatten().all(|&a| a >= 0.0),
            "rates must be non-negative"
        );
        Self { mu, alpha, beta }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.mu.len()
    }

    /// Background rates.
    pub fn mu(&self) -> &[f64] {
        &self.mu
    }

    /// Influence (branching) matrix: `alpha[i][j]` = expected type-`i`
    /// events triggered per type-`j` event.
    pub fn alpha(&self) -> &[Vec<f64>] {
        &self.alpha
    }

    /// Kernel decay rate.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Conditional intensity of dimension `dim` at time `t`, given sorted
    /// `history` (events strictly before `t` contribute).
    pub fn intensity(&self, history: &[HawkesEvent], t: f64, dim: usize) -> f64 {
        let mut lambda = self.mu[dim];
        for &(tm, dm) in history.iter().rev() {
            if tm >= t {
                continue;
            }
            let decay = (-self.beta * (t - tm)).exp();
            if decay < 1e-12 {
                break; // older events contribute even less
            }
            lambda += self.alpha[dim][dm] * self.beta * decay;
        }
        lambda
    }

    /// Simulates the process on `[0, horizon)` via Ogata thinning.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive.
    pub fn simulate(&self, horizon: f64, rng: &mut impl Rng) -> Vec<HawkesEvent> {
        assert!(horizon > 0.0, "horizon must be positive");
        let d = self.dims();
        let mut events: Vec<HawkesEvent> = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Upper bound: intensity right after the latest event dominates
            // all later times until the next event (kernels only decay).
            let bound: f64 = (0..d)
                .map(|i| self.intensity(&events, t + 1e-12, i))
                .sum::<f64>()
                .max(1e-12);
            let dt = -rng.gen::<f64>().max(1e-15).ln() / bound;
            t += dt;
            if t >= horizon {
                break;
            }
            let lambdas: Vec<f64> = (0..d).map(|i| self.intensity(&events, t, i)).collect();
            let total: f64 = lambdas.iter().sum();
            if rng.gen::<f64>() * bound <= total {
                // Accept: choose the dimension proportionally.
                let mut pick = rng.gen::<f64>() * total;
                let mut dim = d - 1;
                for (i, &l) in lambdas.iter().enumerate() {
                    pick -= l;
                    if pick <= 0.0 {
                        dim = i;
                        break;
                    }
                }
                events.push((t, dim));
            }
        }
        events
    }

    /// Fits a process to `events` (sorted by time, dimensions `< dims`)
    /// observed on `[0, horizon)` using the standard EM algorithm for
    /// exponential Hawkes processes.
    ///
    /// # Panics
    ///
    /// Panics if `dims` or `horizon` is zero/negative, events are unsorted,
    /// or any dimension is out of range.
    pub fn fit(events: &[HawkesEvent], dims: usize, horizon: f64, cfg: &HawkesConfig) -> Self {
        assert!(dims > 0, "at least one dimension required");
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(cfg.beta > 0.0, "beta must be positive");
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "events must be sorted by time"
        );
        assert!(events
            .iter()
            .all(|&(t, d)| d < dims && t >= 0.0 && t < horizon));

        let lookback = -(cfg.kernel_cutoff.ln()) / cfg.beta;
        let counts: Vec<f64> = {
            let mut c = vec![0.0; dims];
            for &(_, d) in events {
                c[d] += 1.0;
            }
            c
        };

        // Initialization: uniform split between background and triggering.
        let mut mu: Vec<f64> = counts.iter().map(|&c| 0.5 * c / horizon + 1e-6).collect();
        let mut alpha = vec![vec![0.1; dims]; dims];

        for _ in 0..cfg.iters {
            let mut mu_acc = vec![0.0f64; dims];
            let mut alpha_acc = vec![vec![0.0f64; dims]; dims];
            for (n, &(tn, dn)) in events.iter().enumerate() {
                // Gather kernel contributions from recent events.
                let mut contrib: Vec<(usize, f64)> = Vec::new();
                for m in (0..n).rev() {
                    let (tm, dm) = events[m];
                    let dt = tn - tm;
                    if dt > lookback {
                        break;
                    }
                    if dt <= 0.0 {
                        continue; // simultaneous events cannot trigger
                    }
                    let k = alpha[dn][dm] * cfg.beta * (-cfg.beta * dt).exp();
                    if k > 0.0 {
                        contrib.push((dm, k));
                    }
                }
                let denom = mu[dn] + contrib.iter().map(|&(_, k)| k).sum::<f64>();
                if denom <= 0.0 {
                    continue;
                }
                mu_acc[dn] += mu[dn] / denom;
                for (dm, k) in contrib {
                    alpha_acc[dn][dm] += k / denom;
                }
            }
            for i in 0..dims {
                mu[i] = (mu_acc[i] / horizon).max(1e-9);
                for j in 0..dims {
                    // Each type-j event contributes kernel mass ~1 inside the
                    // horizon (exponential integrates to 1).
                    alpha[i][j] = if counts[j] > 0.0 {
                        alpha_acc[i][j] / counts[j]
                    } else {
                        0.0
                    };
                }
            }
        }
        Self {
            mu,
            alpha,
            beta: cfg.beta,
        }
    }

    /// Mean log-likelihood per event (up to the constant horizon term of
    /// the compensator), usable to compare fits.
    pub fn mean_log_intensity(&self, events: &[HawkesEvent]) -> f64 {
        if events.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (n, &(tn, dn)) in events.iter().enumerate() {
            total += self.intensity(&events[..n], tn, dn).max(1e-12).ln();
        }
        total / events.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn intensity_includes_background_and_excitation() {
        let h = Hawkes::new(vec![0.5, 0.1], vec![vec![0.0, 0.8], vec![0.0, 0.0]], 2.0);
        // No history: intensity = mu.
        assert!((h.intensity(&[], 1.0, 0) - 0.5).abs() < 1e-12);
        // A recent type-1 event excites dimension 0.
        let history = vec![(0.9, 1usize)];
        let l = h.intensity(&history, 1.0, 0);
        assert!(l > 0.5, "excited intensity {l}");
        // ... but not dimension 1 (alpha[1][1] = 0).
        assert!((h.intensity(&history, 1.0, 1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn simulation_rate_matches_theory() {
        // Univariate: stationary rate = mu / (1 - alpha).
        let h = Hawkes::new(vec![0.5], vec![vec![0.5]], 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let horizon = 2000.0;
        let events = h.simulate(horizon, &mut rng);
        let rate = events.len() as f64 / horizon;
        assert!(
            (rate - 1.0).abs() < 0.15,
            "empirical rate {rate}, expected 1.0"
        );
    }

    #[test]
    fn fit_recovers_influence_structure() {
        // Dimension 1 is driven by dimension 0; no reverse influence.
        let truth = Hawkes::new(vec![0.4, 0.05], vec![vec![0.0, 0.0], vec![0.7, 0.0]], 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let events = truth.simulate(3000.0, &mut rng);
        assert!(
            events.len() > 1000,
            "need a large sample, got {}",
            events.len()
        );
        let fitted = Hawkes::fit(
            &events,
            2,
            3000.0,
            &HawkesConfig {
                beta: 1.5,
                ..Default::default()
            },
        );
        let a = fitted.alpha();
        assert!(a[1][0] > 0.3, "driven edge should be strong: {:?}", a);
        assert!(
            a[1][0] > 3.0 * a[0][1],
            "direction must be recovered: a10 {} vs a01 {}",
            a[1][0],
            a[0][1]
        );
        // Background rates in the right ballpark.
        assert!((fitted.mu()[0] - 0.4).abs() < 0.2, "mu0 {}", fitted.mu()[0]);
    }

    #[test]
    fn fit_on_independent_streams_finds_weak_coupling() {
        let truth = Hawkes::new(vec![0.3, 0.3], vec![vec![0.0, 0.0], vec![0.0, 0.0]], 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let events = truth.simulate(3000.0, &mut rng);
        let fitted = Hawkes::fit(&events, 2, 3000.0, &HawkesConfig::default());
        for row in fitted.alpha() {
            for &a in row {
                assert!(
                    a < 0.15,
                    "independent streams should fit near-zero alpha: {a}"
                );
            }
        }
    }

    #[test]
    fn better_model_scores_higher_likelihood() {
        let truth = Hawkes::new(vec![0.2], vec![vec![0.6]], 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let events = truth.simulate(1500.0, &mut rng);
        let fitted = Hawkes::fit(&events, 1, 1500.0, &HawkesConfig::default());
        let flat = Hawkes::new(vec![events.len() as f64 / 1500.0], vec![vec![0.0]], 1.0);
        assert!(
            fitted.mean_log_intensity(&events) > flat.mean_log_intensity(&events),
            "self-exciting fit should beat the Poisson fit"
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_events_rejected() {
        let _ = Hawkes::fit(&[(1.0, 0), (0.5, 0)], 1, 10.0, &HawkesConfig::default());
    }

    #[test]
    #[should_panic(expected = "alpha must be square")]
    fn ragged_alpha_rejected() {
        let _ = Hawkes::new(vec![0.1, 0.1], vec![vec![0.0], vec![0.0, 0.0]], 1.0);
    }
}
