//! Tabular datasets and resampling utilities for the baseline models.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense tabular dataset with integer class labels.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Row-major feature matrix; every row has the same length.
    pub x: Vec<Vec<f64>>,
    /// Class label per row.
    pub y: Vec<usize>,
    /// Optional feature names (empty = unnamed).
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset, validating that rows are rectangular and labels
    /// match rows.
    ///
    /// # Panics
    ///
    /// Panics if row lengths differ or `x.len() != y.len()`.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<usize>) -> Self {
        assert_eq!(x.len(), y.len(), "feature rows and labels must match");
        if let Some(first) = x.first() {
            let d = first.len();
            assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        Self {
            x,
            y,
            feature_names: Vec::new(),
        }
    }

    /// Attaches feature names.
    ///
    /// # Panics
    ///
    /// Panics if the name count differs from the feature count.
    pub fn with_feature_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(
            names.len(),
            self.n_features(),
            "feature name count mismatch"
        );
        self.feature_names = names;
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features per row (0 when empty).
    pub fn n_features(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Number of distinct classes (max label + 1).
    pub fn n_classes(&self) -> usize {
        self.y.iter().max().map_or(0, |&m| m + 1)
    }

    /// Splits rows into `(train, test)` with `train_fraction` of rows in the
    /// training set, after shuffling with `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    pub fn train_test_split(&self, train_fraction: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1), got {train_fraction}"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let take = |ids: &[usize]| Dataset {
            x: ids.iter().map(|&i| self.x[i].clone()).collect(),
            y: ids.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
        };
        (take(&idx[..cut]), take(&idx[cut..]))
    }

    /// Under-samples the majority class to a 1-to-1 ratio with the minority
    /// class (the paper's RF training protocol, §IV-B).
    pub fn undersample_balanced(&self, rng: &mut impl Rng) -> Dataset {
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes()];
        for (i, &c) in self.y.iter().enumerate() {
            by_class[c].push(i);
        }
        let min = by_class
            .iter()
            .filter(|v| !v.is_empty())
            .map(Vec::len)
            .min()
            .unwrap_or(0);
        let mut keep: Vec<usize> = Vec::new();
        for ids in &mut by_class {
            ids.shuffle(rng);
            keep.extend(ids.iter().take(min));
        }
        keep.sort_unstable();
        Dataset {
            x: keep.iter().map(|&i| self.x[i].clone()).collect(),
            y: keep.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Rows belonging to one class (e.g. the healthy majority for OC-SVM).
    pub fn filter_class(&self, class: usize) -> Dataset {
        let ids: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] == class).collect();
        Dataset {
            x: ids.iter().map(|&i| self.x[i].clone()).collect(),
            y: ids.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Dataset {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let y = vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1];
        Dataset::new(x, y)
    }

    #[test]
    fn shape_accessors() {
        let d = sample();
        assert_eq!(d.len(), 10);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged feature rows")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    fn split_preserves_rows() {
        let d = sample();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.train_test_split(0.8, &mut rng);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(train.len() + test.len(), d.len());
    }

    #[test]
    fn undersample_balances_classes() {
        let d = sample();
        let mut rng = StdRng::seed_from_u64(2);
        let b = d.undersample_balanced(&mut rng);
        let zeros = b.y.iter().filter(|&&c| c == 0).count();
        let ones = b.y.iter().filter(|&&c| c == 1).count();
        assert_eq!(zeros, 3);
        assert_eq!(ones, 3);
    }

    #[test]
    fn filter_class_selects_only_that_class() {
        let d = sample();
        let healthy = d.filter_class(0);
        assert_eq!(healthy.len(), 7);
        assert!(healthy.y.iter().all(|&c| c == 0));
    }

    #[test]
    fn feature_names_carried_through() {
        let d = sample().with_feature_names(vec!["a".into(), "b".into()]);
        let mut rng = StdRng::seed_from_u64(3);
        let (train, _) = d.train_test_split(0.5, &mut rng);
        assert_eq!(train.feature_names, vec!["a".to_owned(), "b".to_owned()]);
    }
}
