//! `mdes-bleu` — BiLingual Evaluation Understudy (BLEU) scores.
//!
//! BLEU (Papineni et al., ACL 2002) measures translation quality as the
//! geometric mean of modified n-gram precisions, multiplied by a brevity
//! penalty. The paper uses BLEU on a 0–100 scale as the pairwise relationship
//! strength between two sensor "languages": the development-set corpus BLEU
//! becomes the edge weight `s(i, j)` of the relationship graph, and
//! sentence-level BLEU at test time (`f(i, j)`) is compared against it to
//! detect broken relationships.
//!
//! Tokens are generic: anything `Eq + Hash + Clone` works, so the language
//! pipeline can score word-id sentences without materializing strings.
//!
//! # Example
//!
//! ```
//! use mdes_bleu::{corpus_bleu, BleuConfig};
//!
//! let hyps = vec![vec![1u32, 2, 3, 4, 5]];
//! let refs = vec![vec![1u32, 2, 3, 4, 5]];
//! let score = corpus_bleu(&hyps, &refs, &BleuConfig::default());
//! assert!((score - 100.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Smoothing applied to zero n-gram precision counts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Smoothing {
    /// No smoothing: any zero precision zeroes the whole score (the original
    /// BLEU definition; appropriate for large corpora).
    None,
    /// Add-one smoothing on matched and total counts for n > 1
    /// (Lin & Och, 2004) — the standard choice for sentence-level BLEU.
    AddOne,
    /// Replace zero matched counts with `epsilon` matches.
    Epsilon(f64),
}

/// Configuration for BLEU computation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BleuConfig {
    /// Maximum n-gram order (standard BLEU-4 uses 4).
    pub max_n: usize,
    /// Smoothing variant for zero counts.
    pub smoothing: Smoothing,
}

impl Default for BleuConfig {
    fn default() -> Self {
        Self {
            max_n: 4,
            smoothing: Smoothing::None,
        }
    }
}

impl BleuConfig {
    /// Standard sentence-level configuration: BLEU-4 with add-one smoothing.
    pub fn sentence() -> Self {
        Self {
            max_n: 4,
            smoothing: Smoothing::AddOne,
        }
    }
}

/// Counts n-grams of order `n` in `tokens`.
fn ngram_counts<T: Eq + Hash + Clone>(tokens: &[T], n: usize) -> HashMap<Vec<T>, usize> {
    let mut map = HashMap::new();
    if tokens.len() >= n {
        for w in tokens.windows(n) {
            *map.entry(w.to_vec()).or_insert(0) += 1;
        }
    }
    map
}

/// Reference-side n-gram counts, precomputed once per reference sentence.
///
/// Scoring one reference against many hypotheses (as Algorithm 2 does: every
/// model targeting destination sensor `j` is scored against the same test
/// sentence of `j`) recounts the reference n-grams on every call to
/// [`BleuStats::update`]. Precomputing them here and scoring via
/// [`sentence_bleu_pre`] or [`BleuStats::update_pre`] skips that work while
/// producing exactly the same integer match statistics — and therefore
/// bit-identical `f64` scores.
#[derive(Clone, Debug)]
pub struct RefNgrams<T> {
    /// Counts per order; index 0 holds unigrams, up to `max_n`-grams.
    counts: Vec<HashMap<Vec<T>, usize>>,
    /// Reference length in tokens (for the brevity penalty).
    len: usize,
}

impl<T: Eq + Hash + Clone> RefNgrams<T> {
    /// Precomputes counts for n-gram orders `1..=max_n` of `reference`.
    pub fn new(reference: &[T], max_n: usize) -> Self {
        Self {
            counts: (1..=max_n).map(|n| ngram_counts(reference, n)).collect(),
            len: reference.len(),
        }
    }

    /// The maximum n-gram order these counts cover.
    pub fn max_n(&self) -> usize {
        self.counts.len()
    }

    /// Reference length in tokens.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the reference sentence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Aggregated n-gram match statistics for one corpus.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BleuStats {
    /// Clipped matched n-gram counts per order (index 0 = unigrams).
    pub matched: Vec<u64>,
    /// Total hypothesis n-gram counts per order.
    pub total: Vec<u64>,
    /// Total hypothesis length (tokens).
    pub hyp_len: u64,
    /// Total effective reference length (tokens).
    pub ref_len: u64,
}

impl BleuStats {
    /// Creates empty statistics for n-gram orders up to `max_n`.
    pub fn new(max_n: usize) -> Self {
        Self {
            matched: vec![0; max_n],
            total: vec![0; max_n],
            hyp_len: 0,
            ref_len: 0,
        }
    }

    /// Accumulates statistics for one hypothesis/reference pair.
    pub fn update<T: Eq + Hash + Clone>(&mut self, hyp: &[T], reference: &[T]) {
        let max_n = self.matched.len();
        self.hyp_len += hyp.len() as u64;
        self.ref_len += reference.len() as u64;
        for n in 1..=max_n {
            let hyp_counts = ngram_counts(hyp, n);
            let ref_counts = ngram_counts(reference, n);
            let mut matched = 0u64;
            let mut total = 0u64;
            for (gram, &c) in &hyp_counts {
                total += c as u64;
                if let Some(&rc) = ref_counts.get(gram) {
                    matched += c.min(rc) as u64;
                }
            }
            self.matched[n - 1] += matched;
            self.total[n - 1] += total;
        }
    }

    /// Accumulates statistics for one hypothesis against a precomputed
    /// reference. Equivalent to [`BleuStats::update`] — identical integer
    /// counts, hence bit-identical scores — without recounting the
    /// reference n-grams.
    ///
    /// # Panics
    ///
    /// Panics if `reference` was built with a different `max_n`.
    pub fn update_pre<T: Eq + Hash + Clone>(&mut self, hyp: &[T], reference: &RefNgrams<T>) {
        let max_n = self.matched.len();
        assert_eq!(
            reference.max_n(),
            max_n,
            "reference n-grams precomputed for a different max_n"
        );
        self.hyp_len += hyp.len() as u64;
        self.ref_len += reference.len() as u64;
        for n in 1..=max_n {
            let hyp_counts = ngram_counts(hyp, n);
            let ref_counts = &reference.counts[n - 1];
            let mut matched = 0u64;
            let mut total = 0u64;
            for (gram, &c) in &hyp_counts {
                total += c as u64;
                if let Some(&rc) = ref_counts.get(gram) {
                    matched += c.min(rc) as u64;
                }
            }
            self.matched[n - 1] += matched;
            self.total[n - 1] += total;
        }
    }

    /// Merges statistics from another corpus chunk.
    ///
    /// # Panics
    ///
    /// Panics if the two statistics track different n-gram orders.
    pub fn merge(&mut self, other: &BleuStats) {
        assert_eq!(
            self.matched.len(),
            other.matched.len(),
            "mismatched max_n in merge"
        );
        for (a, b) in self.matched.iter_mut().zip(&other.matched) {
            *a += b;
        }
        for (a, b) in self.total.iter_mut().zip(&other.total) {
            *a += b;
        }
        self.hyp_len += other.hyp_len;
        self.ref_len += other.ref_len;
    }

    /// Final BLEU score in `[0, 100]` under the given smoothing.
    pub fn score(&self, smoothing: Smoothing) -> f64 {
        let max_n = self.matched.len();
        if self.hyp_len == 0 {
            return 0.0;
        }
        let mut log_sum = 0.0;
        for n in 0..max_n {
            let (matched, total) = match smoothing {
                Smoothing::AddOne if n > 0 => {
                    (self.matched[n] as f64 + 1.0, self.total[n] as f64 + 1.0)
                }
                _ => (self.matched[n] as f64, self.total[n] as f64),
            };
            let p = if total > 0.0 {
                match smoothing {
                    Smoothing::Epsilon(eps) if matched == 0.0 => eps / total,
                    _ => matched / total,
                }
            } else {
                0.0
            };
            if p <= 0.0 {
                return 0.0;
            }
            log_sum += p.ln() / max_n as f64;
        }
        let bp = if self.hyp_len >= self.ref_len {
            1.0
        } else {
            (1.0 - self.ref_len as f64 / self.hyp_len as f64).exp()
        };
        100.0 * bp * log_sum.exp()
    }
}

/// Corpus-level BLEU of hypothesis sentences against one reference each.
///
/// Returns a score in `[0, 100]`; higher is better. Sentence pairs are
/// matched by index.
///
/// # Panics
///
/// Panics if `hyps.len() != refs.len()`.
pub fn corpus_bleu<T: Eq + Hash + Clone>(
    hyps: &[Vec<T>],
    refs: &[Vec<T>],
    cfg: &BleuConfig,
) -> f64 {
    assert_eq!(
        hyps.len(),
        refs.len(),
        "hypothesis/reference count mismatch"
    );
    let mut stats = BleuStats::new(cfg.max_n);
    for (h, r) in hyps.iter().zip(refs) {
        stats.update(h, r);
    }
    stats.score(cfg.smoothing)
}

/// Sentence-level BLEU with the configured smoothing (use
/// [`BleuConfig::sentence`] for the standard smoothed variant).
pub fn sentence_bleu<T: Eq + Hash + Clone>(hyp: &[T], reference: &[T], cfg: &BleuConfig) -> f64 {
    let mut stats = BleuStats::new(cfg.max_n);
    stats.update(hyp, reference);
    stats.score(cfg.smoothing)
}

/// Sentence-level BLEU against a precomputed reference; bit-identical to
/// [`sentence_bleu`] on the same reference tokens.
///
/// # Panics
///
/// Panics if `reference` was built with a different `max_n` than `cfg.max_n`.
pub fn sentence_bleu_pre<T: Eq + Hash + Clone>(
    hyp: &[T],
    reference: &RefNgrams<T>,
    cfg: &BleuConfig,
) -> f64 {
    let mut stats = BleuStats::new(cfg.max_n);
    stats.update_pre(hyp, reference);
    stats.score(cfg.smoothing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn perfect_match_scores_100() {
        let h = vec![vec![1u32, 2, 3, 4, 5, 6]];
        let score = corpus_bleu(&h, &h, &BleuConfig::default());
        assert!((score - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_tokens_score_0() {
        let h = vec![vec![1u32, 2, 3, 4, 5]];
        let r = vec![vec![6u32, 7, 8, 9, 10]];
        assert_eq!(corpus_bleu(&h, &r, &BleuConfig::default()), 0.0);
        assert_eq!(corpus_bleu(&h, &r, &BleuConfig::sentence()), 0.0);
    }

    #[test]
    fn papineni_clipping_example() {
        // "the the the the the the the" vs "the cat is on the mat":
        // clipped unigram precision is 2/7.
        let h = words("the the the the the the the");
        let r = words("the cat is on the mat");
        let mut stats = BleuStats::new(1);
        stats.update(&h, &r);
        assert_eq!(stats.matched[0], 2);
        assert_eq!(stats.total[0], 7);
        let score = stats.score(Smoothing::None);
        assert!((score - 100.0 * 2.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn brevity_penalty_applies_to_short_hypotheses() {
        // Hypothesis is a strict prefix of the reference: all precisions are
        // 1 but the hypothesis is half as long, so BP = exp(1 - 2) = e^-1.
        let h = vec![vec![1u32, 2, 3, 4]];
        let r = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let score = corpus_bleu(&h, &r, &BleuConfig::default());
        assert!((score - 100.0 * (-1.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn no_brevity_penalty_for_long_hypotheses() {
        let h = vec![vec![1u32, 2, 3, 4, 5, 1, 2, 3, 4, 5]];
        let r = vec![vec![1u32, 2, 3, 4, 5]];
        // Precisions < 1 but BP = 1; score must be strictly positive.
        let score = corpus_bleu(&h, &r, &BleuConfig::default());
        assert!(score > 0.0 && score < 100.0);
    }

    #[test]
    fn smoothing_rescues_zero_higher_order() {
        // One shared unigram, no shared bigrams.
        let h = words("a x");
        let r = words("a y");
        let unsmoothed = sentence_bleu(&h, &r, &BleuConfig::default());
        let smoothed = sentence_bleu(&h, &r, &BleuConfig::sentence());
        assert_eq!(unsmoothed, 0.0);
        assert!(smoothed > 0.0);
    }

    #[test]
    fn epsilon_smoothing_positive_but_tiny() {
        let h = words("a x c y e");
        let r = words("a z c w e");
        let cfg = BleuConfig {
            max_n: 4,
            smoothing: Smoothing::Epsilon(0.1),
        };
        let s = sentence_bleu(&h, &r, &cfg);
        assert!(s > 0.0 && s < 50.0);
    }

    #[test]
    fn corpus_beats_worst_sentence() {
        // A corpus mixing perfect and imperfect sentences scores between.
        let hyps = vec![vec![1u32, 2, 3, 4, 5], vec![1u32, 2, 3, 9, 9]];
        let refs = vec![vec![1u32, 2, 3, 4, 5], vec![1u32, 2, 3, 4, 5]];
        let cfg = BleuConfig::sentence();
        let corpus = corpus_bleu(&hyps, &refs, &cfg);
        let bad = sentence_bleu(&hyps[1], &refs[1], &cfg);
        let good = sentence_bleu(&hyps[0], &refs[0], &cfg);
        assert!(corpus > bad && corpus <= good);
    }

    #[test]
    fn empty_hypothesis_scores_zero() {
        let h: Vec<Vec<u32>> = vec![vec![]];
        let r = vec![vec![1u32, 2, 3]];
        assert_eq!(corpus_bleu(&h, &r, &BleuConfig::default()), 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let h1 = vec![1u32, 2, 3, 4, 5];
        let h2 = vec![2u32, 3, 4, 5, 6];
        let r1 = vec![1u32, 2, 3, 4, 6];
        let r2 = vec![2u32, 3, 4, 5, 6];
        let mut all = BleuStats::new(4);
        all.update(&h1, &r1);
        all.update(&h2, &r2);
        let mut a = BleuStats::new(4);
        a.update(&h1, &r1);
        let mut b = BleuStats::new(4);
        b.update(&h2, &r2);
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn shorter_ngram_order_on_short_sentences() {
        let h = vec![vec![1u32, 2]];
        let r = vec![vec![1u32, 2]];
        let cfg = BleuConfig {
            max_n: 4,
            smoothing: Smoothing::AddOne,
        };
        // With add-one smoothing, 3-gram/4-gram precisions become 1/1.
        let s = corpus_bleu(&h, &r, &cfg);
        assert!(s > 0.0);
    }

    #[test]
    fn empty_hypothesis_zero_under_every_smoothing() {
        let r = vec![1u32, 2, 3];
        for smoothing in [Smoothing::None, Smoothing::AddOne, Smoothing::Epsilon(0.5)] {
            let cfg = BleuConfig {
                max_n: 4,
                smoothing,
            };
            assert_eq!(sentence_bleu(&[], &r, &cfg), 0.0, "{smoothing:?}");
        }
    }

    #[test]
    fn empty_corpus_scores_zero() {
        let none: Vec<Vec<u32>> = Vec::new();
        assert_eq!(corpus_bleu(&none, &none, &BleuConfig::sentence()), 0.0);
    }

    #[test]
    fn empty_reference_epsilon_hand_computed() {
        // hyp = [1, 2, 3], ref = []: nothing matches, but Epsilon replaces
        // each zero matched count. p1 = 0.3/3, p2 = 0.3/2; no brevity penalty
        // (hypothesis is the longer side), so
        // BLEU = 100 * sqrt(0.1 * 0.15).
        let cfg = BleuConfig {
            max_n: 2,
            smoothing: Smoothing::Epsilon(0.3),
        };
        let s = sentence_bleu(&[1u32, 2, 3], &[], &cfg);
        assert!(
            (s - 100.0 * (0.1f64 * 0.15).sqrt()).abs() < 1e-9,
            "score {s}"
        );
        // None and AddOne leave the unsmoothed unigram precision at 0/3.
        for smoothing in [Smoothing::None, Smoothing::AddOne] {
            let cfg = BleuConfig {
                max_n: 2,
                smoothing,
            };
            assert_eq!(sentence_bleu(&[1u32, 2, 3], &[], &cfg), 0.0);
        }
    }

    #[test]
    fn sentence_shorter_than_max_n() {
        // A two-token sentence has no 3-grams or 4-grams at all (total = 0).
        let h = vec![1u32, 2];
        // Without smoothing the missing orders zero the score, and Epsilon
        // only rescues zero *matches*, not zero totals.
        for smoothing in [Smoothing::None, Smoothing::Epsilon(0.1)] {
            let cfg = BleuConfig {
                max_n: 4,
                smoothing,
            };
            assert_eq!(sentence_bleu(&h, &h, &cfg), 0.0, "{smoothing:?}");
        }
        // Add-one turns each missing order into (0+1)/(0+1) = 1, so a perfect
        // short sentence scores a perfect 100.
        let s = sentence_bleu(&h, &h, &BleuConfig::sentence());
        assert!((s - 100.0).abs() < 1e-9, "score {s}");
    }

    #[test]
    fn addone_smoothing_hand_computed() {
        // hyp = a b c d, ref = a b x d: unigram precision 3/4 (unsmoothed —
        // add-one applies only to n > 1), bigram matched {ab} giving
        // (1+1)/(3+1) = 1/2, equal lengths so BP = 1:
        // BLEU-2 = 100 * sqrt(3/4 * 1/2).
        let h = words("a b c d");
        let r = words("a b x d");
        let cfg = BleuConfig {
            max_n: 2,
            smoothing: Smoothing::AddOne,
        };
        let s = sentence_bleu(&h, &r, &cfg);
        assert!(
            (s - 100.0 * (0.75f64 * 0.5).sqrt()).abs() < 1e-9,
            "score {s}"
        );
    }

    #[test]
    fn epsilon_smoothing_hand_computed() {
        // hyp = a b, ref = a c: p1 = 1/2, bigram matched 0 of 1 so
        // p2 = 0.5/1; BLEU-2 = 100 * sqrt(1/2 * 1/2) = 50 exactly.
        let h = words("a b");
        let r = words("a c");
        let cfg = BleuConfig {
            max_n: 2,
            smoothing: Smoothing::Epsilon(0.5),
        };
        let s = sentence_bleu(&h, &r, &cfg);
        assert!((s - 50.0).abs() < 1e-9, "score {s}");
    }

    #[test]
    fn precomputed_reference_matches_direct() {
        let hyps = [
            words("the cat sat on the mat"),
            words("the the the the the the the"),
            words("a completely different sentence"),
            vec![],
        ];
        let r = words("the cat is on the mat");
        for cfg in [BleuConfig::default(), BleuConfig::sentence()] {
            let pre = RefNgrams::new(&r, cfg.max_n);
            for h in &hyps {
                let direct = sentence_bleu(h, &r, &cfg);
                let fast = sentence_bleu_pre(h, &pre, &cfg);
                assert_eq!(direct.to_bits(), fast.to_bits(), "hyp {h:?}");
            }
        }
    }

    #[test]
    fn precomputed_empty_reference() {
        let pre = RefNgrams::<u32>::new(&[], 4);
        assert!(pre.is_empty());
        assert_eq!(pre.max_n(), 4);
        let cfg = BleuConfig::sentence();
        let direct = sentence_bleu(&[1u32, 2, 3], &[], &cfg);
        let fast = sentence_bleu_pre(&[1u32, 2, 3], &RefNgrams::new(&[], cfg.max_n), &cfg);
        assert_eq!(direct.to_bits(), fast.to_bits());
    }

    #[test]
    #[should_panic(expected = "different max_n")]
    fn precomputed_order_mismatch_panics() {
        let pre = RefNgrams::new(&[1u32, 2, 3], 2);
        let mut stats = BleuStats::new(4);
        stats.update_pre(&[1u32, 2], &pre);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn token_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
            proptest::collection::vec(0u8..6, 1..max_len)
        }

        proptest! {
            #[test]
            fn score_is_bounded(h in token_seq(20), r in token_seq(20)) {
                for cfg in [BleuConfig::default(), BleuConfig::sentence()] {
                    let s = sentence_bleu(&h, &r, &cfg);
                    prop_assert!((0.0..=100.0 + 1e-9).contains(&s), "score {}", s);
                }
            }

            #[test]
            fn identity_is_perfect(h in proptest::collection::vec(0u8..6, 4..20)) {
                let s = sentence_bleu(&h, &h, &BleuConfig::default());
                prop_assert!((s - 100.0).abs() < 1e-9);
            }

            #[test]
            fn identity_is_maximal_under_smoothing(h in token_seq(20), r in token_seq(20)) {
                let cfg = BleuConfig::sentence();
                let self_score = sentence_bleu(&h, &h, &cfg);
                let cross = sentence_bleu(&r, &h, &cfg);
                prop_assert!(cross <= self_score + 1e-9);
            }

            #[test]
            fn precomputed_bit_identical(h in token_seq(20), r in token_seq(20)) {
                for cfg in [BleuConfig::default(), BleuConfig::sentence()] {
                    let pre = RefNgrams::new(&r, cfg.max_n);
                    let direct = sentence_bleu(&h, &r, &cfg);
                    let fast = sentence_bleu_pre(&h, &pre, &cfg);
                    prop_assert_eq!(direct.to_bits(), fast.to_bits());
                }
            }

            #[test]
            fn merge_matches_batch(hs in proptest::collection::vec(token_seq(12), 1..6),
                                   rs in proptest::collection::vec(token_seq(12), 1..6)) {
                let n = hs.len().min(rs.len());
                let hs = &hs[..n];
                let rs = &rs[..n];
                let mut whole = BleuStats::new(3);
                let mut merged = BleuStats::new(3);
                for (h, r) in hs.iter().zip(rs) {
                    whole.update(h, r);
                    let mut part = BleuStats::new(3);
                    part.update(h, r);
                    merged.merge(&part);
                }
                prop_assert_eq!(whole, merged);
            }
        }
    }
}
