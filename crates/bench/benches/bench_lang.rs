//! Micro-benchmarks of the language pipeline: encryption, window
//! generation, and full segment encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use mdes_lang::{discretize::Scheme, Alphabet, LanguagePipeline, RawTrace, WindowConfig};
use std::hint::black_box;

fn toggling(name: &str, n: usize, period: usize) -> RawTrace {
    RawTrace::new(
        name,
        (0..n)
            .map(|t| {
                if (t / period).is_multiple_of(2) {
                    "on"
                } else {
                    "off"
                }
                .to_owned()
            })
            .collect(),
    )
}

fn bench_encrypt(c: &mut Criterion) {
    let trace = toggling("s", 10_000, 5);
    let alphabet = Alphabet::fit(&trace.events).expect("fit");
    c.bench_function("lang/encrypt_10k_events", |b| {
        b.iter(|| black_box(alphabet.encode(black_box(&trace.events))))
    });
}

fn bench_words(c: &mut Criterion) {
    let chars: Vec<u8> = (0..10_000).map(|t| ((t / 5) % 2) as u8).collect();
    let cfg = WindowConfig::default();
    c.bench_function("lang/words_10k_chars", |b| {
        b.iter(|| black_box(mdes_lang::window::words(black_box(&chars), &cfg).len()))
    });
}

fn bench_encode_segment(c: &mut Criterion) {
    let traces: Vec<RawTrace> = (0..8)
        .map(|i| toggling(&format!("s{i}"), 5_000, 3 + i))
        .collect();
    let pipeline = LanguagePipeline::fit(&traces, 0..2_500, WindowConfig::default()).expect("fit");
    c.bench_function("lang/encode_segment_8x2500", |b| {
        b.iter(|| {
            black_box(
                pipeline
                    .encode_segment(black_box(&traces), 2_500..5_000)
                    .expect("encode"),
            )
        })
    });
}

fn bench_discretize(c: &mut Criterion) {
    let values: Vec<f64> = (0..5_000).map(|i| (i as f64 * 0.37).sin() * 40.0).collect();
    let scheme = Scheme::fit_default(&values);
    c.bench_function("lang/discretize_5k_values", |b| {
        b.iter(|| black_box(scheme.apply_all(black_box(&values))))
    });
}

criterion_group!(
    benches,
    bench_encrypt,
    bench_words,
    bench_encode_segment,
    bench_discretize
);
criterion_main!(benches);
