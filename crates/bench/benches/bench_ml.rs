//! Micro-benchmarks of the baseline models: random-forest fit/predict,
//! one-class SVM fit, k-means, and Hawkes EM.

use criterion::{criterion_group, criterion_main, Criterion};
use mdes_ml::{
    Dataset, ForestConfig, Hawkes, HawkesConfig, KMeans, KMeansConfig, OneClassSvm, RandomForest,
    SvmConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn tabular(n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(1);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let y: Vec<usize> = x.iter().map(|r| usize::from(r[0] + r[1] > 1.0)).collect();
    Dataset::new(x, y)
}

fn bench_forest(c: &mut Criterion) {
    let data = tabular(400, 8);
    let cfg = ForestConfig {
        n_trees: 20,
        ..Default::default()
    };
    c.bench_function("ml/forest_fit_400x8", |b| {
        b.iter(|| black_box(RandomForest::fit(black_box(&data), &cfg)))
    });
    let forest = RandomForest::fit(&data, &cfg);
    c.bench_function("ml/forest_predict_400", |b| {
        b.iter(|| black_box(forest.predict(black_box(&data.x))))
    });
}

fn bench_svm(c: &mut Criterion) {
    let data = tabular(150, 8);
    let cfg = SvmConfig {
        max_epochs: 20,
        ..Default::default()
    };
    c.bench_function("ml/ocsvm_fit_150x8", |b| {
        b.iter(|| black_box(OneClassSvm::fit(black_box(&data), &cfg)))
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let data = tabular(500, 6);
    let cfg = KMeansConfig {
        k: 4,
        ..Default::default()
    };
    c.bench_function("ml/kmeans_fit_500x6", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(KMeans::fit(black_box(&data.x), &cfg, &mut rng))
        })
    });
}

fn bench_hawkes(c: &mut Criterion) {
    let truth = Hawkes::new(vec![0.3, 0.1], vec![vec![0.2, 0.1], vec![0.4, 0.0]], 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let events = truth.simulate(800.0, &mut rng);
    let cfg = HawkesConfig {
        iters: 10,
        ..Default::default()
    };
    c.bench_function("ml/hawkes_em_fit", |b| {
        b.iter(|| black_box(Hawkes::fit(black_box(&events), 2, 800.0, &cfg)))
    });
}

criterion_group!(benches, bench_forest, bench_svm, bench_kmeans, bench_hawkes);
criterion_main!(benches);
