//! Framework-level benchmarks: n-gram pair training (the Algorithm 1 inner
//! loop), the full pairwise sweep on a small plant, and Algorithm 2
//! detection throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mdes_core::{
    build_graph, detect, DetectionConfig, GraphBuildConfig, NgramConfig, NgramTranslator,
    Translator,
};
use mdes_graph::ScoreRange;
use mdes_lang::{LanguagePipeline, RawTrace, WindowConfig};
use std::hint::black_box;

fn toggling(name: &str, n: usize, period: usize, phase: usize) -> RawTrace {
    RawTrace::new(
        name,
        (0..n)
            .map(|t| {
                if ((t + phase) / period).is_multiple_of(2) {
                    "on"
                } else {
                    "off"
                }
                .to_owned()
            })
            .collect(),
    )
}

fn setup() -> (
    LanguagePipeline,
    Vec<mdes_lang::SentenceSet>,
    Vec<mdes_lang::SentenceSet>,
    Vec<RawTrace>,
) {
    let traces: Vec<RawTrace> = (0..6)
        .map(|i| toggling(&format!("s{i}"), 2_000, 4 + i % 3, i))
        .collect();
    let cfg = WindowConfig {
        word_len: 6,
        word_stride: 1,
        sent_len: 8,
        sent_stride: 8,
    };
    let pipeline = LanguagePipeline::fit(&traces, 0..1_000, cfg).expect("fit");
    let train = pipeline.encode_segment(&traces, 0..1_000).expect("train");
    let dev = pipeline.encode_segment(&traces, 1_000..1_500).expect("dev");
    (pipeline, train, dev, traces)
}

fn bench_ngram_fit(c: &mut Criterion) {
    let (_, train, _, _) = setup();
    let pairs: Vec<(Vec<u32>, Vec<u32>)> = train[0]
        .sentences
        .iter()
        .zip(&train[1].sentences)
        .map(|(s, t)| (s.clone(), t.clone()))
        .collect();
    c.bench_function("framework/ngram_fit_124_pairs", |b| {
        b.iter(|| {
            black_box(NgramTranslator::fit(
                black_box(&pairs),
                &NgramConfig::default(),
            ))
        })
    });
    let model = NgramTranslator::fit(&pairs, &NgramConfig::default());
    c.bench_function("framework/ngram_translate_len8", |b| {
        b.iter(|| black_box(model.translate(black_box(&pairs[0].0), 8)))
    });
}

fn bench_build_graph(c: &mut Criterion) {
    let (pipeline, train, dev, _) = setup();
    let cfg = GraphBuildConfig {
        threads: 1,
        ..GraphBuildConfig::default()
    };
    c.bench_function("framework/algorithm1_6_sensors", |b| {
        b.iter(|| black_box(build_graph(&pipeline, &train, &dev, &cfg).expect("build")))
    });
}

fn bench_detection(c: &mut Criterion) {
    let (pipeline, train, dev, traces) = setup();
    let cfg = GraphBuildConfig {
        threads: 1,
        ..GraphBuildConfig::default()
    };
    let trained = build_graph(&pipeline, &train, &dev, &cfg).expect("build");
    let test = pipeline
        .encode_segment(&traces, 1_500..2_000)
        .expect("test");
    let dcfg = DetectionConfig {
        valid_range: ScoreRange::closed(0.0, 100.0),
        ..DetectionConfig::default()
    };
    c.bench_function("framework/algorithm2_30_models", |b| {
        b.iter(|| black_box(detect(&trained, black_box(&test), &dcfg).expect("detect")))
    });
}

/// Before/after pair for the batched NMT dev decode: Algorithm 1 now scores
/// the whole dev set with one `translate_batch` call (one GEMM per decode
/// step for the segment) instead of decoding sentence by sentence.
fn bench_nmt_dev_decode(c: &mut Criterion) {
    use mdes_core::{train_translator, TranslatorConfig};
    use mdes_lang::Vocab;
    use mdes_nn::Seq2SeqConfig;

    let (pipeline, train, dev, _) = setup();
    let pairs: Vec<(Vec<u32>, Vec<u32>)> = train[0]
        .sentences
        .iter()
        .zip(&train[1].sentences)
        .map(|(s, t)| (s.clone(), t.clone()))
        .collect();
    let cfg = TranslatorConfig::Nmt(Seq2SeqConfig {
        embed_dim: 16,
        hidden: 16,
        train_steps: 30,
        ..Seq2SeqConfig::default()
    });
    let translator = train_translator(
        &cfg,
        &pairs,
        pipeline.languages()[0].vocab.size(),
        pipeline.languages()[1].vocab.size(),
        Vocab::BOS,
    )
    .expect("train");
    let srcs: Vec<&[u32]> = dev[0].sentences.iter().map(Vec::as_slice).collect();
    c.bench_function("framework/nmt_dev_decode_batched", |b| {
        b.iter(|| black_box(translator.translate_batch(black_box(&srcs), 8)))
    });
    c.bench_function("framework/nmt_dev_decode_per_sentence", |b| {
        b.iter(|| {
            black_box(
                srcs.iter()
                    .map(|s| translator.translate(s, 8))
                    .collect::<Vec<Vec<u32>>>(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_ngram_fit,
    bench_build_graph,
    bench_detection,
    bench_nmt_dev_decode
);
criterion_main!(benches);
