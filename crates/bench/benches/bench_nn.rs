//! Micro-benchmarks of the neural substrate: matrix products, LSTM steps,
//! seq2seq training steps and greedy decoding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mdes_nn::{Matrix, Seq2Seq, Seq2SeqConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::uniform(64, 64, 1.0, &mut rng);
    let b = Matrix::uniform(64, 64, 1.0, &mut rng);
    c.bench_function("matrix/matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b))))
    });
    c.bench_function("matrix/matmul_tn_64x64", |bench| {
        bench.iter(|| black_box(a.matmul_tn(black_box(&b))))
    });

    // Before/after pairs: the blocked kernels against the naive reference
    // loops they replaced (bit-identical output, see crates/nn/tests/parity.rs).
    let a = Matrix::uniform(128, 128, 1.0, &mut rng);
    let b = Matrix::uniform(128, 128, 1.0, &mut rng);
    c.bench_function("matrix/matmul_128x128", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b))))
    });
    c.bench_function("matrix/matmul_128x128_reference", |bench| {
        bench.iter(|| black_box(mdes_nn::reference::matmul(black_box(&a), black_box(&b))))
    });
    c.bench_function("matrix/matmul_tn_128x128", |bench| {
        bench.iter(|| black_box(a.matmul_tn(black_box(&b))))
    });
    c.bench_function("matrix/matmul_tn_128x128_reference", |bench| {
        bench.iter(|| black_box(mdes_nn::reference::matmul_tn(black_box(&a), black_box(&b))))
    });
    c.bench_function("matrix/matmul_nt_128x128", |bench| {
        bench.iter(|| black_box(a.matmul_nt(black_box(&b))))
    });
    c.bench_function("matrix/matmul_nt_128x128_reference", |bench| {
        bench.iter(|| black_box(mdes_nn::reference::matmul_nt(black_box(&a), black_box(&b))))
    });
}

fn bench_lstm_step(c: &mut Criterion) {
    use mdes_nn::lstm::{LstmLayer, LstmState};
    use mdes_nn::{ParamSet, Tape};
    let mut rng = StdRng::seed_from_u64(2);
    let mut params = ParamSet::new();
    let layer = LstmLayer::new(&mut params, 32, 32, &mut rng);
    let x_value = Matrix::uniform(8, 32, 1.0, &mut rng);
    // Warm (nonzero) recurrent state: a zero state would let the reference
    // kernels' `== 0.0` skip dodge the whole hidden GEMM, which no real
    // mid-sequence step can. One tape is reused across iterations, the
    // steady-state shape of the training loop.
    let h_value = Matrix::uniform(8, 32, 0.5, &mut rng);
    let c_value = Matrix::uniform(8, 32, 0.5, &mut rng);
    let setup = || {
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape, &params);
        let state = LstmState {
            h: tape.leaf(h_value.clone()),
            c: tape.leaf(c_value.clone()),
        };
        let x = tape.leaf(x_value.clone());
        (tape, bound, state, x)
    };
    c.bench_function("lstm/step_batch8_hidden32", |bench| {
        bench.iter_batched(
            setup,
            |(mut tape, bound, state, x)| black_box(bound.step(&mut tape, x, state)),
            BatchSize::SmallInput,
        )
    });
    // The pre-fusion two-GEMM step, kept as the before side of the pair.
    c.bench_function("lstm/step_batch8_hidden32_unfused", |bench| {
        bench.iter_batched(
            setup,
            |(mut tape, bound, state, x)| black_box(bound.step_unfused(&mut tape, x, state)),
            BatchSize::SmallInput,
        )
    });
    // Steady-state recurrence on one reused tape: 16 fused steps plus the
    // recycling backward pass, the shape of a seq2seq training iteration.
    c.bench_function("lstm/forward_backward_16steps", |bench| {
        let mut tape = Tape::new();
        let mut p = params.clone();
        bench.iter(|| {
            tape.reset();
            let bound = layer.bind(&mut tape, &p);
            let mut state = layer.zero_state(&mut tape, 8);
            let x = tape.leaf(x_value.clone());
            for _ in 0..16 {
                state = bound.step(&mut tape, x, state);
            }
            let loss = tape.cross_entropy(state.h, &[0, 1, 2, 3, 4, 5, 6, 7]);
            p.zero_grads();
            tape.backward_accumulate(loss, &mut p);
            black_box(p.grad_norm())
        })
    });
}

fn shifted_corpus(n: usize, len: usize, vocab: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..n)
        .map(|_| {
            let src: Vec<usize> = (0..len).map(|_| rng.gen_range(2..vocab)).collect();
            let tgt: Vec<usize> = src.iter().map(|&t| (t + 1) % vocab).collect();
            (src, tgt)
        })
        .collect()
}

fn bench_seq2seq(c: &mut Criterion) {
    let corpus = shifted_corpus(32, 8, 12);
    let cfg = Seq2SeqConfig {
        embed_dim: 16,
        hidden: 16,
        train_steps: 1,
        batch_size: 8,
        ..Seq2SeqConfig::default()
    };
    c.bench_function("seq2seq/train_step_len8", |bench| {
        bench.iter_batched(
            || Seq2Seq::new(12, 12, 1, cfg.clone()),
            |mut model| {
                model.fit(black_box(&corpus)).expect("fit");
                black_box(model)
            },
            BatchSize::SmallInput,
        )
    });

    let mut trained = Seq2Seq::new(
        12,
        12,
        1,
        Seq2SeqConfig {
            train_steps: 40,
            ..cfg
        },
    );
    trained.fit(&corpus).expect("fit");
    let src = corpus[0].0.clone();
    c.bench_function("seq2seq/greedy_decode_len8", |bench| {
        bench.iter(|| black_box(trained.translate(black_box(&src), 8).expect("translate")))
    });
}

criterion_group!(benches, bench_matmul, bench_lstm_step, bench_seq2seq);
criterion_main!(benches);
