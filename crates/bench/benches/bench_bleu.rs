//! Micro-benchmarks of BLEU scoring — the inner loop of both Algorithm 1
//! (corpus scoring per pair) and Algorithm 2 (sentence scoring per window).

use criterion::{criterion_group, criterion_main, Criterion};
use mdes_bleu::{corpus_bleu, sentence_bleu, BleuConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn sentences(n: usize, len: usize, vocab: u32, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen_range(0..vocab)).collect())
        .collect()
}

fn bench_sentence(c: &mut Criterion) {
    let hyp = &sentences(1, 20, 30, 1)[0];
    let reference = &sentences(1, 20, 30, 2)[0];
    let cfg = BleuConfig::sentence();
    c.bench_function("bleu/sentence_len20", |b| {
        b.iter(|| black_box(sentence_bleu(black_box(hyp), black_box(reference), &cfg)))
    });
}

fn bench_corpus(c: &mut Criterion) {
    let hyps = sentences(200, 20, 30, 3);
    let refs = sentences(200, 20, 30, 4);
    let cfg = BleuConfig::sentence();
    c.bench_function("bleu/corpus_200x20", |b| {
        b.iter(|| black_box(corpus_bleu(black_box(&hyps), black_box(&refs), &cfg)))
    });
}

criterion_group!(benches, bench_sentence, bench_corpus);
criterion_main!(benches);
