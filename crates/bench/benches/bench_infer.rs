//! Micro-benchmarks of the tape-free inference engine against the tape
//! oracle it replaced: greedy single-sentence decoding, batched decoding and
//! beam search, on a paper-scale model. The `*_tape` entries are the before
//! side of each pair (bit-identical output, see
//! `crates/nn/tests/infer_parity.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use mdes_nn::{Seq2Seq, Seq2SeqConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn paper_scale_model(vocab: usize) -> Seq2Seq {
    // Embedding/hidden sizes in the range the plant experiments use; weights
    // stay untrained — decode cost does not depend on the weight values.
    let cfg = Seq2SeqConfig {
        embed_dim: 32,
        hidden: 64,
        ..Seq2SeqConfig::default()
    };
    Seq2Seq::new(vocab, vocab, 0, cfg)
}

fn random_sentences(n: usize, len: usize, vocab: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen_range(0..vocab)).collect())
        .collect()
}

fn bench_greedy(c: &mut Criterion) {
    let vocab = 24;
    let model = paper_scale_model(vocab);
    let src = random_sentences(1, 10, vocab, 7).remove(0);
    // Warm the packed-weight cache so the engine side measures the
    // steady-state push, not the one-off context build.
    black_box(model.translate(&src, 10).expect("warm"));
    c.bench_function("infer/greedy_len10", |bench| {
        bench.iter(|| black_box(model.translate(black_box(&src), 10).expect("engine")))
    });
    c.bench_function("infer/greedy_len10_tape", |bench| {
        bench.iter(|| black_box(model.translate_tape(black_box(&src), 10).expect("tape")))
    });
}

fn bench_batched(c: &mut Criterion) {
    let vocab = 24;
    let model = paper_scale_model(vocab);
    let sentences = random_sentences(16, 10, vocab, 8);
    let srcs: Vec<&[usize]> = sentences.iter().map(Vec::as_slice).collect();
    black_box(model.translate_batch(&srcs, 10).expect("warm"));
    c.bench_function("infer/batch16_len10", |bench| {
        bench.iter(|| black_box(model.translate_batch(black_box(&srcs), 10).expect("engine")))
    });
    c.bench_function("infer/batch16_len10_tape", |bench| {
        bench.iter(|| {
            black_box(
                model
                    .translate_batch_tape(black_box(&srcs), 10)
                    .expect("tape"),
            )
        })
    });
}

fn bench_beam(c: &mut Criterion) {
    let vocab = 24;
    let model = paper_scale_model(vocab);
    let src = random_sentences(1, 10, vocab, 9).remove(0);
    black_box(model.translate_beam(&src, 10, 3).expect("warm"));
    c.bench_function("infer/beam3_len10", |bench| {
        bench.iter(|| {
            black_box(
                model
                    .translate_beam(black_box(&src), 10, 3)
                    .expect("engine"),
            )
        })
    });
    c.bench_function("infer/beam3_len10_tape", |bench| {
        bench.iter(|| {
            black_box(
                model
                    .translate_beam_tape(black_box(&src), 10, 3)
                    .expect("tape"),
            )
        })
    });
}

criterion_group!(benches, bench_greedy, bench_batched, bench_beam);
criterion_main!(benches);
