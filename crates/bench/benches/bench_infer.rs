//! Micro-benchmarks of the tape-free inference engine against the tape
//! oracle it replaced: greedy single-sentence decoding, batched decoding and
//! beam search, on a paper-scale model. The `*_tape` entries are the before
//! side of each pair (bit-identical output, see
//! `crates/nn/tests/infer_parity.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use mdes_nn::{Seq2Seq, Seq2SeqConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn paper_scale_model(vocab: usize) -> Seq2Seq {
    // Embedding/hidden sizes in the range the plant experiments use; weights
    // stay untrained — decode cost does not depend on the weight values.
    let cfg = Seq2SeqConfig {
        embed_dim: 32,
        hidden: 64,
        ..Seq2SeqConfig::default()
    };
    Seq2Seq::new(vocab, vocab, 0, cfg)
}

fn random_sentences(n: usize, len: usize, vocab: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen_range(0..vocab)).collect())
        .collect()
}

fn bench_greedy(c: &mut Criterion) {
    let vocab = 24;
    let model = paper_scale_model(vocab);
    let src = random_sentences(1, 10, vocab, 7).remove(0);
    // Warm the packed-weight cache so the engine side measures the
    // steady-state push, not the one-off context build.
    black_box(model.translate(&src, 10).expect("warm"));
    c.bench_function("infer/greedy_len10", |bench| {
        bench.iter(|| black_box(model.translate(black_box(&src), 10).expect("engine")))
    });
    c.bench_function("infer/greedy_len10_tape", |bench| {
        bench.iter(|| black_box(model.translate_tape(black_box(&src), 10).expect("tape")))
    });
}

fn bench_batched(c: &mut Criterion) {
    let vocab = 24;
    let model = paper_scale_model(vocab);
    let sentences = random_sentences(16, 10, vocab, 8);
    let srcs: Vec<&[usize]> = sentences.iter().map(Vec::as_slice).collect();
    black_box(model.translate_batch(&srcs, 10).expect("warm"));
    c.bench_function("infer/batch16_len10", |bench| {
        bench.iter(|| black_box(model.translate_batch(black_box(&srcs), 10).expect("engine")))
    });
    c.bench_function("infer/batch16_len10_tape", |bench| {
        bench.iter(|| {
            black_box(
                model
                    .translate_batch_tape(black_box(&srcs), 10)
                    .expect("tape"),
            )
        })
    });
}

fn bench_beam(c: &mut Criterion) {
    let vocab = 24;
    let model = paper_scale_model(vocab);
    let src = random_sentences(1, 10, vocab, 9).remove(0);
    black_box(model.translate_beam(&src, 10, 3).expect("warm"));
    c.bench_function("infer/beam3_len10", |bench| {
        bench.iter(|| {
            black_box(
                model
                    .translate_beam(black_box(&src), 10, 3)
                    .expect("engine"),
            )
        })
    });
    c.bench_function("infer/beam3_len10_tape", |bench| {
        bench.iter(|| {
            black_box(
                model
                    .translate_beam_tape(black_box(&src), 10, 3)
                    .expect("tape"),
            )
        })
    });
}

/// Frozen-artifact decode across the three weight encodings, through the
/// same shared arena a serving worker uses. The `bytes` field of each JSON
/// record carries the resident weight footprint, so one `BENCH_infer.json`
/// shows the size/speed trade of f16/int8 against the f32 baseline.
fn bench_quantized(c: &mut Criterion) {
    use mdes_nn::{InferArena, QuantMode};
    let vocab = 24;
    let model = paper_scale_model(vocab);
    let spec = model.freeze();
    let sentences = random_sentences(16, 10, vocab, 11);
    let srcs: Vec<&[usize]> = sentences.iter().map(Vec::as_slice).collect();
    let mut arena = InferArena::new();
    black_box(arena.translate_batch(&spec, &srcs, 10));
    c.bench_function("infer/batch16_len10_frozen_f32", |bench| {
        bench.bytes(spec.approx_bytes() as u64);
        bench.iter(|| black_box(arena.translate_batch(black_box(&spec), &srcs, 10)))
    });
    for mode in [QuantMode::F16, QuantMode::Int8] {
        let (qspec, report) = spec.quantize(mode).expect("quantize");
        assert!(report.matrices > 0);
        black_box(arena.translate_batch(&qspec, &srcs, 10));
        c.bench_function(&format!("infer/batch16_len10_frozen_{mode}"), |bench| {
            bench.bytes(qspec.approx_bytes() as u64);
            bench.iter(|| black_box(arena.translate_batch(black_box(&qspec), &srcs, 10)))
        });
    }
}

/// The serving regime the quantized encodings exist for: a worker sweeping
/// many pair models per window, so every model's weights stream through the
/// cache once per round instead of staying resident. Halving (f16) or
/// quartering (int8) the weight bytes is a bandwidth win here, not just a
/// disk-size win — this is where the measured decode speedup shows up.
fn bench_quantized_sweep(c: &mut Criterion) {
    use mdes_nn::{InferArena, QuantMode};
    let vocab = 32;
    let models = 24;
    let cfg = Seq2SeqConfig {
        embed_dim: 64,
        hidden: 128,
        ..Seq2SeqConfig::default()
    };
    let specs: Vec<_> = (0..models)
        .map(|_| Seq2Seq::new(vocab, vocab, 0, cfg.clone()).freeze())
        .collect();
    let sentences = random_sentences(4, 6, vocab, 13);
    let srcs: Vec<&[usize]> = sentences.iter().map(Vec::as_slice).collect();
    let mut arena = InferArena::new();
    let total_bytes = |bytes_each: usize| (bytes_each * models) as u64;

    black_box(arena.translate_batch(&specs[0], &srcs, 6));
    c.bench_function("infer/sweep24_models_f32", |bench| {
        bench.bytes(total_bytes(specs[0].approx_bytes()));
        bench.iter(|| {
            for spec in &specs {
                black_box(arena.translate_batch(spec, &srcs, 6));
            }
        })
    });
    for mode in [QuantMode::F16, QuantMode::Int8] {
        let qspecs: Vec<_> = specs
            .iter()
            .map(|s| s.quantize(mode).expect("quantize").0)
            .collect();
        black_box(arena.translate_batch(&qspecs[0], &srcs, 6));
        c.bench_function(&format!("infer/sweep24_models_{mode}"), |bench| {
            bench.bytes(total_bytes(qspecs[0].approx_bytes()));
            bench.iter(|| {
                for qspec in &qspecs {
                    black_box(arena.translate_batch(qspec, &srcs, 6));
                }
            })
        });
    }
}

criterion_group!(
    benches,
    bench_greedy,
    bench_batched,
    bench_beam,
    bench_quantized,
    bench_quantized_sweep
);
criterion_main!(benches);
