//! Micro-benchmarks of relationship-graph operations: subgraph extraction,
//! degree scans, connected components and Walktrap.

use criterion::{criterion_group, criterion_main, Criterion};
use mdes_graph::{pagerank, walktrap, PageRankConfig, RelGraph, ScoreRange, WalktrapConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn dense_graph(n: usize) -> RelGraph {
    let mut rng = StdRng::seed_from_u64(9);
    let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
    let mut g = RelGraph::new(names);
    for a in 0..n {
        for b in 0..n {
            if a != b {
                g.set_score(a, b, rng.gen_range(0.0..100.0));
            }
        }
    }
    g
}

fn clustered_graph(clusters: usize, size: usize) -> RelGraph {
    let n = clusters * size;
    let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
    let mut g = RelGraph::new(names);
    for c in 0..clusters {
        for a in c * size..(c + 1) * size {
            for b in c * size..(c + 1) * size {
                if a != b {
                    g.set_score(a, b, 85.0);
                }
            }
        }
    }
    g
}

fn bench_subgraph(c: &mut Criterion) {
    let g = dense_graph(128);
    let range = ScoreRange::best_detection();
    c.bench_function("graph/subgraph_128_dense", |b| {
        b.iter(|| black_box(g.subgraph(black_box(&range))))
    });
}

fn bench_degrees(c: &mut Criterion) {
    let g = dense_graph(128);
    c.bench_function("graph/popular_scan_128", |b| {
        b.iter(|| black_box(g.popular(black_box(100))))
    });
}

fn bench_components(c: &mut Criterion) {
    let g = clustered_graph(8, 8);
    c.bench_function("graph/components_64", |b| {
        b.iter(|| black_box(g.weakly_connected_components()))
    });
}

fn bench_walktrap(c: &mut Criterion) {
    let g = clustered_graph(4, 8);
    let cfg = WalktrapConfig::default();
    c.bench_function("graph/walktrap_32", |b| {
        b.iter(|| black_box(walktrap(black_box(&g), &cfg)))
    });
}

fn bench_pagerank(c: &mut Criterion) {
    let g = dense_graph(64);
    let cfg = PageRankConfig::default();
    c.bench_function("graph/pagerank_64_dense", |b| {
        b.iter(|| black_box(pagerank(black_box(&g), &cfg)))
    });
}

criterion_group!(
    benches,
    bench_subgraph,
    bench_degrees,
    bench_components,
    bench_walktrap,
    bench_pagerank
);
criterion_main!(benches);
