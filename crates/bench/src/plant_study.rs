//! Shared harness for the physical-plant case study (paper §III).
//!
//! Every plant experiment (Figs. 2–9, Table I) starts from the same fitted
//! state: a generated plant, the language pipeline, and the trained
//! relationship graph. [`PlantStudy::run`] builds that state once; the
//! experiment binaries then extract the artifact they reproduce.

use mdes_core::{
    build_graph, detect, DetectionConfig, GraphBuildConfig, TrainedGraph, TranslatorConfig,
};
use mdes_graph::ScoreRange;
use mdes_lang::{LanguagePipeline, WindowConfig};
use mdes_synth::plant::{generate, PlantConfig, PlantData};

/// Scale of a plant study.
#[derive(Clone, Debug)]
pub struct PlantScale {
    /// Number of sensors.
    pub n_sensors: usize,
    /// Samples per day.
    pub minutes_per_day: usize,
    /// Word length (characters).
    pub word_len: usize,
    /// Sentence length (words).
    pub sent_len: usize,
}

impl PlantScale {
    /// Reduced scale (default): 32 sensors at 240 samples/day — the same
    /// 30-day / 2-anomaly structure as the paper at ~1/40 of the compute.
    pub fn reduced() -> Self {
        Self {
            n_sensors: 32,
            minutes_per_day: 240,
            word_len: 10,
            sent_len: 20,
        }
    }

    /// The paper's full scale: 128 sensors, per-minute sampling, 10-char
    /// words, 20-word sentences.
    pub fn full() -> Self {
        Self {
            n_sensors: 128,
            minutes_per_day: 1440,
            word_len: 10,
            sent_len: 20,
        }
    }
}

/// A fitted plant study.
pub struct PlantStudy {
    /// The generated dataset.
    pub plant: PlantData,
    /// Fitted language pipeline.
    pub pipeline: LanguagePipeline,
    /// Trained pairwise models + relationship graph.
    pub trained: TrainedGraph,
    /// Window configuration used.
    pub window: WindowConfig,
}

impl PlantStudy {
    /// Generates the plant (30 days, anomalies on days 21 and 28,
    /// precursors on 19/20/27), fits languages on days 1–10, scores pairs on
    /// days 11–13 — exactly the paper's split (test = days 14–30).
    ///
    /// # Panics
    ///
    /// Panics if the study cannot be built (generation and training on
    /// well-formed synthetic data cannot fail in practice).
    pub fn run(scale: &PlantScale, translator: TranslatorConfig) -> Self {
        let plant = generate(&PlantConfig {
            n_sensors: scale.n_sensors,
            minutes_per_day: scale.minutes_per_day,
            ..PlantConfig::default()
        });
        let window = WindowConfig {
            word_len: scale.word_len,
            word_stride: 1,
            sent_len: scale.sent_len,
            sent_stride: scale.sent_len,
        };
        let pipeline = LanguagePipeline::fit(&plant.traces, plant.days_range(1, 10), window)
            .expect("fit plant languages");
        let train_sets = pipeline
            .encode_segment(&plant.traces, plant.days_range(1, 10))
            .expect("encode train");
        let dev_sets = pipeline
            .encode_segment(&plant.traces, plant.days_range(11, 13))
            .expect("encode dev");
        let build = GraphBuildConfig {
            translator,
            ..GraphBuildConfig::default()
        };
        let trained = build_graph(&pipeline, &train_sets, &dev_sets, &build).expect("build graph");
        Self {
            plant,
            pipeline,
            trained,
            window,
        }
    }

    /// Runs detection over the full test period (days 14–30) at a validity
    /// range, returning per-sentence scores plus each sentence's 1-based day.
    ///
    /// # Errors
    ///
    /// Returns an error when no trained model's score falls in `range`.
    pub fn detect_test_period(
        &self,
        range: ScoreRange,
    ) -> Result<(mdes_core::DetectionResult, Vec<usize>), mdes_core::CoreError> {
        let cfg = DetectionConfig {
            valid_range: range,
            ..DetectionConfig::default()
        };
        let test_range = self.plant.days_range(14, self.plant.config.days);
        let test_sets = self
            .pipeline
            .encode_segment(&self.plant.traces, test_range.clone())?;
        let result = detect(&self.trained, &test_sets, &cfg)?;
        let days: Vec<usize> = result
            .starts
            .iter()
            .map(|&s| (test_range.start + s) / self.plant.config.minutes_per_day + 1)
            .collect();
        Ok((result, days))
    }

    /// Per-sensor vocabulary sizes (Fig. 3b).
    pub fn vocabulary_sizes(&self) -> Vec<f64> {
        self.pipeline
            .languages()
            .iter()
            .map(|l| l.vocab.word_count() as f64)
            .collect()
    }

    /// Per-sensor cardinalities of surviving sensors (Fig. 3a).
    pub fn cardinalities(&self) -> Vec<f64> {
        self.pipeline
            .languages()
            .iter()
            .map(|l| l.alphabet.cardinality() as f64)
            .collect()
    }

    /// The paper's popular-sensor in-degree threshold, scaled to this node
    /// count.
    pub fn popular_threshold(&self) -> usize {
        self.trained.graph.scaled_popular_threshold()
    }
}

/// Parses `--translator=nmt|ngram` (default ngram) into a config.
pub fn translator_from_args(args: &[String]) -> TranslatorConfig {
    match crate::report::arg_value(args, "translator").as_deref() {
        Some("nmt") => TranslatorConfig::neural(),
        _ => TranslatorConfig::fast(),
    }
}

/// Parses `--full` / `--sensors=N` into a scale.
pub fn scale_from_args(args: &[String]) -> PlantScale {
    let mut scale = if crate::report::arg_flag(args, "full") {
        PlantScale::full()
    } else {
        PlantScale::reduced()
    };
    if let Some(n) = crate::report::arg_value(args, "sensors").and_then(|v| v.parse().ok()) {
        scale.n_sensors = n;
    }
    scale
}
