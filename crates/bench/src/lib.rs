//! `mdes-bench` — the experiment harness regenerating every table and
//! figure of the paper's evaluation.
//!
//! Each `src/bin/exp_*.rs` binary reproduces one artifact (see
//! `DESIGN.md` §4 for the index); this library holds the shared study
//! set-ups:
//!
//! * [`plant_study`] — the physical-plant case study state (§III),
//! * [`hdd_study`] — the pooled HDD case study state (§IV),
//! * [`report`] — text tables, ASCII CDFs/histograms, CSV/JSON writers.
//!
//! Common flags accepted by the binaries:
//!
//! * `--full` — run the paper's full scale (128 sensors, per-minute
//!   sampling) instead of the reduced default;
//! * `--translator=nmt|ngram` — neural seq2seq (paper-faithful, slow on one
//!   core) vs the statistical fast path (default);
//! * `--sensors=N` — override the sensor count.

pub mod hdd_study;
pub mod plant_study;
pub mod report;
