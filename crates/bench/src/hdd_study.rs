//! Shared harness for the HDD case study (paper §IV).
//!
//! Mirrors the paper's protocol: drives with a long history are selected,
//! continuous SMART features are discretized with schemes fitted on pooled
//! training data (binary for zero-inflated counters, quintiles otherwise),
//! and training data is aggregated across all drives so that one directional
//! model exists per feature pair. Detection then runs per drive over its
//! final month, with its development month as the normal baseline.

use mdes_core::{
    build_graph, detect, DetectionConfig, GraphBuildConfig, TrainedGraph, TranslatorConfig,
};
use mdes_graph::ScoreRange;
use mdes_lang::{LanguagePipeline, RawTrace, SentenceSet, WindowConfig};
use mdes_synth::hdd::{generate, HddConfig, HddData};
use std::ops::Range;

/// Per-drive windows used by the study (in days of that drive's telemetry).
#[derive(Clone, Debug)]
pub struct DriveWindows {
    /// Index into `fleet.drives`.
    pub drive: usize,
    /// Discretized traces (shared feature set/order across drives).
    pub traces: Vec<RawTrace>,
    /// Training days.
    pub train: Range<usize>,
    /// Development days.
    pub dev: Range<usize>,
    /// Test days (ends at failure for failed drives).
    pub test: Range<usize>,
}

/// A fitted HDD study.
pub struct HddStudy {
    /// The generated fleet.
    pub fleet: HddData,
    /// Language pipeline fitted on pooled training data.
    pub pipeline: LanguagePipeline,
    /// Trained pairwise models + relationship graph (one per feature pair).
    pub trained: TrainedGraph,
    /// Per-drive windows for detection.
    pub drives: Vec<DriveWindows>,
}

/// Per-drive detection outcome.
#[derive(Clone, Debug)]
pub struct DriveOutcome {
    /// Index into `fleet.drives`.
    pub drive: usize,
    /// Whether the drive actually fails.
    pub failed: bool,
    /// Max anomaly score over the development (known-normal) month.
    pub dev_baseline: f64,
    /// Anomaly scores over the test month.
    pub test_scores: Vec<f64>,
    /// Whether the detection rule fired.
    pub detected: bool,
}

impl HddStudy {
    /// Builds the study: generates a fleet (`days` per healthy drive),
    /// fits pooled discretization schemes, trains one model per ordered
    /// feature pair on the aggregated training sentences of all drives.
    ///
    /// Each drive contributes its last 110 days: 60 train / 25 dev / 25
    /// test. Drives with shorter telemetry are excluded (the paper keeps
    /// drives with 10+ months of data).
    ///
    /// # Panics
    ///
    /// Panics if generation or training fails (cannot happen on well-formed
    /// synthetic data).
    pub fn run(cfg: &HddConfig, translator: TranslatorConfig) -> Self {
        let fleet = generate(cfg);
        let eligible = fleet.drives_with_min_days(110);
        assert!(eligible.len() >= 2, "too few drives with a long history");
        let schemes = fleet.pooled_schemes(&eligible, 60);
        let window = WindowConfig::hdd();

        let drives: Vec<DriveWindows> = eligible
            .iter()
            .map(|&d| {
                let days = fleet.drives[d].days();
                DriveWindows {
                    drive: d,
                    traces: fleet.drive_traces_with_schemes(d, &schemes),
                    train: days - 110..days - 50,
                    dev: days - 50..days - 25,
                    test: days - 25..days,
                }
            })
            .collect();

        // Fit the pipeline on concatenated training segments (pooled corpus).
        let nf = drives[0].traces.len();
        let cat: Vec<RawTrace> = (0..nf)
            .map(|f| {
                let mut events = Vec::new();
                for dw in &drives {
                    events.extend_from_slice(&dw.traces[f].events[dw.train.clone()]);
                }
                RawTrace::new(drives[0].traces[f].name.clone(), events)
            })
            .collect();
        let total = cat[0].events.len();
        let pipeline = LanguagePipeline::fit(&cat, 0..total, window).expect("fit pooled languages");

        // Aggregate aligned train/dev sentences across drives.
        let n = pipeline.sensor_count();
        let empty = SentenceSet {
            sentences: Vec::new(),
            starts: Vec::new(),
        };
        let mut train_sets = vec![empty.clone(); n];
        let mut dev_sets = vec![empty; n];
        for dw in &drives {
            let t = pipeline
                .encode_segment(&dw.traces, dw.train.clone())
                .expect("train");
            let v = pipeline
                .encode_segment(&dw.traces, dw.dev.clone())
                .expect("dev");
            for k in 0..n {
                train_sets[k].sentences.extend_from_slice(&t[k].sentences);
                train_sets[k].starts.extend_from_slice(&t[k].starts);
                dev_sets[k].sentences.extend_from_slice(&v[k].sentences);
                dev_sets[k].starts.extend_from_slice(&v[k].starts);
            }
        }
        let build = GraphBuildConfig {
            translator,
            ..GraphBuildConfig::default()
        };
        let trained = build_graph(&pipeline, &train_sets, &dev_sets, &build).expect("build graph");
        Self {
            fleet,
            pipeline,
            trained,
            drives,
        }
    }

    /// Runs detection for every drive at the given validity range and
    /// applies the Fig. 12 rule: a drive is flagged when the mean of three
    /// *early-warning* windows (ending one window before the drive's last,
    /// so the alarm precedes the failure) exceeds its development-month mean
    /// by at least `jump` (default 0.3).
    pub fn evaluate(&self, range: ScoreRange, jump: f64) -> Vec<DriveOutcome> {
        let dcfg = DetectionConfig {
            valid_range: range,
            ..DetectionConfig::default()
        };
        let mut out = Vec::new();
        for dw in &self.drives {
            let Ok(dev_sets) = self.pipeline.encode_segment(&dw.traces, dw.dev.clone()) else {
                continue;
            };
            let Ok(test_sets) = self.pipeline.encode_segment(&dw.traces, dw.test.clone()) else {
                continue;
            };
            let (Ok(dev_res), Ok(test_res)) = (
                detect(&self.trained, &dev_sets, &dcfg),
                detect(&self.trained, &test_sets, &dcfg),
            ) else {
                continue;
            };
            let dev_mean = dev_res.scores.iter().sum::<f64>() / dev_res.scores.len().max(1) as f64;
            let n = test_res.scores.len();
            let tail = &test_res.scores[n.saturating_sub(4)..n.saturating_sub(1).max(1)];
            let tail_mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
            out.push(DriveOutcome {
                drive: dw.drive,
                failed: self.fleet.drives[dw.drive].failed,
                dev_baseline: dev_mean,
                test_scores: test_res.scores,
                detected: tail_mean - dev_mean >= jump,
            });
        }
        out
    }

    /// Recall over failed drives for a set of outcomes.
    pub fn recall(outcomes: &[DriveOutcome]) -> f64 {
        let failed = outcomes.iter().filter(|o| o.failed).count();
        if failed == 0 {
            return 0.0;
        }
        let hit = outcomes.iter().filter(|o| o.failed && o.detected).count();
        hit as f64 / failed as f64
    }

    /// False-alarm rate over healthy drives.
    pub fn false_alarm_rate(outcomes: &[DriveOutcome]) -> f64 {
        let healthy = outcomes.iter().filter(|o| !o.failed).count();
        if healthy == 0 {
            return 0.0;
        }
        let fp = outcomes.iter().filter(|o| !o.failed && o.detected).count();
        fp as f64 / healthy as f64
    }
}

/// The study's default fleet configuration: 30 drives over 240 days.
pub fn default_fleet() -> HddConfig {
    HddConfig {
        n_drives: 30,
        days: 240,
        failure_fraction: 0.4,
        ..HddConfig::default()
    }
}
