//! Reporting utilities shared by the experiment binaries: aligned text
//! tables, ASCII histograms/CDFs, and CSV/JSON result files under
//! `results/`.

use std::fs;
use std::path::PathBuf;

/// Directory where experiment outputs are written (`<repo>/results`).
pub fn results_dir() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Writes a CSV file into `results/` and returns its path.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out).expect("write csv");
    path
}

/// Writes a JSON value (via `serde_json`) into `results/`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialize json"),
    )
    .expect("write json");
    path
}

/// One benchmark measurement in the machine-readable `BENCH_*.json` schema
/// the vendored criterion harness also emits (`MDES_BENCH_JSON`): name,
/// mean/p50/p95 per-iteration latency in nanoseconds, and an optional
/// payload size in bytes. Experiment binaries aggregate their own timing
/// samples into these so CI reads one schema everywhere.
#[derive(serde::Serialize)]
pub struct BenchRecord {
    /// Benchmark id, e.g. `serving/push_16streams`.
    pub name: String,
    /// Mean per-iteration latency (ns).
    pub mean_ns: f64,
    /// Median per-iteration latency (ns).
    pub p50_ns: f64,
    /// 95th-percentile per-iteration latency (ns).
    pub p95_ns: f64,
    /// Payload processed per iteration (bytes), when meaningful.
    pub bytes: Option<u64>,
}

impl BenchRecord {
    /// Aggregates raw per-iteration latencies (ns) into one record.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty.
    pub fn from_samples(name: &str, samples: &[f64], bytes: Option<u64>) -> Self {
        assert!(!samples.is_empty(), "no samples for {name}");
        let mut s = samples.to_vec();
        s.sort_by(f64::total_cmp);
        let pct = |q: f64| s[((q * (s.len() - 1) as f64).round() as usize).min(s.len() - 1)];
        BenchRecord {
            name: name.to_owned(),
            mean_ns: s.iter().sum::<f64>() / s.len() as f64,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            bytes,
        }
    }
}

/// Empirical CDF of float observations as `(value, fraction)` pairs.
pub fn ecdf_f64(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Prints an ASCII CDF sampled at the given fractions.
pub fn print_cdf(label: &str, values: &[f64]) {
    let cdf = ecdf_f64(values);
    if cdf.is_empty() {
        println!("{label}: (no data)");
        return;
    }
    println!("{label} (n = {}):", values.len());
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let idx = ((q * cdf.len() as f64).ceil() as usize).clamp(1, cdf.len()) - 1;
        println!("  p{:<3} = {:.3}", (q * 100.0) as usize, cdf[idx].0);
    }
}

/// Prints an ASCII histogram with `bins` equal-width buckets over `[lo, hi]`.
pub fn print_histogram(label: &str, values: &[f64], lo: f64, hi: f64, bins: usize) {
    assert!(bins > 0 && hi > lo, "invalid histogram configuration");
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v - lo) / (hi - lo)) * bins as f64).floor() as isize;
        let b = b.clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    println!("{label} (n = {}):", values.len());
    for (b, &c) in counts.iter().enumerate() {
        let from = lo + (hi - lo) * b as f64 / bins as f64;
        let to = lo + (hi - lo) * (b + 1) as f64 / bins as f64;
        let bar = "#".repeat(c * 50 / max);
        println!("  [{from:6.1}, {to:6.1}) {c:6} {bar}");
    }
}

/// Parses `--key=value` style arguments; returns the value for `key`.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    let prefix = format!("--{key}=");
    args.iter()
        .find_map(|a| a.strip_prefix(&prefix).map(str::to_owned))
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == &format!("--{flag}"))
}
