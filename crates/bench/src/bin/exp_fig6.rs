//! Experiment E6 — Fig. 6: the global subgraph at BLEU range [80, 90),
//! with popular sensors highlighted, exported to Graphviz DOT.

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::results_dir;
use mdes_graph::{to_dot, DotOptions, ScoreRange};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));
    let range = ScoreRange::best_detection();
    let sub = study.trained.graph.subgraph(&range);
    let thr = study.popular_threshold();
    let popular = sub.popular(thr);

    println!("Fig. 6 — global subgraph at {range}");
    println!(
        "  {} sensors with edges, {} relationships, {} popular (in-degree >= {thr})",
        sub.active_nodes().len(),
        sub.edge_count(),
        popular.len()
    );
    for &p in &popular {
        println!(
            "  popular: {} (in-degree {})",
            sub.name(p),
            sub.in_degree(p)
        );
    }

    let dot = to_dot(
        &sub,
        &DotOptions {
            title: format!("global subgraph {range}"),
            highlight_nodes: popular.into_iter().collect(),
            ..DotOptions::default()
        },
    );
    let path = results_dir().join("fig6_global_subgraph_80_90.dot");
    std::fs::write(&path, dot).expect("write dot file");
    println!("\nwrote {} (render with `dot -Tpdf`)", path.display());
}
