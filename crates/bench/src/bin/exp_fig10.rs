//! Experiment E10 — Fig. 10: the two feature-discretization schemes on
//! representative SMART features, shown as CDFs.
//!
//! (a) A zero-inflated error counter (SMART 187) gets the binary
//! zero/non-zero scheme; (b) a spread activity feature (SMART 9 power-on
//! hours, differenced) gets quintile boundaries at the 20/40/60/80th
//! percentiles.

use mdes_bench::report::{ecdf_f64, print_cdf, write_csv};
use mdes_lang::discretize::{first_difference, Scheme};
use mdes_synth::hdd::{generate, HddConfig};

fn main() {
    let fleet = generate(&HddConfig::default());
    // Pool feature values across drives, as the study does.
    let pool = |f: usize, diff: bool| -> Vec<f64> {
        fleet
            .drives
            .iter()
            .flat_map(|d| {
                if diff {
                    first_difference(&d.features[f])
                } else {
                    d.features[f].clone()
                }
            })
            .collect()
    };
    let smart187 = pool(9, true); // reported uncorrectable (daily deltas)
    let smart9 = pool(5, false); // power-on hours (raw cumulative, as in the paper's Fig 10b)

    println!("Fig. 10a — SMART 187 daily deltas (zero-inflated error counter)");
    let zeros = smart187.iter().filter(|&&v| v == 0.0).count() as f64 / smart187.len() as f64;
    println!("  {:.0}% of observations are zero", 100.0 * zeros);
    let s187 = Scheme::fit_default(&smart187);
    println!(
        "  fitted scheme: {s187:?} (cardinality {})",
        s187.cardinality()
    );
    assert_eq!(
        s187,
        Scheme::Binary,
        "error counters should be binary-discretized"
    );

    println!("\nFig. 10b — SMART 9 power-on hours (spread feature)");
    let s9 = Scheme::fit_default(&smart9);
    match &s9 {
        Scheme::Percentile { boundaries } => {
            println!("  quintile boundaries (20/40/60/80th percentiles): {boundaries:?}");
        }
        other => panic!("expected percentile scheme, got {other:?}"),
    }
    print_cdf("  SMART 9 CDF", &smart9);

    // Bucket shares after discretization.
    let cats = s9.apply_all(&smart9);
    for q in 0..5 {
        let label = format!("q{q}");
        let share = cats.iter().filter(|c| **c == label).count() as f64 / cats.len() as f64;
        println!("  bucket {label}: {:.1}%", 100.0 * share);
    }

    let rows_a: Vec<Vec<String>> = ecdf_f64(&smart187)
        .iter()
        .map(|(v, f)| vec![v.to_string(), f.to_string()])
        .collect();
    let rows_b: Vec<Vec<String>> = ecdf_f64(&smart9)
        .iter()
        .map(|(v, f)| vec![v.to_string(), f.to_string()])
        .collect();
    let p1 = write_csv("fig10a_smart187_cdf.csv", &["value", "cdf"], &rows_a);
    let p2 = write_csv("fig10b_smart9_cdf.csv", &["value", "cdf"], &rows_b);
    println!("\nwrote {}\nwrote {}", p1.display(), p2.display());
}
