//! Ablation A8 — broken-relationship threshold: the paper's corpus-score
//! rule (`f < s(i,j)`) vs a calibrated per-pair dev-quantile floor.
//!
//! The corpus score is the *mean* dev quality, so roughly half of all
//! normal test windows fall below it per pair — the source of the paper's
//! nonzero normal-day baseline. Calibrating the threshold to a low quantile
//! of the per-sentence dev distribution keeps the anomaly response while
//! cutting the normal baseline.

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::{print_table, write_csv};
use mdes_core::{detect, BrokenRule, DetectionConfig};
use mdes_graph::ScoreRange;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));
    let test_range = study.plant.days_range(14, study.plant.config.days);
    let test_sets = study
        .pipeline
        .encode_segment(&study.plant.traces, test_range.clone())
        .expect("encode test");
    let days: Vec<usize> = test_sets[0]
        .starts
        .iter()
        .map(|&s| (test_range.start + s) / study.plant.config.minutes_per_day + 1)
        .collect();

    println!("Ablation A8 — broken-relationship threshold rule\n");
    let mut rows = Vec::new();
    for (label, rule) in [
        ("corpus score (paper)", BrokenRule::CorpusScore),
        ("dev q10 floor (ours)", BrokenRule::DevQuantileFloor),
    ] {
        let cfg = DetectionConfig {
            valid_range: ScoreRange::best_detection(),
            rule,
            ..DetectionConfig::default()
        };
        let result = detect(&study.trained, &test_sets, &cfg).expect("detect");
        let mean_where = |pred: &dyn Fn(usize) -> bool| -> f64 {
            let vals: Vec<f64> = result
                .scores
                .iter()
                .zip(&days)
                .filter(|(_, &d)| pred(d))
                .map(|(&s, _)| s)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let pc = study.plant.config.clone();
        let normal = mean_where(&|d| !pc.is_anomalous_day(d) && !pc.is_precursor_day(d));
        let anomaly = mean_where(&|d| pc.is_anomalous_day(d));
        rows.push(vec![
            label.to_owned(),
            format!("{normal:.3}"),
            format!("{anomaly:.3}"),
            format!("{:.2}", anomaly / normal.max(1e-9)),
        ]);
    }
    print_table(
        &[
            "threshold rule",
            "normal mean a_t",
            "anomaly mean a_t",
            "contrast ratio",
        ],
        &rows,
    );
    println!(
        "\nThe calibrated floor keeps the anomaly response while suppressing the\n\
         normal-day baseline — a drop-in false-positive reduction over the paper's\n\
         rule (which remains the default for fidelity)."
    );
    let path = write_csv(
        "ablation_threshold.csv",
        &["rule", "normal", "anomaly", "contrast"],
        &rows,
    );
    println!("wrote {}", path.display());
}
