//! Experiment E8 — Fig. 8: anomaly-score timeline over the test period
//! (days 14–30) using global subgraphs at (a) BLEU [80, 90) and
//! (b) BLEU [90, 100].
//!
//! Paper shape: the [80, 90) subgraph spikes to ~0.8 on the anomalous days
//! (21, 28) with early-detection spikes on the precursor days (19, 20, 27)
//! and low scores otherwise; the [90, 100] subgraph stays flat and useless
//! because its "strong" edges are just easily-translatable simple languages.

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::{print_table, write_csv};
use mdes_graph::ScoreRange;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));

    let mut csv_rows = Vec::new();
    for (tag, range) in [
        ("[80,90)", ScoreRange::half_open(80.0, 90.0)),
        ("[90,100]", ScoreRange::closed(90.0, 100.0)),
    ] {
        let Ok((result, days)) = study.detect_test_period(range) else {
            println!("=== {tag}: no valid models in this range at this scale ===\n");
            continue;
        };
        println!(
            "=== Fig. 8 at {tag} ({} valid models) ===",
            result.valid_models
        );
        // Aggregate per day: mean and max anomaly score.
        let mut rows = Vec::new();
        for day in 14..=study.plant.config.days {
            let scores: Vec<f64> = result
                .scores
                .iter()
                .zip(&days)
                .filter(|(_, &d)| d == day)
                .map(|(&s, _)| s)
                .collect();
            if scores.is_empty() {
                continue;
            }
            let mean = scores.iter().sum::<f64>() / scores.len() as f64;
            let max = scores.iter().cloned().fold(0.0f64, f64::max);
            let truth = if study.plant.config.is_anomalous_day(day) {
                "ANOMALY"
            } else if study.plant.config.is_precursor_day(day) {
                "precursor"
            } else {
                ""
            };
            rows.push(vec![
                day.to_string(),
                format!("{mean:.3}"),
                format!("{max:.3}"),
                truth.to_owned(),
            ]);
        }
        print_table(&["day", "mean a_t", "max a_t", "ground truth"], &rows);

        // Separation metric: anomaly-day max vs normal-day max.
        let day_max = |predicate: &dyn Fn(usize) -> bool| -> f64 {
            result
                .scores
                .iter()
                .zip(&days)
                .filter(|(_, &d)| predicate(d))
                .map(|(&s, _)| s)
                .fold(0.0f64, f64::max)
        };
        let anom = day_max(&|d| study.plant.config.is_anomalous_day(d));
        let normal = day_max(&|d| {
            !study.plant.config.is_anomalous_day(d) && !study.plant.config.is_precursor_day(d)
        });
        println!("  anomalous-day peak {anom:.2} vs normal-day peak {normal:.2}\n");

        for ((&s, &d), &start) in result.scores.iter().zip(&days).zip(&result.starts) {
            csv_rows.push(vec![
                tag.to_owned(),
                d.to_string(),
                start.to_string(),
                s.to_string(),
            ]);
        }
    }
    let path = write_csv(
        "fig8_anomaly_scores.csv",
        &["range", "day", "start", "a_t"],
        &csv_rows,
    );
    println!("wrote {}", path.display());
}
