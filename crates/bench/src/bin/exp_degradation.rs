//! Experiment — graceful degradation under sensor dropout.
//!
//! Fits a clean plant, then replays the full test period (days 14–30)
//! through the streaming monitor while `k` sensors are silenced for the
//! whole period by the fault injector. For each `k` the experiment reports
//! the mean detection coverage and the anomaly-day vs normal-day score
//! peaks: coverage must fall roughly linearly with the dropped pair count
//! while the anomaly separation degrades gradually — losing one sensor of
//! twelve should dent the evidence, not blind the detector. Every replay
//! must complete without a panic or hard error, whatever `k`.

use mdes_bench::report::{print_table, write_csv};
use mdes_core::{BrokenRule, Mdes, MdesConfig, OnlineDetection};
use mdes_graph::ScoreRange;
use mdes_lang::{WindowConfig, MISSING_RECORD};
use mdes_synth::faults::FaultInjector;
use mdes_synth::plant::{generate, PlantConfig};

fn main() {
    let plant = generate(&PlantConfig {
        n_sensors: 12,
        minutes_per_day: 240,
        ..PlantConfig::default()
    });
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 10,
            word_stride: 1,
            sent_len: 20,
            sent_stride: 20,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    cfg.detection.rule = BrokenRule::DevQuantileFloor;
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 10),
        plant.days_range(11, 13),
        cfg,
    )
    .expect("fit clean plant");

    let test = plant.days_range(14, plant.config.days);
    let mpd = plant.config.minutes_per_day;
    let day_of = |d: &OnlineDetection| (test.start + d.sample_index) / mpd + 1;

    let mut csv_rows = Vec::new();
    let mut rows = Vec::new();
    for k in [0usize, 1, 2, 4, 8] {
        // Silence sensors 0..k for the entire test period.
        let mut injector = FaultInjector::new(97);
        for s in 0..k {
            injector = injector.dropout(s, test.start, test.end);
        }
        let faulty = injector.apply(&plant.traces);

        let mut monitor = m
            .clone()
            .try_into_online_monitor(faulty.len())
            .expect("monitor width");
        let mut detections: Vec<OnlineDetection> = Vec::new();
        for t in test.clone() {
            let sample: Vec<Option<String>> = faulty
                .iter()
                .map(|tr| {
                    let rec = tr.events[t].clone();
                    (rec != MISSING_RECORD).then_some(rec)
                })
                .collect();
            if let Some(d) = monitor
                .push_opt(&sample)
                .expect("degraded replay must not hard-fail")
            {
                detections.push(d);
            }
        }

        let coverage = detections.iter().map(|d| d.coverage).sum::<f64>() / detections.len() as f64;
        let peak = |predicate: &dyn Fn(usize) -> bool| -> f64 {
            detections
                .iter()
                .filter(|d| predicate(day_of(d)))
                .map(|d| d.score)
                .fold(0.0f64, f64::max)
        };
        let anom = peak(&|d| plant.config.is_anomalous_day(d));
        let normal =
            peak(&|d| !plant.config.is_anomalous_day(d) && !plant.config.is_precursor_day(d));
        rows.push(vec![
            k.to_string(),
            format!("{coverage:.3}"),
            format!("{anom:.3}"),
            format!("{normal:.3}"),
            format!("{:.3}", anom - normal),
        ]);
        csv_rows.push(vec![
            k.to_string(),
            format!("{coverage:.6}"),
            format!("{anom:.6}"),
            format!("{normal:.6}"),
            format!("{:.6}", anom - normal),
        ]);
    }
    println!("=== Degradation under k-sensor dropout (12-sensor plant, days 14-30) ===");
    print_table(
        &[
            "dropped",
            "mean coverage",
            "anomaly peak",
            "normal peak",
            "separation",
        ],
        &rows,
    );
    let path = write_csv(
        "exp_degradation.csv",
        &[
            "dropped",
            "mean_coverage",
            "anomaly_peak",
            "normal_peak",
            "separation",
        ],
        &csv_rows,
    );
    println!("\nwrote {}", path.display());
}
