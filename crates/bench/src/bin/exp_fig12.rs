//! Experiment E14 — Fig. 12: per-disk anomaly-score trajectories before the
//! failure date, for (a) successfully detected and (b) not detected disks.
//!
//! Paper shape: detected disks show a sharp increase (> 0.5 increment) right
//! before failure; undetected ones stay flat — whether at high or low
//! absolute level. The sudden-failure drives in the simulator are the
//! expected "not detected" population.

use mdes_bench::hdd_study::{default_fleet, HddStudy};
use mdes_bench::plant_study::translator_from_args;
use mdes_bench::report::write_csv;
use mdes_graph::ScoreRange;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = HddStudy::run(&default_fleet(), translator_from_args(&args));
    let outcomes = study.evaluate(ScoreRange::best_detection(), 0.3);

    let fmt = |scores: &[f64]| {
        scores
            .iter()
            .map(|s| format!("{:4.2}", s))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let mut csv_rows = Vec::new();
    for (label, detected) in [
        ("Fig. 12a — detected disks", true),
        ("Fig. 12b — not detected disks", false),
    ] {
        println!("{label}:");
        for o in outcomes
            .iter()
            .filter(|o| o.failed && o.detected == detected)
        {
            let serial = &study.fleet.drives[o.drive].serial;
            println!(
                "  {serial} (dev baseline {:.2}): {}",
                o.dev_baseline,
                fmt(&o.test_scores)
            );
            for (t, &s) in o.test_scores.iter().enumerate() {
                csv_rows.push(vec![
                    serial.clone(),
                    detected.to_string(),
                    t.to_string(),
                    s.to_string(),
                ]);
            }
        }
        println!();
    }
    let detected = outcomes.iter().filter(|o| o.failed && o.detected).count();
    let failed = outcomes.iter().filter(|o| o.failed).count();
    println!(
        "recall {detected}/{failed} = {:.0}% (paper: 58%)",
        100.0 * HddStudy::recall(&outcomes)
    );
    let path = write_csv(
        "fig12_disk_score_trajectories.csv",
        &["serial", "detected", "window", "a_t"],
        &csv_rows,
    );
    println!("wrote {}", path.display());
}
