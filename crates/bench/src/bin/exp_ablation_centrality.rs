//! Ablation A4 — node-importance measures: in-degree (the paper's choice)
//! vs weighted PageRank, plus directional-asymmetry statistics.
//!
//! The paper ranks critical sensors/features by in-degree in the [80, 90)
//! subgraph. PageRank is a natural robustness check: if both measures pick
//! the same top nodes, the in-degree heuristic is not an artifact. The
//! reciprocity statistics quantify the paper's remark that the two directed
//! scores of a sensor pair generally differ.

use mdes_bench::hdd_study::{default_fleet, HddStudy};
use mdes_bench::plant_study::translator_from_args;
use mdes_bench::report::{print_table, write_csv};
use mdes_graph::{pagerank, reciprocity, PageRankConfig, ScoreRange};
use std::collections::HashSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = HddStudy::run(&default_fleet(), translator_from_args(&args));
    let sub = study.trained.graph.subgraph(&ScoreRange::best_detection());

    let pr = pagerank(&sub, &PageRankConfig::default());
    let mut by_pr: Vec<(usize, f64)> = sub.active_nodes().iter().map(|&n| (n, pr[n])).collect();
    by_pr.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut by_in: Vec<(usize, usize)> = sub
        .active_nodes()
        .iter()
        .map(|&n| (n, sub.in_degree(n)))
        .collect();
    by_in.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("Ablation A4 — importance measures on the HDD [80, 90) subgraph\n");
    let k = 5.min(by_in.len());
    let rows: Vec<Vec<String>> = (0..k)
        .map(|r| {
            vec![
                format!("{r}"),
                format!("{} (in {})", sub.name(by_in[r].0), by_in[r].1),
                format!("{} (pr {:.3})", sub.name(by_pr[r].0), by_pr[r].1),
            ]
        })
        .collect();
    print_table(&["rank", "by in-degree (paper)", "by PageRank"], &rows);

    let top_in: HashSet<usize> = by_in.iter().take(k).map(|&(n, _)| n).collect();
    let top_pr: HashSet<usize> = by_pr.iter().take(k).map(|&(n, _)| n).collect();
    let overlap = top_in.intersection(&top_pr).count();
    println!("\ntop-{k} overlap between the two measures: {overlap}/{k}");

    let r = reciprocity(&study.trained.graph);
    println!(
        "\ndirectional asymmetry over the full graph: {} mutual pairs, \
         mean |s(i,j) - s(j,i)| = {:.1} BLEU, max = {:.1}",
        r.mutual_pairs, r.mean_abs_asymmetry, r.max_abs_asymmetry
    );
    println!(
        "(the paper notes the two directed scores of a pair may differ — the\n\
         asymmetry above quantifies it)"
    );

    let csv: Vec<Vec<String>> = by_in
        .iter()
        .map(|&(n, d)| vec![sub.name(n).to_owned(), d.to_string(), pr[n].to_string()])
        .collect();
    let path = write_csv(
        "ablation_centrality.csv",
        &["feature", "in_degree", "pagerank"],
        &csv,
    );
    println!("wrote {}", path.display());
}
