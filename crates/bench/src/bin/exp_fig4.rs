//! Experiment E3 — Fig. 4: (a) CDF of per-pair model runtime (training +
//! dev scoring) and (b) histogram of development BLEU scores.
//!
//! Paper reference points: ~2.5 minutes per NMT model (TensorFlow, GPU-less
//! server), 89.4 % of BLEU scores above 60. Runtimes here reflect the chosen
//! translator (`--translator=nmt` for the paper's model; the default n-gram
//! fast path is orders of magnitude cheaper — that gap is itself reported by
//! the `exp_ablation_translator` experiment).

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::{print_cdf, print_histogram, write_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));

    let runtimes = study.trained.runtimes();
    let scores = study.trained.scores();

    println!("Fig. 4a — per-model runtime (seconds, train + dev scoring)");
    print_cdf("  runtime CDF", &runtimes);
    let total: f64 = runtimes.iter().sum();
    println!(
        "  total sweep time {total:.2}s over {} models",
        runtimes.len()
    );

    println!("\nFig. 4b — histogram of development BLEU scores");
    print_histogram("  BLEU scores", &scores, 0.0, 100.0, 10);
    let above60 = scores.iter().filter(|&&s| s > 60.0).count() as f64 / scores.len() as f64;
    println!("  scores > 60: {:.1}% (paper: 89.4%)", 100.0 * above60);

    let rt_rows: Vec<Vec<String>> = runtimes.iter().map(|r| vec![r.to_string()]).collect();
    let sc_rows: Vec<Vec<String>> = scores.iter().map(|s| vec![s.to_string()]).collect();
    let p1 = write_csv("fig4a_model_runtimes.csv", &["runtime_secs"], &rt_rows);
    let p2 = write_csv("fig4b_bleu_scores.csv", &["bleu"], &sc_rows);
    println!("\nwrote {}\nwrote {}", p1.display(), p2.display());
}
