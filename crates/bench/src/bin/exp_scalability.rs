//! Scalability experiment: the prescreened, sharded Algorithm 1 at fleet
//! scale (paper §III-A2: "model scalability is not a concern ... this can
//! be further accelerated if this process is done in parallel").
//!
//! The exhaustive sweep trains `N·(N-1)` neural models — out of reach past
//! a few hundred sensors on one core. This experiment validates the
//! two-stage substitute end to end:
//!
//! * **Phase A — recall.** On a paper-scale plant (128 sensors) the
//!   exhaustive tiny-NMT sweep is still feasible, so the n-gram prescreen
//!   can be graded against ground truth: what fraction of the pairs the
//!   exhaustive sweep scores inside the validity band does the prescreen
//!   keep? Asserted ≥ 0.95.
//! * **Phase B — fleet build.** A 512-sensor (``--sensors=N`` up to 1000)
//!   fleet with deterministically spread component periods is prescreened
//!   and the survivors swept in checkpointed shards. Asserts the memory
//!   bound (peak shard corpus ∝ shard sensor union, not the fleet) and
//!   that an immediate re-run resumes every pair from the shard
//!   checkpoints with identical scores.
//!
//! Flags: `--smoke` (24/64 sensors, CI-sized), `--sensors=N` (fleet size,
//! default 512).
//!
//! Writes `results/BENCH_scalability.json`.

use mdes_bench::report::{arg_flag, arg_value, print_table, results_dir, write_json, BenchRecord};
use mdes_core::{
    build_graph, build_graph_sharded, prescreen_pairs, GraphBuildConfig, PrescreenConfig,
    ShardedSweepConfig, TrainedGraph, TranslatorConfig,
};
use mdes_graph::ScoreRange;
use mdes_lang::{LanguagePipeline, WindowConfig};
use mdes_nn::Seq2SeqConfig;
use mdes_synth::plant::{generate, PlantConfig, PlantData};
use std::time::Instant;

/// The refine-stage translator: the paper's seq2seq, sized for single-core
/// sweeps of thousands of pairs.
fn tiny_nmt() -> TranslatorConfig {
    TranslatorConfig::Nmt(Seq2SeqConfig {
        embed_dim: 8,
        hidden: 8,
        train_steps: 30,
        batch_size: 4,
        ..Seq2SeqConfig::default()
    })
}

fn window() -> WindowConfig {
    WindowConfig {
        word_len: 8,
        word_stride: 1,
        sent_len: 10,
        sent_stride: 10,
    }
}

fn fit(plant: &PlantData) -> LanguagePipeline {
    LanguagePipeline::fit(&plant.traces, plant.days_range(1, 4), window())
        .expect("fit plant languages")
}

/// Sorted `(src, dst, train_score)` triples — the comparison key that is
/// stable across resumed runs (wall-clock timings are not).
fn score_key(g: &TrainedGraph) -> Vec<(usize, usize, u64)> {
    let mut v: Vec<(usize, usize, u64)> = g
        .models()
        .iter()
        .map(|m| (m.src, m.dst, m.train_score.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

#[derive(serde::Serialize)]
struct ScalabilityReport {
    smoke: bool,
    recall_sensors: usize,
    recall_in_range_pairs: usize,
    prescreen_recall: f64,
    prescreen_kept_fraction: f64,
    prescreen_speedup: f64,
    fleet_sensors: usize,
    fleet_pairs_total: usize,
    fleet_survivors: usize,
    models_trained: usize,
    shards: usize,
    resumed_on_rerun: usize,
    peak_shard_corpus_bytes: usize,
    peak_shard_sensors: usize,
    fleet_corpus_bytes: usize,
    distinct_sensors: usize,
    prescreen_secs: f64,
    sweep_secs: f64,
    latencies: Vec<BenchRecord>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = arg_flag(&args, "smoke");
    let fleet_sensors = if smoke {
        64
    } else {
        arg_value(&args, "sensors")
            .and_then(|v| v.parse().ok())
            .unwrap_or(512)
    };
    let recall_sensors = if smoke { 24 } else { 128 };
    println!(
        "Prescreened, sharded Algorithm 1 — recall at {recall_sensors} sensors, \
         fleet build at {fleet_sensors} sensors\n"
    );

    // ---- Phase A: prescreen recall against the exhaustive sweep --------
    let plant = generate(&PlantConfig {
        n_sensors: recall_sensors,
        days: 8,
        minutes_per_day: 240,
        ..PlantConfig::default()
    });
    let pipeline = fit(&plant);
    let train = plant.days_range(1, 4);
    let dev = plant.days_range(5, 6);
    let train_sets = pipeline
        .encode_segment(&plant.traces, train.clone())
        .expect("encode train");
    let dev_sets = pipeline
        .encode_segment(&plant.traces, dev.clone())
        .expect("encode dev");

    eprintln!(
        "[recall] exhaustive tiny-NMT sweep over {} pairs ...",
        pipeline.sensor_count() * (pipeline.sensor_count() - 1)
    );
    let t0 = Instant::now();
    let exhaustive = build_graph(
        &pipeline,
        &train_sets,
        &dev_sets,
        &GraphBuildConfig {
            translator: tiny_nmt(),
            ..GraphBuildConfig::default()
        },
    )
    .expect("exhaustive sweep");
    let exhaustive_secs = t0.elapsed().as_secs_f64();

    // The validity band the fleet build will deploy. The plant's score
    // distribution is bimodal (strongly related pairs land well above 80,
    // unrelated pairs far below), so this band separates real edges from
    // noise for both translator families.
    let band = ScoreRange::closed(80.0, 100.0);
    let in_range: Vec<(usize, usize)> = exhaustive
        .models()
        .iter()
        .filter(|m| band.contains(m.train_score))
        .map(|m| (m.src, m.dst))
        .collect();
    assert!(
        !in_range.is_empty(),
        "recall band {band:?} contains no exhaustive edges"
    );

    let screen_cfg = PrescreenConfig {
        range: band,
        margin: 10.0,
        ..PrescreenConfig::default()
    };
    let t0 = Instant::now();
    let screened = prescreen_pairs(&pipeline, &plant.traces, train, dev, &screen_cfg)
        .expect("recall prescreen");
    let prescreen_a_secs = t0.elapsed().as_secs_f64();
    let survivors = screened.survivors();
    let kept_in_range = in_range
        .iter()
        .filter(|p| survivors.binary_search(p).is_ok())
        .count();
    let recall = kept_in_range as f64 / in_range.len() as f64;
    let kept_fraction = screened.kept() as f64 / screened.total_pairs() as f64;
    let speedup = exhaustive_secs / prescreen_a_secs.max(1e-9);
    println!(
        "[recall] band {:.1}..{:.1}: {}/{} in-range edges kept (recall {recall:.3}), \
         kept {:.1}% of all pairs, prescreen {:.2}s vs exhaustive {:.2}s ({speedup:.0}x)",
        band.lo(),
        band.hi(),
        kept_in_range,
        in_range.len(),
        100.0 * kept_fraction,
        prescreen_a_secs,
        exhaustive_secs,
    );
    assert!(
        recall >= 0.95,
        "prescreen recall {recall:.3} below the 0.95 target \
         ({kept_in_range}/{} in-range edges kept)",
        in_range.len()
    );

    // ---- Phase B: prescreened, sharded fleet build ---------------------
    let fleet = generate(&PlantConfig::fleet(fleet_sensors));
    let pipeline = fit(&fleet);
    let train = fleet.days_range(1, 4);
    let dev = fleet.days_range(5, 6);
    let n = pipeline.sensor_count();
    eprintln!("[fleet] prescreening {} pairs ...", n * (n - 1));
    let t0 = Instant::now();
    let screen_cfg = PrescreenConfig {
        range: band,
        margin: 10.0,
        ..PrescreenConfig::default()
    };
    let screened = prescreen_pairs(
        &pipeline,
        &fleet.traces,
        train.clone(),
        dev.clone(),
        &screen_cfg,
    )
    .expect("fleet prescreen");
    let prescreen_secs = t0.elapsed().as_secs_f64();
    let survivors = screened.survivors();
    println!(
        "[fleet] prescreen kept {}/{} pairs ({:.1}%) in {prescreen_secs:.2}s, \
         peak block corpus {} KiB",
        screened.kept(),
        screened.total_pairs(),
        100.0 * screened.kept() as f64 / screened.total_pairs() as f64,
        screened.peak_block_corpus_bytes() / 1024,
    );
    assert!(
        screened.kept() < screened.total_pairs(),
        "fleet prescreen pruned nothing — the spread-period fleet must have \
         out-of-band pairs"
    );

    let ckpt_dir = results_dir().join(format!("scalability_ckpt_{fleet_sensors}"));
    let _ = std::fs::remove_dir_all(&ckpt_dir); // stale selections would be rejected
    let sharded_cfg = ShardedSweepConfig {
        build: GraphBuildConfig {
            translator: tiny_nmt(),
            ..GraphBuildConfig::default()
        },
        pairs_per_shard: if smoke { 64 } else { 128 },
        checkpoint_dir: Some(ckpt_dir.to_string_lossy().into_owned()),
        checkpoint_every: 16,
    };
    eprintln!(
        "[fleet] sharded NMT sweep over {} survivors ...",
        survivors.len()
    );
    let t0 = Instant::now();
    let (trained, report) = build_graph_sharded(
        &pipeline,
        &fleet.traces,
        train.clone(),
        dev.clone(),
        &survivors,
        &sharded_cfg,
    )
    .expect("sharded sweep");
    let sweep_secs = t0.elapsed().as_secs_f64();
    println!(
        "[fleet] {} models in {} shards, {sweep_secs:.2}s; peak shard corpus \
         {} KiB over {} sensors (fleet: {} KiB over {} sensors)",
        trained.models().len(),
        report.shards,
        report.peak_shard_corpus_bytes / 1024,
        report.peak_shard_sensors,
        report.fleet_corpus_bytes / 1024,
        report.distinct_sensors,
    );

    // The memory bound, asserted: the peak shard's resident corpus must
    // not exceed its share of the fleet footprint (peak sensors / distinct
    // sensors), with 2x slack for unevenly sized sensor corpora. A
    // regression that re-encodes the whole fleet per shard trips this.
    assert!(report.peak_shard_sensors < report.distinct_sensors);
    assert!(
        report.peak_shard_corpus_bytes * report.distinct_sensors
            <= report.fleet_corpus_bytes * report.peak_shard_sensors * 2,
        "peak shard corpus {} B is not bounded by its sensor share \
         ({}/{} sensors of {} B fleet)",
        report.peak_shard_corpus_bytes,
        report.peak_shard_sensors,
        report.distinct_sensors,
        report.fleet_corpus_bytes,
    );

    // Re-run over the same selection: every pair must come back from the
    // shard checkpoints, with scores identical to the live sweep.
    let (resumed_graph, resumed_report) = build_graph_sharded(
        &pipeline,
        &fleet.traces,
        train,
        dev,
        &survivors,
        &sharded_cfg,
    )
    .expect("resumed sweep");
    assert_eq!(
        resumed_report.resumed, resumed_report.pairs_total,
        "re-run must resume every pair from shard checkpoints"
    );
    assert_eq!(
        score_key(&trained),
        score_key(&resumed_graph),
        "resumed graph must match the live sweep"
    );
    println!(
        "[fleet] re-run resumed {}/{} pairs from {} shard checkpoints",
        resumed_report.resumed, resumed_report.pairs_total, resumed_report.shards,
    );

    // ---- Report --------------------------------------------------------
    let runtimes = trained.runtimes();
    let nmt_ns: Vec<f64> = runtimes.iter().map(|s| s * 1e9).collect();
    let screen_ns = vec![prescreen_secs * 1e9 / screened.total_pairs() as f64; 1];
    let latencies = vec![
        BenchRecord::from_samples("scalability/nmt_pair_train", &nmt_ns, None),
        BenchRecord::from_samples("scalability/prescreen_pair", &screen_ns, None),
    ];
    print_table(
        &["stage", "pairs", "wall time"],
        &[
            vec![
                "prescreen".into(),
                screened.total_pairs().to_string(),
                format!("{prescreen_secs:.2}s"),
            ],
            vec![
                "sharded sweep".into(),
                survivors.len().to_string(),
                format!("{sweep_secs:.2}s"),
            ],
        ],
    );
    let out = ScalabilityReport {
        smoke,
        recall_sensors,
        recall_in_range_pairs: in_range.len(),
        prescreen_recall: recall,
        prescreen_kept_fraction: kept_fraction,
        prescreen_speedup: speedup,
        fleet_sensors,
        fleet_pairs_total: screened.total_pairs(),
        fleet_survivors: survivors.len(),
        models_trained: trained.models().len(),
        shards: report.shards,
        resumed_on_rerun: resumed_report.resumed,
        peak_shard_corpus_bytes: report.peak_shard_corpus_bytes,
        peak_shard_sensors: report.peak_shard_sensors,
        fleet_corpus_bytes: report.fleet_corpus_bytes,
        distinct_sensors: report.distinct_sensors,
        prescreen_secs,
        sweep_secs,
        latencies,
    };
    let path = write_json("BENCH_scalability.json", &out);
    println!("wrote {}", path.display());
}
