//! Scalability experiment (paper §III-A2: "model scalability is not a
//! concern ... this can be further accelerated if this process is done in
//! parallel for different sensor pairs").
//!
//! Measures the pairwise sweep as the sensor count grows: the model count
//! is quadratic but each model is independent, so wall-clock scales with
//! `N^2 / cores`. Run on a multi-core host to see the parallel speed-up;
//! the sweep uses all available cores by default.

use mdes_bench::plant_study::{translator_from_args, PlantScale, PlantStudy};
use mdes_bench::report::{print_table, write_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let translator = translator_from_args(&args);
    println!("Scalability of the pairwise sweep ({translator:?})\n");
    let mut rows = Vec::new();
    for sensors in [8usize, 16, 32, 64] {
        let scale = PlantScale {
            n_sensors: sensors,
            minutes_per_day: 240,
            word_len: 8,
            sent_len: 10,
        };
        let start = std::time::Instant::now();
        let study = PlantStudy::run(&scale, translator.clone());
        let wall = start.elapsed().as_secs_f64();
        let models = study.trained.models().len();
        let cpu: f64 = study.trained.runtimes().iter().sum();
        rows.push(vec![
            sensors.to_string(),
            models.to_string(),
            format!("{wall:.2}s"),
            format!("{cpu:.2}s"),
            format!("{:.2}ms", 1000.0 * cpu / models as f64),
        ]);
    }
    print_table(
        &[
            "sensors",
            "models",
            "wall time",
            "cpu time (sum)",
            "per model",
        ],
        &rows,
    );
    println!(
        "\nModels grow as N(N-1); per-model cost is flat, so the sweep parallelizes\n\
         embarrassingly — the paper's scalability argument."
    );
    let path = write_csv(
        "scalability.csv",
        &["sensors", "models", "wall_time", "cpu_time", "per_model_ms"],
        &rows,
    );
    println!("wrote {}", path.display());
}
