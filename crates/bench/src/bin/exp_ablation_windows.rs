//! Ablation A2 — word/sentence window sweep (the §III-A1 design discussion).
//!
//! The paper argues word length trades vocabulary size (information) against
//! training time, and sentence stride trades detection granularity against
//! corpus size. This sweep quantifies both on the reduced plant, plus the
//! effect on anomaly-detection separation (anomalous-day vs normal-day mean
//! score at a wide validity range).

use mdes_bench::plant_study::{PlantScale, PlantStudy};
use mdes_bench::report::{print_table, write_csv};
use mdes_core::TranslatorConfig;
use mdes_graph::ScoreRange;

fn main() {
    println!("Ablation A2 — window parameter sweep (16-sensor plant)\n");
    let mut rows = Vec::new();
    for (word_len, sent_len) in [(4, 10), (6, 10), (10, 10), (10, 20), (14, 20)] {
        let scale = PlantScale {
            n_sensors: 16,
            minutes_per_day: 240,
            word_len,
            sent_len,
        };
        let study = PlantStudy::run(&scale, TranslatorConfig::fast());
        let vocab_mean =
            study.vocabulary_sizes().iter().sum::<f64>() / study.vocabulary_sizes().len() as f64;
        let sweep_time: f64 = study.trained.runtimes().iter().sum();
        let (sep, windows_per_day) = match study.detect_test_period(ScoreRange::closed(40.0, 100.0))
        {
            Ok((result, days)) => {
                let mean_where = |anom: bool| -> f64 {
                    let vals: Vec<f64> = result
                        .scores
                        .iter()
                        .zip(&days)
                        .filter(|(_, &d)| study.plant.config.is_anomalous_day(d) == anom)
                        .map(|(&s, _)| s)
                        .collect();
                    vals.iter().sum::<f64>() / vals.len().max(1) as f64
                };
                let per_day = result.scores.len() as f64 / 17.0;
                (mean_where(true) - mean_where(false), per_day)
            }
            Err(_) => (f64::NAN, 0.0),
        };
        rows.push(vec![
            format!("{word_len}"),
            format!("{sent_len}"),
            format!("{vocab_mean:.0}"),
            format!("{sweep_time:.2}s"),
            format!("{windows_per_day:.0}"),
            format!("{sep:.3}"),
        ]);
    }
    print_table(
        &[
            "word len",
            "sent len",
            "mean vocab",
            "sweep time",
            "windows/day",
            "anomaly separation",
        ],
        &rows,
    );
    println!(
        "\nPaper takeaway: longer words -> larger vocabulary (more information, more\n\
         time); sentence stride sets the detection granularity. The separation\n\
         column shows the anomaly signal is robust across reasonable settings."
    );
    let path = write_csv(
        "ablation_windows.csv",
        &[
            "word_len",
            "sent_len",
            "mean_vocab",
            "sweep_time",
            "windows_per_day",
            "separation",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
}
