//! Experiment E13 — Table III: the top-5 most important SMART features
//! reported by the global subgraph at BLEU [80, 90), with their in/out
//! degrees.
//!
//! Paper result: 192 (power-off retract), 187 (reported uncorrectable),
//! 198 (offline uncorrectable), 197 (pending sectors), 5 (reallocated
//! sectors) — all error counters whose non-zero values signal failing I/O.
//! The simulator's ground-truth failure signals are exactly the error
//! features, so the check here is whether the graph ranking recovers them.

use mdes_bench::hdd_study::{default_fleet, HddStudy};
use mdes_bench::plant_study::translator_from_args;
use mdes_bench::report::{print_table, write_csv};
use mdes_graph::ScoreRange;
use mdes_synth::hdd::{ERROR_FEATURES, FEATURE_NAMES};
use std::collections::HashSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = HddStudy::run(&default_fleet(), translator_from_args(&args));
    let sub = study.trained.graph.subgraph(&ScoreRange::best_detection());

    let mut by_in: Vec<(usize, usize)> = sub
        .active_nodes()
        .iter()
        .map(|&n| (n, sub.in_degree(n)))
        .collect();
    by_in.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("Table III — top-5 features by in-degree at [80, 90)\n");
    let truth: HashSet<&str> = ERROR_FEATURES.iter().map(|&f| FEATURE_NAMES[f]).collect();
    let rows: Vec<Vec<String>> = by_in
        .iter()
        .take(5)
        .map(|&(n, d)| {
            let name = sub.name(n);
            vec![
                name.to_owned(),
                d.to_string(),
                sub.out_degree(n).to_string(),
                if truth.contains(name) {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    print_table(
        &[
            "feature",
            "in-degree",
            "out-degree",
            "ground-truth failure signal?",
        ],
        &rows,
    );

    let recovered = rows.iter().filter(|r| r[3] == "yes").count();
    println!(
        "\n{recovered}/5 of the top-5 are ground-truth failure signals \
         (paper: all 5 are error counters: SMART 192, 187, 198, 197, 5)"
    );
    let path = write_csv(
        "table3_top_features.csv",
        &["feature", "in_degree", "out_degree", "is_failure_signal"],
        &rows,
    );
    println!("wrote {}", path.display());
}
