//! Experiment — multi-stream serving throughput and memory scaling.
//!
//! The serving split (DESIGN.md §11) claims that N concurrent streams cost
//! one shared frozen [`GraphSnapshot`] plus N cheap [`StreamSession`]s,
//! instead of N full model copies. This experiment measures both claims on
//! a synthetic plant:
//!
//! 1. throughput: M identical-rate streams multiplexed through
//!    [`ServingEngine::push_opt_many`] over the worker pool, in samples/s;
//! 2. memory: accounted bytes of the shared snapshot vs the per-session
//!    state, against the naive baseline of one monitor (snapshot included)
//!    per stream.
//!
//! The run *asserts* that every stream keeps emitting detections and that
//! memory grows sub-linearly in M (per-stream bytes strictly decreasing),
//! making it the CI smoke test for the serving layer. Pass `--smoke` for
//! the reduced CI variant; the full run sweeps M ∈ {1, 4, 16, 64}.
//!
//! After the f32 sweep, the same snapshot is re-encoded to int8 and the
//! largest stream count re-runs against it, so the serving-layer cost of a
//! quantized artifact is measured end to end (decode + detection, not just
//! GEMM). Every configuration's per-push latency distribution lands in
//! `results/BENCH_serving.json` as machine-readable records.

use mdes_bench::report::{arg_flag, print_table, write_csv, write_json, BenchRecord};
use mdes_core::serve::{GraphSnapshot, QuantPolicy, ServingEngine, StreamSession};
use mdes_core::{Mdes, MdesConfig, QuantMode};
use mdes_graph::ScoreRange;
use mdes_lang::WindowConfig;
use mdes_synth::plant::{generate, PlantConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = arg_flag(&args, "smoke");
    let stream_counts: &[usize] = if smoke { &[1, 4, 16] } else { &[1, 4, 16, 64] };

    let plant = generate(&PlantConfig {
        n_sensors: 8,
        days: 8,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        cfg,
    )
    .expect("fit plant");
    let snapshot = GraphSnapshot::freeze(&m);
    let shared_bytes = snapshot.approx_bytes();
    eprintln!(
        "frozen snapshot: {} models ({} valid), {:.1} KiB shared",
        snapshot.models().len(),
        snapshot.valid_models().len(),
        shared_bytes as f64 / 1024.0
    );

    let ticks = if smoke {
        120
    } else {
        plant.days_range(7, 8).len() - 64
    };

    // One serving configuration: M staggered streams (so the workers never
    // decode byte-identical windows in lockstep) pushed through
    // `push_opt_many`, timing every multiplexed push. Returns the per-push
    // latency samples (ns), per-stream detection counts and session bytes.
    let run_config = |data: &mdes_synth::plant::PlantData,
                      snap: &GraphSnapshot,
                      streams: usize,
                      ticks: usize| {
        let width = data.traces.len();
        let test = data.days_range(7, 8);
        let engine = ServingEngine::new(snap.clone());
        let mut sessions: Vec<StreamSession> = (0..streams)
            .map(|_| engine.open_session(width).expect("open session"))
            .collect();
        assert_eq!(engine.session_count(), streams);
        let mut detections = vec![0usize; streams];
        let mut latencies = Vec::with_capacity(ticks);
        for i in 0..ticks {
            let samples: Vec<Vec<Option<String>>> = (0..streams)
                .map(|k| {
                    data.sample(test.start + i + k)
                        .into_iter()
                        .map(Some)
                        .collect()
                })
                .collect();
            let push = Instant::now();
            let results = engine.push_opt_many(&mut sessions, &samples);
            latencies.push(push.elapsed().as_secs_f64() * 1e9);
            for (k, r) in results.into_iter().enumerate() {
                if r.expect("push").is_some() {
                    detections[k] += 1;
                }
            }
        }
        assert!(
            detections.iter().all(|&d| d > 0),
            "every stream must keep emitting detections"
        );
        let session_bytes: usize = sessions.iter().map(StreamSession::approx_bytes).sum();
        (latencies, detections, session_bytes)
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut prev_per_stream = f64::INFINITY;
    for &streams in stream_counts {
        let started = Instant::now();
        let (latencies, detections, session_bytes) = run_config(&plant, &snapshot, streams, ticks);
        let secs = started.elapsed().as_secs_f64();

        let total = shared_bytes + session_bytes;
        let naive = streams * (shared_bytes + session_bytes / streams);
        let per_stream = total as f64 / streams as f64;
        assert!(
            per_stream < prev_per_stream,
            "per-stream memory must shrink as streams share the snapshot"
        );
        prev_per_stream = per_stream;
        records.push(BenchRecord::from_samples(
            &format!("serving/push_{streams}streams_f32"),
            &latencies,
            Some(total as u64),
        ));

        let throughput = (streams * ticks) as f64 / secs;
        rows.push(vec![
            streams.to_string(),
            format!("{throughput:.0}"),
            detections.iter().sum::<usize>().to_string(),
            format!("{:.1}", total as f64 / 1024.0),
            format!("{:.1}", naive as f64 / 1024.0),
            format!("{:.1}", per_stream / 1024.0),
        ]);
    }

    // Quantized serving: the statistical default above carries no neural
    // weights (quantization passes n-gram tables through unchanged), so the
    // f32-vs-int8 serving comparison runs on a smaller plant trained with
    // the paper's neural family. This measures the end-to-end serving cost
    // of a quantized artifact — windowing + decode + scoring through
    // `push_opt_many` — not just the GEMM kernels.
    let neural_plant = generate(&PlantConfig {
        n_sensors: 3,
        days: 8,
        minutes_per_day: 288,
        n_components: 1,
        anomaly_days: vec![],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let mut ncfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    ncfg.build.translator = mdes_core::TranslatorConfig::neural();
    ncfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    ncfg.detection.margin = 5.0;
    let nm = Mdes::fit(
        &neural_plant.traces,
        neural_plant.days_range(1, 2),
        neural_plant.days_range(5, 6),
        ncfg,
    )
    .expect("fit neural plant");
    let nsnap = GraphSnapshot::freeze(&nm);
    let qsnap = nsnap
        .quantize(QuantMode::Int8, &QuantPolicy::default())
        .expect("int8 re-encode");
    let (f32_bytes, q_bytes) = (nsnap.approx_bytes(), qsnap.approx_bytes());
    assert!(
        q_bytes < f32_bytes,
        "int8 must shrink a neural snapshot ({q_bytes} vs {f32_bytes})"
    );

    let largest = *stream_counts.last().expect("non-empty sweep");
    let started = Instant::now();
    let (f32_lat, _, f32_session_bytes) = run_config(&neural_plant, &nsnap, largest, ticks);
    let f32_secs = started.elapsed().as_secs_f64();
    records.push(BenchRecord::from_samples(
        &format!("serving/push_{largest}streams_neural_f32"),
        &f32_lat,
        Some((f32_bytes + f32_session_bytes) as u64),
    ));
    let started = Instant::now();
    let (q_lat, _, q_session_bytes) = run_config(&neural_plant, &qsnap, largest, ticks);
    let q_secs = started.elapsed().as_secs_f64();
    records.push(BenchRecord::from_samples(
        &format!("serving/push_{largest}streams_neural_int8"),
        &q_lat,
        Some((q_bytes + q_session_bytes) as u64),
    ));
    eprintln!(
        "neural serving at {largest} streams: int8 {:.0} samples/s vs f32 {:.0} \
         ({:.2}x), snapshot {:.1} KiB vs {:.1} KiB",
        (largest * ticks) as f64 / q_secs,
        (largest * ticks) as f64 / f32_secs,
        f32_secs / q_secs,
        q_bytes as f64 / 1024.0,
        f32_bytes as f64 / 1024.0,
    );

    let json_path = write_json("BENCH_serving.json", &records);
    eprintln!("wrote {}", json_path.display());

    print_table(
        &[
            "streams",
            "samples/s",
            "detections",
            "total KiB",
            "naive KiB",
            "KiB/stream",
        ],
        &rows,
    );
    write_csv(
        "serving.csv",
        &[
            "streams",
            "samples_per_sec",
            "detections",
            "total_kib",
            "naive_kib",
            "kib_per_stream",
        ],
        &rows,
    );
    println!("serving scaling OK: memory grows sub-linearly in stream count");
}
