//! Experiment — multi-stream serving throughput and memory scaling.
//!
//! The serving split (DESIGN.md §11) claims that N concurrent streams cost
//! one shared frozen [`GraphSnapshot`] plus N cheap [`StreamSession`]s,
//! instead of N full model copies. This experiment measures both claims on
//! a synthetic plant:
//!
//! 1. throughput: M identical-rate streams multiplexed through
//!    [`ServingEngine::push_opt_many`] over the worker pool, in samples/s;
//! 2. memory: accounted bytes of the shared snapshot vs the per-session
//!    state, against the naive baseline of one monitor (snapshot included)
//!    per stream.
//!
//! The run *asserts* that every stream keeps emitting detections and that
//! memory grows sub-linearly in M (per-stream bytes strictly decreasing),
//! making it the CI smoke test for the serving layer. Pass `--smoke` for
//! the reduced CI variant; the full run sweeps M ∈ {1, 4, 16, 64}.

use mdes_bench::report::{arg_flag, print_table, write_csv};
use mdes_core::serve::{GraphSnapshot, ServingEngine, StreamSession};
use mdes_core::{Mdes, MdesConfig};
use mdes_graph::ScoreRange;
use mdes_lang::WindowConfig;
use mdes_synth::plant::{generate, PlantConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = arg_flag(&args, "smoke");
    let stream_counts: &[usize] = if smoke { &[1, 4, 16] } else { &[1, 4, 16, 64] };

    let plant = generate(&PlantConfig {
        n_sensors: 8,
        days: 8,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        cfg,
    )
    .expect("fit plant");
    let snapshot = GraphSnapshot::freeze(&m);
    let shared_bytes = snapshot.approx_bytes();
    eprintln!(
        "frozen snapshot: {} models ({} valid), {:.1} KiB shared",
        snapshot.models().len(),
        snapshot.valid_models().len(),
        shared_bytes as f64 / 1024.0
    );

    let width = plant.traces.len();
    let test = plant.days_range(7, 8);
    let ticks = if smoke { 120 } else { test.len() - 64 };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut prev_per_stream = f64::INFINITY;
    for &streams in stream_counts {
        let engine = ServingEngine::new(snapshot.clone());
        let mut sessions: Vec<StreamSession> = (0..streams)
            .map(|_| engine.open_session(width).expect("open session"))
            .collect();
        assert_eq!(engine.session_count(), streams);

        // Stagger each stream by one sample so the workers never decode
        // byte-identical windows in lockstep.
        let mut detections = vec![0usize; streams];
        let started = Instant::now();
        for i in 0..ticks {
            let samples: Vec<Vec<Option<String>>> = (0..streams)
                .map(|k| {
                    plant
                        .sample(test.start + i + k)
                        .into_iter()
                        .map(Some)
                        .collect()
                })
                .collect();
            for (k, r) in engine
                .push_opt_many(&mut sessions, &samples)
                .into_iter()
                .enumerate()
            {
                if r.expect("push").is_some() {
                    detections[k] += 1;
                }
            }
        }
        let secs = started.elapsed().as_secs_f64();
        assert!(
            detections.iter().all(|&d| d > 0),
            "every stream must keep emitting detections"
        );

        let session_bytes: usize = sessions.iter().map(StreamSession::approx_bytes).sum();
        let total = shared_bytes + session_bytes;
        let naive = streams * (shared_bytes + session_bytes / streams);
        let per_stream = total as f64 / streams as f64;
        assert!(
            per_stream < prev_per_stream,
            "per-stream memory must shrink as streams share the snapshot"
        );
        prev_per_stream = per_stream;

        let throughput = (streams * ticks) as f64 / secs;
        rows.push(vec![
            streams.to_string(),
            format!("{throughput:.0}"),
            detections.iter().sum::<usize>().to_string(),
            format!("{:.1}", total as f64 / 1024.0),
            format!("{:.1}", naive as f64 / 1024.0),
            format!("{:.1}", per_stream / 1024.0),
        ]);
    }

    print_table(
        &[
            "streams",
            "samples/s",
            "detections",
            "total KiB",
            "naive KiB",
            "KiB/stream",
        ],
        &rows,
    );
    write_csv(
        "serving.csv",
        &[
            "streams",
            "samples_per_sec",
            "detections",
            "total_kib",
            "naive_kib",
            "kib_per_stream",
        ],
        &rows,
    );
    println!("serving scaling OK: memory grows sub-linearly in stream count");
}
