//! Experiment — quantized serving artifact size and decode throughput at
//! plant scale (DESIGN.md §13).
//!
//! Builds the serving artifact shape of the paper's large plant: a language
//! pipeline fitted on a 128-sensor synthetic plant plus one real-sized
//! frozen seq2seq per adjacent sensor pair (127 pair models). The weights
//! stay untrained — artifact size and decode cost do not depend on the
//! weight values — which keeps the experiment runnable in CI where fitting
//! 127 neural models would not be.
//!
//! Per weight encoding (f32 / f16 / int8) it measures:
//!
//! 1. serialized MDSN artifact bytes ([`snapshot_to_bytes`]), the thing a
//!    daemon uploads and hot-swaps;
//! 2. in-memory weight bytes ([`GraphSnapshot::approx_bytes`]);
//! 3. streaming decode throughput: each round sweeps every pair model over
//!    one batch, so the full weight set streams through the cache per round
//!    — the serving worker's regime, where halving the weight bytes is a
//!    bandwidth win.
//!
//! The run *asserts* the artifact contract CI's bench-smoke relies on: the
//! int8 artifact is at most half the f32 artifact's serialized size, both
//! quantized artifacts round-trip through MDSN bytes with their encoding
//! intact, and every encoding decodes the same sweep without error.
//! Latency distributions land in `results/BENCH_quant.json`.

use mdes_bench::report::{arg_flag, print_table, write_csv, write_json, BenchRecord};
use mdes_core::checkpoint::{snapshot_from_bytes, snapshot_to_bytes};
use mdes_core::serve::{FrozenNmt, FrozenPairModel, FrozenTranslator, GraphSnapshot, QuantPolicy};
use mdes_core::{DetectionConfig, QuantMode};
use mdes_graph::{RelGraph, ScoreRange};
use mdes_lang::{LanguagePipeline, Vocab, WindowConfig};
use mdes_nn::{InferArena, Seq2Seq, Seq2SeqConfig};
use mdes_synth::plant::{generate, PlantConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = arg_flag(&args, "smoke");
    let (n_sensors, rounds) = if smoke { (32, 3) } else { (128, 8) };

    let plant = generate(&PlantConfig {
        n_sensors,
        days: 4,
        minutes_per_day: 288,
        anomaly_days: vec![],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let lang = LanguagePipeline::fit(
        &plant.traces,
        plant.days_range(1, 3),
        WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
    )
    .expect("fit language pipeline");
    // The pipeline drops sensors constant over the fit range; a large plant
    // typically loses a couple. Model indices refer to surviving languages.
    let n_langs = lang.languages().len();
    assert!(
        n_langs >= n_sensors - n_sensors / 8,
        "unexpectedly many constant sensors ({n_langs} of {n_sensors} survive)"
    );

    // One real-sized pair model per adjacent surviving-sensor pair — the
    // chain topology gives n-1 models without an Algorithm 1 sweep.
    let spec_cfg = Seq2SeqConfig {
        embed_dim: 64,
        hidden: 128,
        ..Seq2SeqConfig::default()
    };
    let names: Vec<String> = lang.languages().iter().map(|l| l.name.clone()).collect();
    let mut graph = RelGraph::new(names);
    let models: Vec<FrozenPairModel> = (0..n_langs - 1)
        .map(|i| {
            graph.set_score(i, i + 1, 50.0);
            let sv = lang.languages()[i].vocab.size();
            let tv = lang.languages()[i + 1].vocab.size();
            let spec = Seq2Seq::new(sv, tv, Vocab::BOS as usize, spec_cfg.clone()).freeze();
            FrozenPairModel::new(
                i,
                i + 1,
                50.0,
                0.0,
                FrozenTranslator::Nmt(FrozenNmt::new(spec)),
            )
        })
        .collect();
    let detection = DetectionConfig {
        valid_range: ScoreRange::closed(0.0, 100.0),
        ..DetectionConfig::default()
    };
    let f32_snap = GraphSnapshot::from_frozen_parts(graph, lang.clone(), detection, models);
    eprintln!(
        "{} pair models ({} valid), {:.1} MiB resident f32",
        f32_snap.models().len(),
        f32_snap.valid_models().len(),
        f32_snap.approx_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Per-model decode batches: 4 sentences of in-vocab tokens each. The
    // same batches drive every encoding, so rounds are comparable.
    let batches: Vec<Vec<Vec<u32>>> = (0..n_langs - 1)
        .map(|i| {
            let sv = lang.languages()[i].vocab.size() as u32;
            (0..4u32)
                .map(|b| (0..6u32).map(|t| (b * 7 + t * 3) % sv).collect())
                .collect()
        })
        .collect();

    // Sweeps every pair model once per round; returns per-round latencies
    // (ns) and the total decoded sentence count as a sanity check.
    let sweep = |snap: &GraphSnapshot, rounds: usize| {
        let mut arena = InferArena::new();
        let mut latencies = Vec::with_capacity(rounds);
        let mut decoded = 0usize;
        for _ in 0..rounds {
            let round = Instant::now();
            for (k, model) in snap.models().iter().enumerate() {
                let srcs: Vec<&[u32]> = batches[k].iter().map(Vec::as_slice).collect();
                let out = model.translator().translate_batch(&srcs, 6, &mut arena);
                assert_eq!(out.len(), srcs.len(), "one output per input");
                decoded += out.len();
            }
            latencies.push(round.elapsed().as_secs_f64() * 1e9);
        }
        (latencies, decoded)
    };

    let policy = QuantPolicy::default();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut f32_wire = 0usize;
    let mut f32_ms = 0.0f64;
    for mode in [QuantMode::F32, QuantMode::F16, QuantMode::Int8] {
        let snap = if mode == QuantMode::F32 {
            f32_snap.clone()
        } else {
            f32_snap.quantize(mode, &policy).expect("re-encode")
        };
        let wire = snapshot_to_bytes(&snap).expect("serialize").len();
        if mode != QuantMode::F32 {
            // The artifact must survive its own transport encoding.
            let back = snapshot_from_bytes(&snapshot_to_bytes(&snap).expect("serialize"))
                .expect("round-trip");
            assert_eq!(back.quant_mode(), Some(mode), "encoding lost in transit");
            assert_eq!(back.models().len(), snap.models().len());
        }

        sweep(&snap, 1); // warm: packed-weight caches, page-in
        let (latencies, decoded) = sweep(&snap, rounds);
        assert_eq!(decoded, rounds * 4 * (n_langs - 1));
        let record = BenchRecord::from_samples(
            &format!("quant/sweep{}models_{mode}", n_langs - 1),
            &latencies,
            Some(wire as u64),
        );
        let ms = record.mean_ns / 1e6;
        if mode == QuantMode::F32 {
            (f32_wire, f32_ms) = (wire, ms);
        }
        rows.push(vec![
            mode.to_string(),
            format!("{:.2}", wire as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", snap.approx_bytes() as f64 / (1024.0 * 1024.0)),
            format!("{ms:.1}"),
            format!("{:.2}", f32_ms / ms),
        ]);
        records.push(record);
        if mode == QuantMode::Int8 {
            assert!(
                wire * 2 <= f32_wire,
                "int8 artifact must be at most half the f32 artifact \
                 ({wire} vs {f32_wire} serialized bytes)"
            );
        }
    }

    print_table(
        &[
            "encoding",
            "MDSN MiB",
            "resident MiB",
            "ms/round",
            "speedup",
        ],
        &rows,
    );
    write_csv(
        "quant.csv",
        &[
            "encoding",
            "mdsn_mib",
            "resident_mib",
            "ms_per_round",
            "speedup_vs_f32",
        ],
        &rows,
    );
    let json_path = write_json("BENCH_quant.json", &records);
    eprintln!("wrote {}", json_path.display());
    println!("quantized artifact contract OK: int8 wire size <= 1/2 f32, encodings round-trip");
}
