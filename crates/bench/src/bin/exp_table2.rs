//! Experiment E11 — Table II: model comparison on the HDD fleet.
//!
//! Paper row-by-row: Random Forest (supervised, feature-engineered) reaches
//! 70–80 % recall; one-class SVM (unsupervised, feature-engineered) 60 %;
//! the framework (unsupervised, *no* feature engineering, works natively on
//! discrete event sequences) 58 %. The absolute numbers depend on the
//! synthetic fleet; the ordering and capability columns are the result.

use mdes_bench::hdd_study::{default_fleet, HddStudy};
use mdes_bench::plant_study::translator_from_args;
use mdes_bench::report::{print_table, write_csv};
use mdes_graph::ScoreRange;
use mdes_ml::{
    auc, Confusion, Dataset, ForestConfig, KMeans, KMeansConfig, OneClassSvm, RandomForest, Scaler,
    SvmConfig,
};
use mdes_synth::hdd::{generate, HddConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = HddStudy::run(&default_fleet(), translator_from_args(&args));

    // The baselines train on a much larger fleet, mirroring the paper where
    // RF/OC-SVM see the whole drive population while the framework analyzes
    // the 24 long-history disks. Labels use a 3-day failure-prediction
    // window (Mahdisoltani et al., ATC'17 — the RF reference the paper
    // cites), since single failure-day labels are too sparse to train on.
    let big = generate(&HddConfig {
        n_drives: 200,
        days: 240,
        failure_fraction: 0.25,
        ..HddConfig::default()
    });
    let (x, y, names) = big.to_tabular_windowed(3);
    let data = Dataset::new(x, y).with_feature_names(names);
    let mut rng = StdRng::seed_from_u64(11);
    let (train, test) = data.train_test_split(0.8, &mut rng);

    // --- Random Forest: supervised, 1:1 under-sampling. ---
    let rf_train = train.undersample_balanced(&mut rng);
    let forest = RandomForest::fit(&rf_train, &ForestConfig::default());
    let rf = Confusion::from_predictions(&forest.predict(&test.x), &test.y);

    // --- One-class SVM: standardized features, sub-sampled healthy set
    //     (it scales poorly with training-set size, as the paper notes). ---
    let healthy = train.filter_class(0);
    let scaler = Scaler::fit(&healthy.x);
    let sub_x: Vec<Vec<f64>> = healthy.x.iter().step_by(40).cloned().collect();
    let sub = Dataset::new(scaler.transform(&sub_x), vec![0; sub_x.len()]);
    let svm = OneClassSvm::fit(
        &sub,
        &SvmConfig {
            nu: 0.05,
            ..SvmConfig::default()
        },
    );
    let oc = Confusion::from_predictions(&svm.predict(&scaler.transform(&test.x)), &test.y);

    // --- The framework: pooled models, per-drive detection (Fig. 12 rule). ---
    let outcomes = study.evaluate(ScoreRange::best_detection(), 0.3);
    let ours_recall = HddStudy::recall(&outcomes);
    let ours_fa = HddStudy::false_alarm_rate(&outcomes);

    println!("Table II — model comparison on the HDD fleet\n");
    let rows = vec![
        vec![
            "Random Forest".into(),
            "no".into(),
            "yes".into(),
            "yes".into(),
            format!("{:.0}%", 100.0 * rf.recall()),
            "no".into(),
        ],
        vec![
            "One-class SVM".into(),
            "yes".into(),
            "yes".into(),
            "no".into(),
            format!("{:.0}%", 100.0 * oc.recall()),
            "no".into(),
        ],
        vec![
            "Ours (translation graph)".into(),
            "yes".into(),
            "no".into(),
            "yes".into(),
            format!("{:.0}%", 100.0 * ours_recall),
            "yes".into(),
        ],
    ];
    print_table(
        &[
            "model",
            "unsupervised?",
            "feature eng.?",
            "feature ranking?",
            "recall",
            "discrete-native?",
        ],
        &rows,
    );
    println!("\npaper: RF 70-80% | OC-SVM 60% | ours 58%");
    println!(
        "extras: RF precision {:.2}, OC-SVM precision {:.2}, ours false-alarm rate {:.2} over {} healthy drives",
        rf.precision(),
        oc.precision(),
        ours_fa,
        outcomes.iter().filter(|o| !o.failed).count()
    );
    // Threshold-free comparison (ours): AUC of each baseline's continuous
    // score on the test split, including the k-means distance detector the
    // paper's introduction cites as the classic unsupervised alternative.
    let rf_scores: Vec<f64> = test.x.iter().map(|r| forest.predict_proba(r, 1)).collect();
    let svm_scores: Vec<f64> = scaler
        .transform(&test.x)
        .iter()
        .map(|r| -svm.decision(r))
        .collect();
    let km = KMeans::fit(
        &sub.x,
        &KMeansConfig {
            k: 4,
            ..KMeansConfig::default()
        },
        &mut rng,
    );
    let km_scores: Vec<f64> = scaler
        .transform(&test.x)
        .iter()
        .map(|r| km.distance_to_nearest(r))
        .collect();
    println!(
        "score AUCs on the test split: RF {:.2} | OC-SVM {:.2} | k-means distance {:.2}",
        auc(&rf_scores, &test.y),
        auc(&svm_scores, &test.y),
        auc(&km_scores, &test.y)
    );
    let _ = &study.fleet;
    let path = write_csv(
        "table2_model_comparison.csv",
        &[
            "model",
            "unsupervised",
            "feature_eng",
            "feature_ranking",
            "recall",
            "discrete_native",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
}
