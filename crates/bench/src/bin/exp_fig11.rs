//! Experiment E12 — Fig. 11: feature-importance analysis on the HDD fleet.
//!
//! (a) The global subgraph at BLEU [80, 90): features with the highest
//! in-degree are the critical disk-health indicators. (b) The Random Forest
//! feature-importance top-10 as the supervised reference. The paper's
//! validation: all graph-selected features appear in the RF top-10.

use mdes_bench::hdd_study::{default_fleet, HddStudy};
use mdes_bench::plant_study::translator_from_args;
use mdes_bench::report::{print_table, write_csv};
use mdes_graph::ScoreRange;
use mdes_ml::{Dataset, ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = HddStudy::run(&default_fleet(), translator_from_args(&args));

    // (a) Graph-based ranking: in-degree in the [80, 90) subgraph.
    let sub = study.trained.graph.subgraph(&ScoreRange::best_detection());
    let mut by_in: Vec<(usize, usize)> = sub
        .active_nodes()
        .iter()
        .map(|&n| (n, sub.in_degree(n)))
        .collect();
    by_in.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("Fig. 11a — features by in-degree in the [80, 90) global subgraph");
    let rows: Vec<Vec<String>> = by_in
        .iter()
        .take(8)
        .map(|&(n, d)| {
            vec![
                sub.name(n).to_owned(),
                d.to_string(),
                sub.out_degree(n).to_string(),
            ]
        })
        .collect();
    print_table(&["feature", "in-degree", "out-degree"], &rows);

    // (b) Random Forest reference ranking.
    let (x, y, names) = study.fleet.to_tabular();
    let data = Dataset::new(x, y).with_feature_names(names.clone());
    let mut rng = StdRng::seed_from_u64(11);
    let (train, _) = data.train_test_split(0.8, &mut rng);
    let balanced = train.undersample_balanced(&mut rng);
    let forest = RandomForest::fit(&balanced, &ForestConfig::default());
    println!("\nFig. 11b — Random Forest top-10 feature importances");
    let ranked = forest.ranked_features();
    let rf_rows: Vec<Vec<String>> = ranked
        .iter()
        .take(10)
        .map(|&(f, w)| vec![names[f].clone(), format!("{w:.3}")])
        .collect();
    print_table(&["feature", "importance"], &rf_rows);

    // Overlap check (the paper's validation). RF features include "_delta"
    // variants of the same underlying SMART attribute; match on the base name.
    let base = |s: &str| s.trim_end_matches("_delta").to_owned();
    let rf_top: HashSet<String> = ranked
        .iter()
        .take(10)
        .map(|&(f, _)| base(&names[f]))
        .collect();
    let graph_top: Vec<String> = by_in
        .iter()
        .take(5)
        .map(|&(n, _)| sub.name(n).to_owned())
        .collect();
    let overlap = graph_top.iter().filter(|g| rf_top.contains(*g)).count();
    println!(
        "\noverlap: {overlap}/{} of the graph's top features appear in the RF top-10 \
         (paper: 5/5)",
        graph_top.len()
    );

    let csv: Vec<Vec<String>> = by_in
        .iter()
        .map(|&(n, d)| vec![sub.name(n).to_owned(), d.to_string()])
        .chain(
            ranked
                .iter()
                .map(|&(f, w)| vec![names[f].clone(), w.to_string()]),
        )
        .collect();
    let path = write_csv("fig11_feature_rankings.csv", &["feature", "score"], &csv);
    println!("wrote {}", path.display());
}
