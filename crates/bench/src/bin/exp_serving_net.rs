//! Experiment — network serving throughput through the `mdes-serve` daemon.
//!
//! `exp_serving` measures the in-process ceiling of the serving split; this
//! experiment measures what survives the wire. It boots a real daemon on a
//! loopback listener, opens S sessions spread over C ingest connections,
//! and streams the synthetic plant through the framed PushBatch protocol
//! with a fixed pipeline depth per session (so no push ever hits the
//! bounded ingest queue's `Busy` path). Reported throughput therefore
//! includes JSON codec + framing + checksum + kernel socket costs on both
//! sides, plus the pump's `push_opt_many` fan-out.
//!
//! The run *asserts* protocol health — zero `Busy`/`Gone`/`Error`
//! outcomes, one reply per push, detections emitted once past warmup —
//! making it the CI smoke test for the network layer. Pass `--smoke` for
//! the reduced CI variant (256 sessions); the full run sweeps up to 1024
//! concurrent sessions for the EXPERIMENTS.md figure.

use mdes_bench::report::{arg_flag, print_table, write_csv};
use mdes_core::serve::GraphSnapshot;
use mdes_core::serve::ServingEngine;
use mdes_core::{Mdes, MdesConfig};
use mdes_graph::ScoreRange;
use mdes_lang::WindowConfig;
use mdes_serve::{start, IngestClient, PushEntry, PushOutcome, ServeConfig};
use mdes_synth::plant::{generate, PlantConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Pushes in flight per session. Must stay <= the server's
/// `queue_capacity` so the bench never takes the `Busy` path.
const PIPELINE: usize = 4;

struct ConnStats {
    acks: usize,
    scores: usize,
}

/// Streams `ticks` samples into `per_conn` sessions over one connection,
/// keeping at most `PIPELINE` rounds outstanding.
#[allow(clippy::too_many_arguments)]
fn run_conn(
    addr: std::net::SocketAddr,
    width: usize,
    per_conn: usize,
    ticks: usize,
    samples: &[Vec<String>],
    stagger: usize,
    barrier: &Barrier,
    opened: &AtomicUsize,
) -> ConnStats {
    let mut client =
        IngestClient::connect_with_deadline(addr, Duration::from_secs(60)).expect("connect ingest");
    let sessions: Vec<u64> = (0..per_conn)
        .map(|_| client.open_session(width).expect("open session").0)
        .collect();
    opened.fetch_add(per_conn, Ordering::Relaxed);
    barrier.wait(); // measure streaming only, not session setup

    let mut stats = ConnStats { acks: 0, scores: 0 };
    let absorb = |replies: Vec<mdes_serve::PushReply>, stats: &mut ConnStats| {
        for r in replies {
            match r.outcome {
                PushOutcome::Ack => stats.acks += 1,
                PushOutcome::Score(_) => stats.scores += 1,
                other => panic!("session {} seq {}: {:?}", r.session, r.seq, other),
            }
        }
    };
    for t in 0..ticks {
        let entries: Vec<PushEntry> = sessions
            .iter()
            .enumerate()
            .map(|(k, &session)| PushEntry {
                session,
                seq: t as u64,
                records: samples[(t + (stagger + k) % 64) % samples.len()]
                    .iter()
                    .cloned()
                    .map(Some)
                    .collect(),
            })
            .collect();
        client.send_push_batch(entries).expect("send batch");
        if t + 1 >= PIPELINE {
            let replies = client.recv_push_replies(per_conn).expect("recv replies");
            absorb(replies, &mut stats);
        }
    }
    // The loop leaves exactly min(ticks, PIPELINE - 1) rounds in flight.
    let drained = ticks.min(PIPELINE - 1) * per_conn;
    let replies = client.recv_push_replies(drained).expect("drain replies");
    absorb(replies, &mut stats);
    stats
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = arg_flag(&args, "smoke");
    // (sessions, connections) sweep; the smoke floor is 256 sessions.
    let sweep: &[(usize, usize)] = if smoke {
        &[(256, 8)]
    } else {
        &[(64, 4), (256, 8), (1024, 16)]
    };
    let ticks = if smoke { 64 } else { 128 };

    let plant = generate(&PlantConfig {
        n_sensors: 8,
        days: 8,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        cfg,
    )
    .expect("fit plant");
    let snapshot = GraphSnapshot::freeze(&m);
    let width = plant.traces.len();
    let test = plant.days_range(7, 8);
    let samples: Vec<Vec<String>> = (test.start..test.end).map(|t| plant.sample(t)).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for &(sessions, conns) in sweep {
        let engine = ServingEngine::new(snapshot.clone());
        let server = start(
            engine,
            ServeConfig {
                admin_addr: None,
                max_conns: conns + 4,
                outbound_capacity: PIPELINE * sessions.div_ceil(conns) + 64,
                idle_ttl: Duration::from_secs(600),
                ..ServeConfig::default()
            },
        )
        .expect("start daemon");
        let addr = server.addr();
        let per_conn = sessions / conns;
        assert_eq!(per_conn * conns, sessions, "sweep must divide evenly");

        let barrier = Barrier::new(conns + 1);
        let opened = AtomicUsize::new(0);
        let (stats, secs) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|c| {
                    let (samples, barrier, opened) = (&samples, &barrier, &opened);
                    scope.spawn(move || {
                        run_conn(
                            addr,
                            width,
                            per_conn,
                            ticks,
                            samples,
                            c * per_conn,
                            barrier,
                            opened,
                        )
                    })
                })
                .collect();
            barrier.wait();
            let started = Instant::now();
            let stats: Vec<ConnStats> = handles
                .into_iter()
                .map(|h| h.join().expect("conn thread"))
                .collect();
            (stats, started.elapsed().as_secs_f64())
        });
        assert_eq!(opened.load(Ordering::Relaxed), sessions);

        let acks: usize = stats.iter().map(|s| s.acks).sum();
        let scores: usize = stats.iter().map(|s| s.scores).sum();
        assert_eq!(acks + scores, sessions * ticks, "one reply per push");
        assert!(scores > 0, "ticks must reach past warmup");
        let throughput = (sessions * ticks) as f64 / secs;
        rows.push(vec![
            sessions.to_string(),
            conns.to_string(),
            ticks.to_string(),
            format!("{throughput:.0}"),
            scores.to_string(),
        ]);
        server.stop();
    }

    print_table(
        &["sessions", "conns", "ticks", "samples/s", "detections"],
        &rows,
    );
    write_csv(
        "serving_net.csv",
        &[
            "sessions",
            "conns",
            "ticks",
            "samples_per_sec",
            "detections",
        ],
        &rows,
    );
    println!("network serving OK: every push acknowledged, zero Busy/Gone/Error");
}
