//! Experiment E5 — Fig. 5: CDFs of in-degree and out-degree of sensors in
//! the global subgraphs at each BLEU score range.
//!
//! Paper shape: 20–25 % of sensors are "popular" with very high in-degree
//! while the rest sit near the bottom; out-degrees spread comparatively
//! evenly.

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::{print_cdf, write_csv};
use mdes_graph::{in_degrees, out_degrees, ScoreRange};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));

    let mut csv_rows = Vec::new();
    for range in ScoreRange::paper_buckets() {
        let sub = study.trained.graph.subgraph(&range);
        let ins: Vec<f64> = in_degrees(&sub).into_iter().map(|d| d as f64).collect();
        let outs: Vec<f64> = out_degrees(&sub).into_iter().map(|d| d as f64).collect();
        if ins.is_empty() {
            println!("{range}: empty subgraph\n");
            continue;
        }
        println!("=== global subgraph {range} ===");
        print_cdf("  in-degree", &ins);
        print_cdf("  out-degree", &outs);
        let spread = |v: &[f64]| {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(0.0f64, f64::max);
            (lo, hi)
        };
        let (ilo, ihi) = spread(&ins);
        let (olo, ohi) = spread(&outs);
        println!("  in-degree range [{ilo:.0}, {ihi:.0}], out-degree range [{olo:.0}, {ohi:.0}]\n");
        for (v, kind) in [(&ins, "in"), (&outs, "out")] {
            for &d in v.iter() {
                csv_rows.push(vec![range.to_string(), kind.to_string(), d.to_string()]);
            }
        }
    }
    let path = write_csv(
        "fig5_degree_distributions.csv",
        &["range", "kind", "degree"],
        &csv_rows,
    );
    println!("wrote {}", path.display());
}
