//! Baseline comparison — multidimensional Hawkes process vs the translation
//! graph for structure discovery.
//!
//! The paper's related work (§V) points at Hawkes processes as the
//! established model for inter-dependent multi-source event streams. Here
//! both methods see the same plant: the Hawkes process receives each
//! sensor's *state-change events* and its fitted influence matrix provides
//! pairwise edge strengths; the translation graph uses dev BLEU. The metric
//! is precision@k: of each method's k strongest cross-sensor edges, how many
//! connect sensors of the same ground-truth component?

use mdes_bench::plant_study::{PlantScale, PlantStudy};
use mdes_bench::report::{print_table, write_csv};
use mdes_core::TranslatorConfig;
use mdes_ml::{Hawkes, HawkesConfig, HawkesEvent};

fn main() {
    let scale = PlantScale {
        n_sensors: 16,
        minutes_per_day: 240,
        word_len: 8,
        sent_len: 10,
    };
    let study = PlantStudy::run(&scale, TranslatorConfig::fast());
    let n = study.pipeline.sensor_count();
    let train = study.plant.days_range(1, 5);

    // Ground truth: same-component indicator per surviving-sensor pair.
    let component: Vec<usize> = (0..n)
        .map(|k| study.plant.sensors[study.pipeline.languages()[k].source_index].component)
        .collect();

    // --- Hawkes: state-change events per sensor over the training days. ---
    let mut events: Vec<HawkesEvent> = Vec::new();
    for k in 0..n {
        let src = study.pipeline.languages()[k].source_index;
        let seg = &study.plant.traces[src].events[train.clone()];
        for (t, w) in seg.windows(2).enumerate() {
            if w[0] != w[1] {
                events.push(((t + 1) as f64, k));
            }
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let horizon = (train.end - train.start) as f64;
    println!(
        "fitting Hawkes on {} state-change events, {} dims...",
        events.len(),
        n
    );
    let hawkes = Hawkes::fit(
        &events,
        n,
        horizon,
        &HawkesConfig {
            beta: 0.1,
            iters: 25,
            ..Default::default()
        },
    );

    // Edge strengths: Hawkes alpha (symmetrized) vs translation BLEU.
    // Pair strength = min over the two directions: a genuine coupling must
    // translate well both ways, which suppresses the trivially-translatable
    // rare-event targets (high incoming, low outgoing).
    let mut hawkes_edges: Vec<((usize, usize), f64)> = Vec::new();
    let mut bleu_edges: Vec<((usize, usize), f64)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let a = hawkes.alpha()[i][j].min(hawkes.alpha()[j][i]);
            hawkes_edges.push(((i, j), a));
            let b = study
                .trained
                .graph
                .score(i, j)
                .unwrap_or(0.0)
                .min(study.trained.graph.score(j, i).unwrap_or(0.0));
            bleu_edges.push(((i, j), b));
        }
    }

    let precision_at = |edges: &[((usize, usize), f64)], k: usize| -> f64 {
        let mut sorted = edges.to_vec();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
        let hits = sorted
            .iter()
            .take(k)
            .filter(|((i, j), _)| component[*i] == component[*j])
            .count();
        hits as f64 / k as f64
    };
    // Chance level: fraction of all pairs that are same-component.
    let same = bleu_edges
        .iter()
        .filter(|((i, j), _)| component[*i] == component[*j])
        .count() as f64
        / bleu_edges.len() as f64;

    println!("\nStructure discovery: precision@k of same-component edges\n");
    let mut rows = Vec::new();
    for k in [5usize, 10, 20] {
        rows.push(vec![
            k.to_string(),
            format!("{:.2}", precision_at(&bleu_edges, k)),
            format!("{:.2}", precision_at(&hawkes_edges, k)),
            format!("{same:.2}"),
        ]);
    }
    print_table(
        &["k", "translation graph", "Hawkes influence", "chance"],
        &rows,
    );
    println!(
        "\nThe translation graph beats chance by a wide margin; the Hawkes influence\n\
         matrix barely does — deterministic phase-locked state changes violate the\n\
         point-process causality Hawkes assumes, which is exactly the paper's case\n\
         for a method designed around categorical sequences. The translation graph\n\
         also yields the BLEU thresholds that drive online detection."
    );
    let path = write_csv(
        "baseline_hawkes.csv",
        &["k", "translation", "hawkes", "chance"],
        &rows,
    );
    println!("wrote {}", path.display());
}
