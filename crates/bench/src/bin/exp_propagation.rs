//! Extension experiment — fault propagation over time (paper §III-C:
//! "describe similar figures for each anomaly at finer granularities ... to
//! visually present how faults propagate through sensors over time").
//!
//! Runs detection over an anomalous day window-by-window and prints the
//! spread front: which sensors join the fault at each detection window.

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::write_csv;
use mdes_core::propagation_timeline;
use mdes_graph::ScoreRange;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));
    let (result, days) = study
        .detect_test_period(ScoreRange::best_detection())
        .expect("detect over test period");

    let day = *study
        .plant
        .config
        .anomaly_days
        .first()
        .expect("an anomaly day");
    // Timeline over the precursor day before the anomaly plus the anomaly
    // day itself: the fault should spread across windows.
    let windows: Vec<usize> = (0..result.scores.len())
        .filter(|&t| days[t] == day || days[t] + 1 == day)
        .collect();
    let scores: Vec<f64> = windows.iter().map(|&t| result.scores[t]).collect();
    let alerts: Vec<Vec<(usize, usize)>> =
        windows.iter().map(|&t| result.alerts[t].clone()).collect();
    let steps = propagation_timeline(&scores, &alerts);

    println!("Fault propagation into day {day} (window = one sentence):\n");
    println!("window | day | a_t  | affected | newly affected sensors");
    let mut rows = Vec::new();
    for step in &steps {
        let t = windows[step.window];
        let newly: Vec<&str> = step
            .newly_affected
            .iter()
            .map(|&s| study.trained.graph.name(s))
            .collect();
        println!(
            "{:6} | {:3} | {:.2} | {:8} | {:?}",
            step.window,
            days[t],
            step.score,
            step.affected.len(),
            newly
        );
        rows.push(vec![
            step.window.to_string(),
            days[t].to_string(),
            format!("{:.4}", step.score),
            step.affected.len().to_string(),
            step.newly_affected.len().to_string(),
        ]);
    }

    let cumulative: usize = steps.iter().map(|s| s.newly_affected.len()).sum();
    println!(
        "\n{cumulative} sensors eventually touched by broken relationships \
         (of {} active)",
        study.trained.graph.len()
    );
    let path = write_csv(
        "propagation_timeline.csv",
        &["window", "day", "a_t", "affected", "newly_affected"],
        &rows,
    );
    println!("wrote {}", path.display());
}
