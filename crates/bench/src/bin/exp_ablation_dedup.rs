//! Ablation A7 — redundant-sensor filtering (paper §III-A2).
//!
//! "If redundant sensors are further filtered out, then models are trained
//! on representative sensors only and training time reduces significantly."
//! This experiment measures exactly that: model count and sweep time with
//! and without deduplication, and checks the representative graph preserves
//! the detection signal.

use mdes_bench::report::{print_table, write_csv};
use mdes_core::{build_graph, detect, DetectionConfig, GraphBuildConfig};
use mdes_graph::ScoreRange;
use mdes_lang::{dedupe_sensors, representative_traces, LanguagePipeline, WindowConfig};
use mdes_synth::plant::{generate, PlantConfig};
use std::time::Instant;

fn main() {
    // A plant with deliberate redundancy: 36 sensors over only 4 components
    // means many near-duplicate phase-locked sensors.
    let plant = generate(&PlantConfig {
        n_sensors: 36,
        days: 14,
        minutes_per_day: 240,
        n_components: 4,
        anomaly_days: vec![13],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let window = WindowConfig {
        word_len: 6,
        word_stride: 1,
        sent_len: 8,
        sent_stride: 8,
    };
    let train = plant.days_range(1, 5);
    let dev = plant.days_range(6, 7);

    let sweep = |traces: &[mdes_lang::RawTrace]| {
        let start = Instant::now();
        let pipeline = LanguagePipeline::fit(traces, train.clone(), window).expect("fit");
        let t = pipeline
            .encode_segment(traces, train.clone())
            .expect("train");
        let v = pipeline.encode_segment(traces, dev.clone()).expect("dev");
        let trained = build_graph(&pipeline, &t, &v, &GraphBuildConfig::default()).expect("build");
        let elapsed = start.elapsed().as_secs_f64();
        // Detection contrast between the anomalous day and a normal day.
        let dcfg = DetectionConfig {
            valid_range: ScoreRange::closed(40.0, 100.0),
            ..DetectionConfig::default()
        };
        let day = |d: usize| {
            let sets = pipeline
                .encode_segment(traces, plant.day_range(d))
                .expect("day");
            let res = detect(&trained, &sets, &dcfg).expect("detect");
            res.scores.iter().sum::<f64>() / res.scores.len() as f64
        };
        (trained.models().len(), elapsed, day(13) - day(10))
    };

    println!("Ablation A7 — redundant-sensor filtering (36 sensors, 4 components)\n");
    let (full_models, full_time, full_sep) = sweep(&plant.traces);

    let dedup = dedupe_sensors(&plant.traces, train.clone(), 0.97);
    let reps = representative_traces(&plant.traces, &dedup);
    let (dd_models, dd_time, dd_sep) = sweep(&reps);

    let rows = vec![
        vec![
            "all sensors".into(),
            plant.traces.len().to_string(),
            full_models.to_string(),
            format!("{full_time:.2}s"),
            format!("{full_sep:.3}"),
        ],
        vec![
            "representatives only".into(),
            reps.len().to_string(),
            dd_models.to_string(),
            format!("{dd_time:.2}s"),
            format!("{dd_sep:.3}"),
        ],
    ];
    print_table(
        &[
            "configuration",
            "sensors",
            "models",
            "sweep time",
            "anomaly separation",
        ],
        &rows,
    );
    println!(
        "\n{} redundant sensors removed ({} groups); model count cut by {:.0}% with the\n\
         detection signal preserved — the paper's §III-A2 speed-up, quantified.",
        dedup.removed(),
        dedup.groups().iter().filter(|(_, m)| m.len() > 1).count(),
        100.0 * (1.0 - dd_models as f64 / full_models as f64)
    );
    let path = write_csv(
        "ablation_dedup.csv",
        &[
            "configuration",
            "sensors",
            "models",
            "sweep_time",
            "separation",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
}
