//! Experiment E1 — Fig. 2: discrete event sequences of two representative
//! sensors (one periodic, one rare-event) on a normal day vs an anomalous
//! day.
//!
//! The paper's point: the two days are hard to distinguish visually, which
//! is why pairwise-relationship modeling is needed. We print summary
//! statistics per day and dump the raw series to CSV for plotting.

use mdes_bench::report::{print_table, write_csv};
use mdes_synth::plant::{generate, PlantConfig};

fn main() {
    let plant = generate(&PlantConfig::default());
    let periodic = plant.representative_periodic().expect("periodic sensor");
    let rare = plant.representative_rare().expect("rare-event sensor");
    let normal_day = 15;
    let anomalous_day = 21;

    println!("Fig. 2 — representative sensors, day {normal_day} (normal) vs day {anomalous_day} (anomalous)\n");
    let mut rows = Vec::new();
    for (label, sensor) in [
        ("periodic (Fig 2a)", periodic),
        ("rare-event (Fig 2b)", rare),
    ] {
        for day in [normal_day, anomalous_day] {
            let seg = &plant.traces[sensor].events[plant.day_range(day)];
            let transitions = seg.windows(2).filter(|w| w[0] != w[1]).count();
            let on = seg.iter().filter(|e| *e != "OFF").count();
            rows.push(vec![
                label.to_owned(),
                plant.traces[sensor].name.clone(),
                format!("{day}"),
                format!("{transitions}"),
                format!("{:.1}%", 100.0 * on as f64 / seg.len() as f64),
            ]);
        }
    }
    print_table(
        &[
            "sensor kind",
            "sensor",
            "day",
            "state transitions",
            "% non-OFF",
        ],
        &rows,
    );

    // Raw series for external plotting.
    let mut csv_rows = Vec::new();
    for minute in 0..plant.config.minutes_per_day {
        let row = |sensor: usize, day: usize| {
            plant.traces[sensor].events[plant.day_range(day)][minute].clone()
        };
        csv_rows.push(vec![
            minute.to_string(),
            row(periodic, normal_day),
            row(periodic, anomalous_day),
            row(rare, normal_day),
            row(rare, anomalous_day),
        ]);
    }
    let path = write_csv(
        "fig2_sensor_traces.csv",
        &[
            "minute",
            "periodic_normal",
            "periodic_anomalous",
            "rare_normal",
            "rare_anomalous",
        ],
        &csv_rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "\nTakeaway (paper): both days look similar per sensor — the anomaly is only\n\
         visible in the *pairwise* relationships, not in any single sequence."
    );
}
