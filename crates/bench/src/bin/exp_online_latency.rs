//! Experiment — online serving latency of the streaming monitor.
//!
//! The monitor's per-push cost is the paper's serving-path metric: every
//! completed sentence window runs Algorithm 2 across all valid pair models.
//! This experiment fits an NMT plant, then measures
//!
//! 1. single-window [`OnlineMonitor::push`] latency, split into window-
//!    completing pushes (which run detection) and buffering pushes;
//! 2. whole-segment decode throughput via `detect_range`;
//! 3. detection thread scaling at 1/2/4 worker threads.
//!
//! Run before and after an inference-path change to produce the
//! EXPERIMENTS.md "Online inference" table.
//!
//! Set `MDES_TRACE=1` to install the observability recorder for the run:
//! spans and events stream to `results/online_latency_trace.jsonl` and the
//! aggregate `Recorder::report()` is printed after the tables. The default
//! (no recorder) path is what the latency tables measure — identical to
//! the pre-observability numbers (see EXPERIMENTS.md "Observability
//! overhead").

use mdes_bench::report::{print_table, results_dir, write_csv};
use mdes_core::{DetectionConfig, Mdes, MdesConfig, OnlineMonitor, TranslatorConfig};
use mdes_graph::ScoreRange;
use mdes_lang::WindowConfig;
use mdes_nn::Seq2SeqConfig;
use mdes_synth::plant::{generate, PlantConfig};
use std::time::Instant;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn stats(mut us: Vec<f64>) -> (f64, f64, f64) {
    us.sort_by(f64::total_cmp);
    let mean = us.iter().sum::<f64>() / us.len().max(1) as f64;
    (mean, percentile(&us, 0.5), percentile(&us, 0.95))
}

fn main() {
    let traced = std::env::var("MDES_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    let recorder = traced.then(|| {
        let path = results_dir().join("online_latency_trace.jsonl");
        let r = std::sync::Arc::new(
            mdes_obs::Recorder::with_jsonl_path(&path).expect("create trace sink"),
        );
        mdes_obs::install(r.clone());
        eprintln!("tracing to {}", path.display());
        r
    });
    let plant = generate(&PlantConfig {
        n_sensors: 8,
        days: 10,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![9],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.build.translator = TranslatorConfig::Nmt(Seq2SeqConfig {
        embed_dim: 16,
        hidden: 16,
        train_steps: 30,
        ..Seq2SeqConfig::default()
    });
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);
    let fit_started = Instant::now();
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 5),
        plant.days_range(6, 7),
        cfg.clone(),
    )
    .expect("fit NMT plant");
    eprintln!(
        "fitted {} pair models in {:.1}s",
        m.trained().models().len(),
        fit_started.elapsed().as_secs_f64()
    );

    // 1. Streaming push latency over the test days.
    let test = plant.days_range(8, 10);
    let mut monitor: OnlineMonitor = m
        .clone()
        .try_into_online_monitor(plant.traces.len())
        .expect("monitor width");
    let mut detect_us: Vec<f64> = Vec::new();
    let mut buffer_us: Vec<f64> = Vec::new();
    for t in test.clone() {
        let sample: Vec<String> = plant.traces.iter().map(|tr| tr.events[t].clone()).collect();
        let started = Instant::now();
        let out = monitor.push(&sample).expect("push");
        let us = started.elapsed().as_secs_f64() * 1e6;
        if out.is_some() {
            detect_us.push(us);
        } else {
            buffer_us.push(us);
        }
    }
    let windows = detect_us.len();
    let (det_mean, det_p50, det_p95) = stats(detect_us);
    let (buf_mean, _, _) = stats(buffer_us);

    // 2. Segment decode throughput (the batch path).
    let seg_started = Instant::now();
    let result = m.detect_range(&plant.traces, test.clone()).expect("detect");
    let seg_secs = seg_started.elapsed().as_secs_f64();
    let sent_per_sec = result.scores.len() as f64 / seg_secs;

    // 3. Detection thread scaling.
    let lang = m.language();
    let sets = lang
        .encode_segment(&plant.traces, test.clone())
        .expect("encode test segment");
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for threads in [1usize, 2, 4] {
        let dcfg = DetectionConfig {
            threads,
            ..cfg.detection.clone()
        };
        // Warm once, then time the median of 3 runs.
        let _ = mdes_core::detect(m.trained(), &sets, &dcfg).expect("warm");
        let mut runs: Vec<f64> = (0..3)
            .map(|_| {
                let s = Instant::now();
                let r = mdes_core::detect(m.trained(), &sets, &dcfg).expect("detect");
                assert_eq!(r.scores.len(), result.scores.len());
                s.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        runs.sort_by(f64::total_cmp);
        scaling.push((threads, runs[1]));
    }

    let mut rows = vec![
        vec![
            "push (window)".to_owned(),
            format!("{windows} windows"),
            format!("{det_mean:.0}"),
            format!("{det_p50:.0}"),
            format!("{det_p95:.0}"),
        ],
        vec![
            "push (buffering)".to_owned(),
            format!("{} samples", test.len() - windows),
            format!("{buf_mean:.1}"),
            String::new(),
            String::new(),
        ],
        vec![
            "segment decode".to_owned(),
            format!("{} sentences", result.scores.len()),
            format!("{:.0} ms total", seg_secs * 1e3),
            format!("{sent_per_sec:.0}/s"),
            String::new(),
        ],
    ];
    for (threads, ms) in &scaling {
        rows.push(vec![
            format!("detect x{threads} threads"),
            format!("{} sentences", result.scores.len()),
            format!("{ms:.0} ms"),
            String::new(),
            String::new(),
        ]);
    }
    print_table(&["path", "volume", "mean us", "p50 us", "p95 us"], &rows);
    write_csv(
        "online_latency.csv",
        &["path", "volume", "mean_us", "p50_us", "p95_us"],
        &rows,
    );
    if let Some(r) = recorder {
        mdes_obs::uninstall();
        r.flush().expect("flush trace sink");
        println!("\n{}", r.report());
    }
}
