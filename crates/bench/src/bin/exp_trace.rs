//! Experiment — end-to-end observability trace of a synthetic plant run.
//!
//! Installs an [`mdes_obs::Recorder`] with a JSONL sink, fits a small NMT
//! plant, runs batch detection and a streaming monitor with an injected
//! sensor dropout, then *asserts* that the recorded telemetry reconciles
//! exactly with the values the pipeline returned:
//!
//! - one `algo1.pair` span per trained/quarantined pair;
//! - `algo2.broken` counter == total broken edges across all detections;
//! - `online.push` span count == emitted windows, with one dropout and one
//!   readmission event for the injected outage;
//! - every JSONL line parses as a JSON object with `kind`/`name` fields.
//!
//! The asserts make this binary the CI smoke test for the observability
//! layer (see DESIGN.md §10 for the schema); it finishes by printing
//! `Recorder::report()` — the run's counters and latency histograms.

use mdes_bench::report::results_dir;
use mdes_core::{Mdes, MdesConfig, OnlineMonitor, TranslatorConfig};
use mdes_graph::ScoreRange;
use mdes_lang::WindowConfig;
use mdes_nn::Seq2SeqConfig;
use mdes_synth::plant::{generate, PlantConfig};
use std::sync::Arc;

fn main() {
    let trace_path = results_dir().join("trace.jsonl");
    let recorder = Arc::new(
        mdes_obs::Recorder::with_jsonl_path(&trace_path).expect("create JSONL trace sink"),
    );
    mdes_obs::install(recorder.clone());

    let plant = generate(&PlantConfig {
        n_sensors: 5,
        days: 8,
        minutes_per_day: 288,
        n_components: 2,
        anomaly_days: vec![7],
        precursor_days: vec![],
        ..PlantConfig::default()
    });
    let mut cfg = MdesConfig {
        window: WindowConfig {
            word_len: 5,
            word_stride: 1,
            sent_len: 6,
            sent_stride: 6,
        },
        ..MdesConfig::default()
    };
    cfg.build.translator = TranslatorConfig::Nmt(Seq2SeqConfig {
        embed_dim: 12,
        hidden: 12,
        train_steps: 20,
        ..Seq2SeqConfig::default()
    });
    cfg.detection.valid_range = ScoreRange::closed(0.0, 100.0);

    // Offline phase: every pair trained under the recorder.
    let m = Mdes::fit(
        &plant.traces,
        plant.days_range(1, 4),
        plant.days_range(5, 6),
        cfg,
    )
    .expect("fit NMT plant");
    let trained = m.trained().models().len();
    let quarantined = m.trained().quarantined().len();
    assert_eq!(
        recorder.counter_value("algo1.pairs_trained"),
        trained as u64,
        "algo1.pairs_trained must match the trained model count"
    );
    assert_eq!(
        recorder.counter_value("algo1.pairs_quarantined"),
        quarantined as u64,
        "algo1.pairs_quarantined must match the quarantine list"
    );
    let pair_spans = recorder
        .histogram("algo1.pair")
        .expect("per-pair training spans recorded");
    assert_eq!(pair_spans.count, (trained + quarantined) as u64);
    assert!(
        recorder.histogram("nn.fit").is_some(),
        "NMT training must emit nn.fit spans"
    );

    // Batch detection: the broken counter must reconcile with the result.
    let broken_before = recorder.counter_value("algo2.broken");
    let windows_before = recorder.counter_value("algo2.windows");
    let result = m
        .detect_range(&plant.traces, plant.days_range(6, 8))
        .expect("detect");
    let broken_edges: usize = result.alerts.iter().map(Vec::len).sum();
    assert_eq!(
        recorder.counter_value("algo2.broken") - broken_before,
        broken_edges as u64,
        "algo2.broken must equal the sum of returned alert lists"
    );
    assert_eq!(
        recorder.counter_value("algo2.windows") - windows_before,
        result.scores.len() as u64,
        "algo2.windows must equal the number of scored windows"
    );
    assert!(
        recorder
            .histogram("algo2.model_decode_us")
            .is_some_and(|h| h.count > 0),
        "per-model decode latency must be recorded"
    );

    // Streaming phase with an injected outage on sensor 1.
    let width = plant.traces.len();
    let mut monitor: OnlineMonitor = m.try_into_online_monitor(width).expect("monitor width");
    let test = plant.days_range(6, 8);
    let outage = test.start + 40..test.start + 80;
    let mut emitted = 0u64;
    for t in test.clone() {
        let sample: Vec<Option<String>> = plant
            .traces
            .iter()
            .enumerate()
            .map(|(i, tr)| {
                if i == 1 && outage.contains(&t) {
                    None
                } else {
                    Some(tr.events[t].clone())
                }
            })
            .collect();
        if monitor.push_opt(&sample).expect("push").is_some() {
            emitted += 1;
        }
    }
    assert_eq!(
        recorder.counter_value("online.windows"),
        emitted,
        "online.windows must equal the number of emitted detections"
    );
    assert_eq!(
        recorder
            .histogram("online.push")
            .expect("push spans recorded")
            .count,
        emitted
    );
    assert_eq!(
        recorder.counter_value("online.sensor_dropped"),
        1,
        "the injected outage must emit exactly one dropout event"
    );
    assert_eq!(
        recorder.counter_value("online.sensor_readmitted"),
        1,
        "recovery must emit exactly one readmission event"
    );

    // The JSONL stream must be valid, one object per line.
    mdes_obs::uninstall();
    recorder.flush().expect("flush trace sink");
    let text = std::fs::read_to_string(&trace_path).expect("read trace.jsonl");
    let mut lines = 0usize;
    for line in text.lines() {
        let value: serde::Content =
            serde_json::from_str(line).expect("every trace line parses as JSON");
        let serde::Content::Map(entries) = value else {
            panic!("trace line is not a JSON object: {line}");
        };
        for key in ["kind", "name"] {
            assert!(
                entries.iter().any(|(k, _)| k == key),
                "trace line missing `{key}`: {line}"
            );
        }
        lines += 1;
    }
    assert!(lines > 0, "trace must not be empty");

    println!("trace: {} JSONL lines -> {}", lines, trace_path.display());
    println!("{}", recorder.report());
    println!("observability reconciliation OK");
}
