//! Experiment E2 — Fig. 3: CDFs of (a) sensor event cardinality and (b)
//! sensor vocabulary size.
//!
//! Paper reference points: mean cardinality 2.07, 97.6 % binary, max 7;
//! ~40 % of vocabularies below 13 words, <20 % above 100, average 707
//! (the average depends on sequence length — the reduced default scale
//! produces proportionally smaller vocabularies; run with `--full` for the
//! paper's 1440-minute days).

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::{ecdf_f64, print_cdf, write_csv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));

    let cards = study.cardinalities();
    let vocabs = study.vocabulary_sizes();

    println!("Fig. 3a — sensor event cardinality");
    let binary = cards.iter().filter(|&&c| c == 2.0).count() as f64 / cards.len() as f64;
    let mean = cards.iter().sum::<f64>() / cards.len() as f64;
    println!(
        "  mean {mean:.2} (paper: 2.07), binary {:.1}% (paper: 97.6%), max {:.0} (paper: 7)",
        100.0 * binary,
        cards.iter().cloned().fold(0.0, f64::max),
    );
    print_cdf("  cardinality CDF", &cards);

    println!(
        "\nFig. 3b — sensor vocabulary size (word length {})",
        study.window.word_len
    );
    let small = vocabs.iter().filter(|&&v| v < 13.0).count() as f64 / vocabs.len() as f64;
    let large = vocabs.iter().filter(|&&v| v > 100.0).count() as f64 / vocabs.len() as f64;
    let vmean = vocabs.iter().sum::<f64>() / vocabs.len() as f64;
    println!(
        "  mean {vmean:.0} (paper: 707), <13 words: {:.0}% (paper: ~40%), >100 words: {:.0}% (paper: <20%)",
        100.0 * small,
        100.0 * large
    );
    print_cdf("  vocabulary CDF", &vocabs);

    let card_rows: Vec<Vec<String>> = ecdf_f64(&cards)
        .iter()
        .map(|(v, f)| vec![v.to_string(), f.to_string()])
        .collect();
    let vocab_rows: Vec<Vec<String>> = ecdf_f64(&vocabs)
        .iter()
        .map(|(v, f)| vec![v.to_string(), f.to_string()])
        .collect();
    let p1 = write_csv(
        "fig3a_cardinality_cdf.csv",
        &["cardinality", "cdf"],
        &card_rows,
    );
    let p2 = write_csv(
        "fig3b_vocabulary_cdf.csv",
        &["vocab_size", "cdf"],
        &vocab_rows,
    );
    println!("\nwrote {}\nwrote {}", p1.display(), p2.display());
}
