//! Ablation A5 — NMT architecture variants: LSTM vs GRU cells and dot vs
//! general (bilinear) attention (the axes of Luong et al., 2015).
//!
//! All four combinations run the same small-plant pairwise sweep; reported
//! are mean dev BLEU, total sweep time and the Spearman correlation of each
//! variant's pair scores against the paper's configuration (LSTM + dot).
//! Because the relationship graph only consumes score structure, high
//! correlations mean the architecture choice does not change the graph.

use mdes_bench::plant_study::{PlantScale, PlantStudy};
use mdes_bench::report::{print_table, write_csv};
use mdes_core::TranslatorConfig;
use mdes_nn::{AttentionKind, CellKind, Seq2SeqConfig};

fn main() {
    let scale = PlantScale {
        n_sensors: 6,
        minutes_per_day: 240,
        word_len: 6,
        sent_len: 8,
    };
    let variants = [
        ("LSTM + dot (paper)", CellKind::Lstm, AttentionKind::Dot),
        ("LSTM + general", CellKind::Lstm, AttentionKind::General),
        ("GRU + dot", CellKind::Gru, AttentionKind::Dot),
        ("GRU + general", CellKind::Gru, AttentionKind::General),
    ];
    println!("Ablation A5 — NMT architecture variants (6-sensor plant)\n");
    let mut results: Vec<(String, Vec<f64>, f64)> = Vec::new();
    for (label, cell, attention) in variants {
        let cfg = Seq2SeqConfig {
            cell,
            attention,
            train_steps: 60,
            ..Seq2SeqConfig::default()
        };
        let study = PlantStudy::run(&scale, TranslatorConfig::Nmt(cfg));
        let time: f64 = study.trained.runtimes().iter().sum();
        results.push((label.to_owned(), study.trained.scores(), time));
    }

    let baseline = results[0].1.clone();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, scores, time)| {
            let mean = scores.iter().sum::<f64>() / scores.len() as f64;
            vec![
                label.clone(),
                format!("{mean:.1}"),
                format!("{time:.1}s"),
                format!("{:.3}", spearman(&baseline, scores)),
            ]
        })
        .collect();
    print_table(
        &[
            "variant",
            "mean dev BLEU",
            "sweep time",
            "rank corr vs paper",
        ],
        &rows,
    );
    println!(
        "\nTakeaway: the graph structure is robust to the architecture choice — any\n\
         variant with high rank correlation yields the same subgraphs."
    );
    let path = write_csv(
        "ablation_nmt_arch.csv",
        &["variant", "mean_bleu", "sweep_time", "rank_corr"],
        &rows,
    );
    println!("wrote {}", path.display());
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&x, &y| v[x].total_cmp(&v[y]));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let m = (a.len() as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        num += (x - m) * (y - m);
        da += (x - m).powi(2);
        db += (y - m).powi(2);
    }
    num / (da.sqrt() * db.sqrt()).max(1e-12)
}
