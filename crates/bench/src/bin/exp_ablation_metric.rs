//! Ablation A6 — relationship metric: BLEU (the paper's choice) vs a
//! channel-likelihood score.
//!
//! BLEU judges the single decoded sentence; the likelihood score integrates
//! the model's full predictive distribution (100 x geometric-mean per-word
//! probability). If both metrics induce the same score *structure*, the
//! framework's downstream machinery (subgraphs, validity ranges, broken
//! relationships) is insensitive to the specific translation-quality metric.

use mdes_bench::plant_study::{PlantScale, PlantStudy};
use mdes_bench::report::{print_table, write_csv};
use mdes_core::{NgramConfig, NgramTranslator, TranslatorConfig};

fn main() {
    let scale = PlantScale {
        n_sensors: 12,
        minutes_per_day: 240,
        word_len: 6,
        sent_len: 8,
    };
    let study = PlantStudy::run(&scale, TranslatorConfig::fast());
    let bleu_scores = study.trained.scores();

    // Recompute the pairwise sweep with the likelihood metric on the same
    // sentence corpora.
    let train_sets = study
        .pipeline
        .encode_segment(&study.plant.traces, study.plant.days_range(1, 10))
        .expect("train");
    let dev_sets = study
        .pipeline
        .encode_segment(&study.plant.traces, study.plant.days_range(11, 13))
        .expect("dev");
    let n = study.pipeline.sensor_count();
    let mut like_scores = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let pairs: Vec<(Vec<u32>, Vec<u32>)> = train_sets[i]
                .sentences
                .iter()
                .zip(&train_sets[j].sentences)
                .map(|(s, t)| (s.clone(), t.clone()))
                .collect();
            let model = NgramTranslator::fit(&pairs, &NgramConfig::default());
            let dev_pairs: Vec<(&[u32], &[u32])> = dev_sets[i]
                .sentences
                .iter()
                .zip(&dev_sets[j].sentences)
                .map(|(s, t)| (s.as_slice(), t.as_slice()))
                .collect();
            like_scores.push(
                model.likelihood_score(&dev_pairs, study.pipeline.languages()[j].vocab.size()),
            );
        }
    }

    let rho = spearman(&bleu_scores, &like_scores);
    let top = |v: &[f64]| -> std::collections::HashSet<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[b].total_cmp(&v[a]));
        idx[..v.len() / 4].iter().copied().collect()
    };
    let (ta, tb) = (top(&bleu_scores), top(&like_scores));
    let jaccard = ta.intersection(&tb).count() as f64 / ta.union(&tb).count() as f64;

    println!("Ablation A6 — relationship metric: BLEU vs channel likelihood\n");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    print_table(
        &["metric", "mean score", "min", "max"],
        &[
            vec![
                "BLEU (paper)".into(),
                format!("{:.1}", mean(&bleu_scores)),
                format!(
                    "{:.1}",
                    bleu_scores.iter().cloned().fold(f64::INFINITY, f64::min)
                ),
                format!("{:.1}", bleu_scores.iter().cloned().fold(0.0f64, f64::max)),
            ],
            vec![
                "likelihood".into(),
                format!("{:.1}", mean(&like_scores)),
                format!(
                    "{:.1}",
                    like_scores.iter().cloned().fold(f64::INFINITY, f64::min)
                ),
                format!("{:.1}", like_scores.iter().cloned().fold(0.0f64, f64::max)),
            ],
        ],
    );
    println!("\nSpearman rank correlation: {rho:.3}");
    println!("top-quartile edge-set Jaccard overlap: {jaccard:.3}");

    let csv: Vec<Vec<String>> = bleu_scores
        .iter()
        .zip(&like_scores)
        .map(|(b, l)| vec![b.to_string(), l.to_string()])
        .collect();
    let path = write_csv("ablation_metric.csv", &["bleu", "likelihood"], &csv);
    println!("wrote {}", path.display());
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&x, &y| v[x].total_cmp(&v[y]));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let m = (a.len() as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        num += (x - m) * (y - m);
        da += (x - m).powi(2);
        db += (y - m).powi(2);
    }
    num / (da.sqrt() * db.sqrt()).max(1e-12)
}
