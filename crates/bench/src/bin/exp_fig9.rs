//! Experiment E9 — Fig. 9: fault diagnosis on the two anomalous days using
//! the local subgraph at BLEU [80, 90).
//!
//! For each anomalous day the worst detection window's broken relationships
//! are projected onto the local subgraph; the resulting clusters of red
//! edges are the paper's "green circles" locating faulty sensors. Day 28 in
//! the paper is the severe anomaly where almost all relationships break.

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::results_dir;
use mdes_core::diagnose;
use mdes_graph::{to_dot, DotOptions, ScoreRange};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));
    let range = ScoreRange::best_detection();
    let (result, days) = study.detect_test_period(range).expect("detect");

    let thr = study.popular_threshold();
    let global = study.trained.graph.subgraph(&range);
    let local = global.without_nodes(&global.popular(thr));

    for &day in &study.plant.config.anomaly_days.clone() {
        // Worst window of the day.
        let worst = (0..result.scores.len())
            .filter(|&t| days[t] == day)
            .max_by(|&a, &b| result.scores[a].total_cmp(&result.scores[b]));
        let Some(worst) = worst else {
            println!("day {day}: no test windows");
            continue;
        };
        let alerts = &result.alerts[worst];
        let diag = diagnose(&local, alerts);
        println!(
            "=== Fig. 9 — day {day} (worst window a_t = {:.2}) ===",
            result.scores[worst]
        );
        println!(
            "  {} broken relationships, {:.0}% of the local subgraph broken{}",
            alerts.len(),
            100.0 * diag.broken_fraction,
            if diag.is_severe(0.8) {
                " — SEVERE (paper: day 28 pattern)"
            } else {
                ""
            }
        );
        for (i, cluster) in diag.faulty_clusters.iter().enumerate() {
            let names: Vec<&str> = cluster.iter().map(|&s| local.name(s)).collect();
            let comps: Vec<usize> = cluster
                .iter()
                .map(|&s| study.plant.sensors[study.pipeline.languages()[s].source_index].component)
                .collect();
            println!("  faulty cluster {i}: {names:?} (ground-truth components {comps:?})");
        }
        println!(
            "  top suspect sensors: {:?}",
            diag.sensor_ranking
                .iter()
                .take(5)
                .map(|&(s, c)| format!("{}x{}", local.name(s), c))
                .collect::<Vec<_>>()
        );
        let dot = to_dot(
            &local,
            &DotOptions {
                title: format!("fault diagnosis day {day}"),
                broken_edges: alerts.iter().copied().collect(),
                ..DotOptions::default()
            },
        );
        let path = results_dir().join(format!("fig9_diagnosis_day{day}.dot"));
        std::fs::write(&path, dot).expect("write dot");
        println!("  wrote {}\n", path.display());
    }
}
