//! Ablation A3 — validity-range sweep for anomaly detection.
//!
//! The paper finds models with dev BLEU in [80, 90) detect best: [90, 100]
//! edges are trivially-translatable simple languages that never break, and
//! low-score edges are so weakly related that they break constantly (false
//! positives). This sweep measures, per candidate range, the separation
//! between anomalous-day and normal-day anomaly scores.

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::{print_table, write_csv};
use mdes_graph::ScoreRange;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));

    println!("Ablation A3 — detection quality per validity range\n");
    let candidates = [
        ScoreRange::half_open(0.0, 60.0),
        ScoreRange::half_open(60.0, 70.0),
        ScoreRange::half_open(70.0, 80.0),
        ScoreRange::half_open(80.0, 90.0),
        ScoreRange::closed(90.0, 100.0),
        ScoreRange::half_open(60.0, 90.0),
    ];
    let mut rows = Vec::new();
    for range in candidates {
        let Ok((result, days)) = study.detect_test_period(range) else {
            rows.push(vec![
                range.to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let collect = |kind: &str| -> Vec<f64> {
            result
                .scores
                .iter()
                .zip(&days)
                .filter(|(_, &d)| {
                    let cfg = &study.plant.config;
                    match kind {
                        "anomaly" => cfg.is_anomalous_day(d),
                        "precursor" => cfg.is_precursor_day(d),
                        _ => !cfg.is_anomalous_day(d) && !cfg.is_precursor_day(d),
                    }
                })
                .map(|(&s, _)| s)
                .collect()
        };
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let (anom, prec, norm) = (
            mean(&collect("anomaly")),
            mean(&collect("precursor")),
            mean(&collect("normal")),
        );
        rows.push(vec![
            range.to_string(),
            result.valid_models.to_string(),
            format!("{norm:.3}"),
            format!("{prec:.3}"),
            format!("{anom:.3}"),
        ]);
    }
    print_table(
        &[
            "validity range",
            "valid models",
            "normal mean",
            "precursor mean",
            "anomaly mean",
        ],
        &rows,
    );
    println!(
        "\nPaper takeaway: [80, 90) separates best; [90, 100] is not useful; ranges\n\
         below 80 work but with more false positives."
    );
    let path = write_csv(
        "ablation_range.csv",
        &["range", "valid_models", "normal", "precursor", "anomaly"],
        &rows,
    );
    println!("wrote {}", path.display());
}
