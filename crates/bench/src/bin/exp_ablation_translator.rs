//! Ablation A1 — NMT vs n-gram translator: score agreement and runtime.
//!
//! The repository defaults to the statistical `NgramTranslator` for
//! full-scale sweeps (single-core host); this experiment justifies that
//! substitution by measuring, on a small plant, how well the two translator
//! families agree on the *ordering* of pairwise scores — which is all the
//! relationship graph consumes — and how far apart their training costs are.

use mdes_bench::plant_study::{PlantScale, PlantStudy};
use mdes_bench::report::{arg_value, print_table, write_csv};
use mdes_core::TranslatorConfig;
use mdes_nn::Seq2SeqConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sensors: usize = arg_value(&args, "sensors")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let scale = PlantScale {
        n_sensors: sensors,
        minutes_per_day: 240,
        word_len: 6,
        sent_len: 8,
    };

    println!("Ablation A1 — translator families on a {sensors}-sensor plant\n");
    let ngram = PlantStudy::run(&scale, TranslatorConfig::fast());
    let nmt_cfg = Seq2SeqConfig {
        train_steps: 60,
        ..Seq2SeqConfig::default()
    };
    let nmt = PlantStudy::run(&scale, TranslatorConfig::Nmt(nmt_cfg));

    let s_ngram = ngram.trained.scores();
    let s_nmt = nmt.trained.scores();
    assert_eq!(s_ngram.len(), s_nmt.len());

    // Spearman rank correlation between the two score vectors.
    let rho = spearman(&s_ngram, &s_nmt);
    // Agreement of the top-quartile edge sets (what subgraphs consume).
    let top = |v: &[f64]| -> std::collections::HashSet<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[b].total_cmp(&v[a]));
        idx[..v.len() / 4].iter().copied().collect()
    };
    let (ta, tb) = (top(&s_ngram), top(&s_nmt));
    let jaccard = ta.intersection(&tb).count() as f64 / ta.union(&tb).count() as f64;

    let time = |s: &PlantStudy| s.trained.runtimes().iter().sum::<f64>();
    let rows = vec![
        vec![
            "n-gram".into(),
            format!("{:.2}s", time(&ngram)),
            format!("{:.1}", mean(&s_ngram)),
        ],
        vec![
            "NMT (seq2seq)".into(),
            format!("{:.2}s", time(&nmt)),
            format!("{:.1}", mean(&s_nmt)),
        ],
    ];
    print_table(&["translator", "total sweep time", "mean dev BLEU"], &rows);
    println!("\nSpearman rank correlation of pair scores: {rho:.3}");
    println!("top-quartile edge-set Jaccard overlap:    {jaccard:.3}");
    println!("speedup: {:.0}x", time(&nmt) / time(&ngram).max(1e-9));

    let csv: Vec<Vec<String>> = s_ngram
        .iter()
        .zip(&s_nmt)
        .map(|(a, b)| vec![a.to_string(), b.to_string()])
        .collect();
    let path = write_csv("ablation_translator_scores.csv", &["ngram", "nmt"], &csv);
    println!("wrote {}", path.display());
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&x, &y| v[x].total_cmp(&v[y]));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = a.len() as f64;
    let ma = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        num += (x - ma) * (y - ma);
        da += (x - ma).powi(2);
        db += (y - ma).powi(2);
    }
    num / (da.sqrt() * db.sqrt()).max(1e-12)
}
