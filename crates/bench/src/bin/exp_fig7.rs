//! Experiment E7 — Fig. 7: local subgraphs (popular sensors removed) at
//! BLEU ranges [80, 90) and [90, 100], showing isolated sensor clusters that
//! map onto physical components.
//!
//! We additionally validate the clusters against the simulator's ground
//! truth (which component each sensor belongs to) — information the paper
//! could only confirm with domain experts.

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::results_dir;
use mdes_graph::{to_dot, walktrap, DotOptions, ScoreRange, WalktrapConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));
    let thr = study.popular_threshold();

    for (tag, range) in [
        ("80_90", ScoreRange::half_open(80.0, 90.0)),
        ("90_100", ScoreRange::closed(90.0, 100.0)),
    ] {
        let sub = study.trained.graph.subgraph(&range);
        let popular = sub.popular(thr);
        let local = sub.without_nodes(&popular);
        let comps = local.weakly_connected_components();
        println!("=== local subgraph at {range} ===");
        println!(
            "  {} sensors, {} relationships, {} connected clusters",
            local.active_nodes().len(),
            local.edge_count(),
            comps.len()
        );
        for (i, comp) in comps.iter().enumerate() {
            // Ground-truth components of the cluster members.
            let truth: Vec<usize> = comp
                .iter()
                .map(|&s| {
                    let src = study.pipeline.languages()[s].source_index;
                    study.plant.sensors[src].component
                })
                .collect();
            let pure = truth.iter().all(|&c| c == truth[0]);
            let names: Vec<&str> = comp.iter().map(|&s| local.name(s)).collect();
            println!(
                "  cluster {i}: {names:?} -> ground-truth components {truth:?}{}",
                if pure { " [pure]" } else { "" }
            );
        }
        let comms = walktrap(&local, &WalktrapConfig::default());
        println!(
            "  walktrap: {} communities, modularity {:.2}",
            comms.groups.len(),
            comms.modularity
        );
        let dot = to_dot(
            &local,
            &DotOptions {
                title: format!("local subgraph {range}"),
                ..DotOptions::default()
            },
        );
        let path = results_dir().join(format!("fig7_local_subgraph_{tag}.dot"));
        std::fs::write(&path, dot).expect("write dot");
        println!("  wrote {}\n", path.display());
    }
    println!(
        "Paper shape: clusters are mostly isolated; sensors in one cluster come from\n\
         the same system component (confirmed here against simulator ground truth)."
    );
}
