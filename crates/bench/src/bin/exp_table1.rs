//! Experiment E4 — Table I: statistics of the global subgraphs at each BLEU
//! score range.
//!
//! Columns match the paper: % of relationships in the bucket, number of
//! sensors with at least one edge, number of popular sensors (in-degree at
//! or above the scaled threshold), and relationships remaining after the
//! popular sensors are removed.

use mdes_bench::plant_study::{scale_from_args, translator_from_args, PlantStudy};
use mdes_bench::report::{print_table, write_csv};
use mdes_graph::{table_stats, ScoreRange};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let study = PlantStudy::run(&scale_from_args(&args), translator_from_args(&args));
    let thr = study.popular_threshold();

    let rows_stats = table_stats(&study.trained.graph, &ScoreRange::paper_buckets(), thr);
    println!(
        "Table I — global subgraph statistics ({} sensors, popular threshold in-degree >= {thr})\n",
        study.trained.graph.len()
    );
    let rows: Vec<Vec<String>> = rows_stats
        .iter()
        .map(|s| {
            vec![
                s.range.clone(),
                format!("{:.1}%", s.pct_relationships),
                s.sensors.to_string(),
                s.popular_sensors.to_string(),
                s.relationships_without_popular.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "BLEU range",
            "% relationships",
            "# sensors",
            "# popular",
            "# rel w/o popular",
        ],
        &rows,
    );
    println!(
        "\nPaper (128 sensors): [0,60) 10.6% | [60,70) 12.8% | [70,80) 28.8% | \
         [80,90) 17.8% | [90,100] 29.9%"
    );
    let path = write_csv(
        "table1_global_subgraphs.csv",
        &[
            "range",
            "pct_relationships",
            "sensors",
            "popular",
            "rel_wo_popular",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
}
