//! The multivariate relationship graph (MVRG).
//!
//! Nodes are sensors; a directed edge `i -> j` carries the BLEU score of
//! translating sensor `i`'s language into sensor `j`'s (§II-A3). The full
//! graph produced by Algorithm 1 is dense (every ordered pair has an edge);
//! analysis works on *subgraphs* filtered by score range
//! ([`RelGraph::subgraph`]), optionally with *popular* high-in-degree nodes
//! removed ([`RelGraph::without_nodes`]) to expose local cluster structure.

use crate::range::ScoreRange;
use serde::{Deserialize, Serialize};

/// A directed, weighted relationship graph over named sensors.
///
/// Node indices are stable across [`RelGraph::subgraph`] and
/// [`RelGraph::without_nodes`], so a node keeps its identity (and name) in
/// every derived view.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RelGraph {
    names: Vec<String>,
    /// Row-major `n x n`; entry `(i, j)` is the score of edge `i -> j`.
    scores: Vec<Option<f64>>,
}

impl RelGraph {
    /// Creates an edgeless graph over the given sensor names.
    pub fn new(names: Vec<String>) -> Self {
        let n = names.len();
        Self {
            names,
            scores: vec![None; n * n],
        }
    }

    /// Number of nodes (including isolated ones).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// All node names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of the node with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Sets the score of edge `src -> dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, an index is out of bounds, or the score is
    /// outside `[0, 100]`.
    pub fn set_score(&mut self, src: usize, dst: usize, score: f64) {
        assert_ne!(src, dst, "self-edges are not allowed");
        assert!(
            src < self.len() && dst < self.len(),
            "edge ({src}, {dst}) out of bounds"
        );
        assert!(
            (0.0..=100.0).contains(&score),
            "score {score} outside [0, 100]"
        );
        let n = self.len();
        self.scores[src * n + dst] = Some(score);
    }

    /// Removes the edge `src -> dst`, returning its previous score.
    pub fn remove_edge(&mut self, src: usize, dst: usize) -> Option<f64> {
        let n = self.len();
        self.scores[src * n + dst].take()
    }

    /// Score of edge `src -> dst`, if present.
    pub fn score(&self, src: usize, dst: usize) -> Option<f64> {
        let n = self.len();
        self.scores[src * n + dst]
    }

    /// Iterates over `(src, dst, score)` for every edge.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.len();
        self.scores
            .iter()
            .enumerate()
            .filter_map(move |(k, s)| s.map(|score| (k / n, k % n, score)))
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.scores.iter().filter(|s| s.is_some()).count()
    }

    /// In-degree of node `i` (edges arriving at `i`).
    pub fn in_degree(&self, i: usize) -> usize {
        (0..self.len())
            .filter(|&src| self.score(src, i).is_some())
            .count()
    }

    /// Out-degree of node `i` (edges leaving `i`).
    pub fn out_degree(&self, i: usize) -> usize {
        (0..self.len())
            .filter(|&dst| self.score(i, dst).is_some())
            .count()
    }

    /// Nodes that participate in at least one edge.
    pub fn active_nodes(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.in_degree(i) > 0 || self.out_degree(i) > 0)
            .collect()
    }

    /// The *global subgraph* for a score range: keeps exactly the edges whose
    /// score falls in `range` (§III-B1).
    pub fn subgraph(&self, range: &ScoreRange) -> RelGraph {
        let mut g = RelGraph::new(self.names.clone());
        for (s, d, w) in self.edges() {
            if range.contains(w) {
                g.set_score(s, d, w);
            }
        }
        g
    }

    /// *Popular* sensors: nodes whose in-degree is at least `threshold`
    /// (§III-B1 uses 100 with N = 128). These are broadly-translatable
    /// sensors that act as system-health indicators.
    pub fn popular(&self, threshold: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.in_degree(i) >= threshold)
            .collect()
    }

    /// The threshold the paper's in-degree >= 100 criterion corresponds to,
    /// scaled to this graph's node count (`ceil(0.79 * n)`).
    pub fn scaled_popular_threshold(&self) -> usize {
        (0.79 * self.len() as f64).ceil() as usize
    }

    /// Returns a copy with every edge incident to `nodes` removed — the
    /// *local subgraph* construction (§III-B2).
    pub fn without_nodes(&self, nodes: &[usize]) -> RelGraph {
        let mut g = self.clone();
        let n = g.len();
        for &v in nodes {
            assert!(v < n, "node {v} out of bounds");
            for o in 0..n {
                g.scores[v * n + o] = None;
                g.scores[o * n + v] = None;
            }
        }
        g
    }

    /// Weakly-connected components among active nodes, each sorted by index;
    /// components are ordered by their smallest node.
    pub fn weakly_connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut components = Vec::new();
        for start in self.active_nodes() {
            if visited[start] {
                continue;
            }
            let mut stack = vec![start];
            visited[start] = true;
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(v);
                for (o, vis) in visited.iter_mut().enumerate() {
                    if !*vis && (self.score(v, o).is_some() || self.score(o, v).is_some()) {
                        *vis = true;
                        stack.push(o);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// Symmetrized weight matrix `w(i,j) = w(j,i) = s(i->j) + s(j->i)` used
    /// by community detection; rows/cols follow node indices.
    pub fn undirected_weights(&self) -> Vec<Vec<f64>> {
        let n = self.len();
        let mut w = vec![vec![0.0; n]; n];
        for (s, d, score) in self.edges() {
            w[s][d] += score;
            w[d][s] += score;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}")).collect()
    }

    #[test]
    fn set_and_get_scores() {
        let mut g = RelGraph::new(names(3));
        g.set_score(0, 1, 85.0);
        g.set_score(1, 0, 42.0);
        assert_eq!(g.score(0, 1), Some(85.0));
        assert_eq!(g.score(1, 0), Some(42.0));
        assert_eq!(g.score(0, 2), None);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "self-edges are not allowed")]
    fn self_edge_panics() {
        let mut g = RelGraph::new(names(2));
        g.set_score(1, 1, 50.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn out_of_range_score_panics() {
        let mut g = RelGraph::new(names(2));
        g.set_score(0, 1, 150.0);
    }

    #[test]
    fn degrees() {
        let mut g = RelGraph::new(names(4));
        g.set_score(0, 3, 80.0);
        g.set_score(1, 3, 81.0);
        g.set_score(2, 3, 82.0);
        g.set_score(3, 0, 83.0);
        assert_eq!(g.in_degree(3), 3);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.out_degree(2), 1);
    }

    #[test]
    fn subgraph_filters_by_range() {
        let mut g = RelGraph::new(names(3));
        g.set_score(0, 1, 85.0);
        g.set_score(1, 2, 95.0);
        g.set_score(2, 0, 55.0);
        let sub = g.subgraph(&ScoreRange::half_open(80.0, 90.0));
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.score(0, 1), Some(85.0));
        assert_eq!(sub.len(), 3, "node set unchanged");
    }

    #[test]
    fn popular_nodes_by_in_degree() {
        let mut g = RelGraph::new(names(5));
        for src in 0..4 {
            g.set_score(src, 4, 70.0 + src as f64);
        }
        g.set_score(0, 1, 75.0);
        assert_eq!(g.popular(4), vec![4]);
        assert_eq!(g.popular(1), vec![1, 4]);
        assert!(g.popular(5).is_empty());
    }

    #[test]
    fn without_nodes_removes_incident_edges() {
        let mut g = RelGraph::new(names(4));
        g.set_score(0, 1, 80.0);
        g.set_score(1, 2, 80.0);
        g.set_score(2, 3, 80.0);
        let local = g.without_nodes(&[1]);
        assert_eq!(local.edge_count(), 1);
        assert_eq!(local.score(2, 3), Some(80.0));
        assert_eq!(local.len(), 4);
    }

    #[test]
    fn components_split_correctly() {
        let mut g = RelGraph::new(names(6));
        g.set_score(0, 1, 80.0);
        g.set_score(2, 1, 80.0);
        g.set_score(3, 4, 80.0);
        // node 5 isolated.
        let comps = g.weakly_connected_components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn components_ignore_direction() {
        let mut g = RelGraph::new(names(3));
        g.set_score(0, 1, 80.0);
        g.set_score(2, 1, 80.0);
        assert_eq!(g.weakly_connected_components().len(), 1);
    }

    #[test]
    fn undirected_weights_symmetrize() {
        let mut g = RelGraph::new(names(2));
        g.set_score(0, 1, 80.0);
        g.set_score(1, 0, 60.0);
        let w = g.undirected_weights();
        assert_eq!(w[0][1], 140.0);
        assert_eq!(w[1][0], 140.0);
    }

    #[test]
    fn index_of_finds_names() {
        let g = RelGraph::new(names(3));
        assert_eq!(g.index_of("s2"), Some(2));
        assert_eq!(g.index_of("nope"), None);
    }

    #[test]
    fn scaled_popular_threshold_matches_paper() {
        // With 128 sensors the paper's threshold is in-degree >= 100; 0.79 *
        // 128 = 101.1 -> 102. Close to the paper's choice and scale-free.
        let g = RelGraph::new(names(128));
        let t = g.scaled_popular_threshold();
        assert!((100..=104).contains(&t), "threshold {t}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn buckets_partition_edges(edges in proptest::collection::vec(
                (0usize..8, 0usize..8, 0f64..=100.0), 0..40)) {
                let mut g = RelGraph::new(names(8));
                for (s, d, w) in edges {
                    if s != d {
                        g.set_score(s, d, w);
                    }
                }
                let total: usize = ScoreRange::paper_buckets()
                    .iter()
                    .map(|r| g.subgraph(r).edge_count())
                    .sum();
                prop_assert_eq!(total, g.edge_count());
            }

            #[test]
            fn degree_sums_equal_edge_count(edges in proptest::collection::vec(
                (0usize..6, 0usize..6, 0f64..=100.0), 0..30)) {
                let mut g = RelGraph::new(names(6));
                for (s, d, w) in edges {
                    if s != d {
                        g.set_score(s, d, w);
                    }
                }
                let in_sum: usize = (0..6).map(|i| g.in_degree(i)).sum();
                let out_sum: usize = (0..6).map(|i| g.out_degree(i)).sum();
                prop_assert_eq!(in_sum, g.edge_count());
                prop_assert_eq!(out_sum, g.edge_count());
            }

            #[test]
            fn components_partition_active_nodes(edges in proptest::collection::vec(
                (0usize..7, 0usize..7, 50f64..=100.0), 0..25)) {
                let mut g = RelGraph::new(names(7));
                for (s, d, w) in edges {
                    if s != d {
                        g.set_score(s, d, w);
                    }
                }
                let comps = g.weakly_connected_components();
                let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
                all.sort_unstable();
                prop_assert_eq!(all, g.active_nodes());
            }
        }
    }
}
