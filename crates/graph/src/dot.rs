//! Graphviz DOT export for relationship graphs (Figures 6, 7 and 9).

use crate::graph::RelGraph;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Rendering options for [`to_dot`].
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Graph title rendered as a label.
    pub title: String,
    /// Nodes drawn larger (the paper's popular sensors).
    pub highlight_nodes: HashSet<usize>,
    /// Edges drawn red (the paper's broken relationships, Fig. 9).
    pub broken_edges: HashSet<(usize, usize)>,
    /// Include isolated nodes (default: omit, as in the paper's figures).
    pub include_isolated: bool,
}

/// Renders the graph in Graphviz DOT format.
///
/// Edge weights become labels; highlighted nodes get a larger shape and
/// broken edges are colored red, matching the paper's figure conventions.
pub fn to_dot(g: &RelGraph, opts: &DotOptions) -> String {
    let mut out = String::new();
    out.push_str("digraph mvrg {\n");
    if !opts.title.is_empty() {
        let _ = writeln!(out, "  label=\"{}\";", escape(&opts.title));
    }
    out.push_str("  node [shape=circle, fontsize=10];\n");
    let nodes: Vec<usize> = if opts.include_isolated {
        (0..g.len()).collect()
    } else {
        g.active_nodes()
    };
    for i in nodes {
        let extra = if opts.highlight_nodes.contains(&i) {
            ", width=1.2, style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{i} [label=\"{}\"{extra}];", escape(g.name(i)));
    }
    for (s, d, w) in g.edges() {
        let color = if opts.broken_edges.contains(&(s, d)) {
            ", color=red"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{s} -> n{d} [label=\"{w:.1}\"{color}];");
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RelGraph {
        let mut g = RelGraph::new(vec!["a".into(), "b".into(), "c".into()]);
        g.set_score(0, 1, 85.5);
        g.set_score(1, 0, 60.0);
        g
    }

    #[test]
    fn renders_nodes_and_edges() {
        let dot = to_dot(&sample(), &DotOptions::default());
        assert!(dot.starts_with("digraph mvrg {"));
        assert!(dot.contains("n0 [label=\"a\"]"));
        assert!(dot.contains("n0 -> n1 [label=\"85.5\"]"));
        assert!(dot.contains("n1 -> n0 [label=\"60.0\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn isolated_nodes_omitted_by_default() {
        let dot = to_dot(&sample(), &DotOptions::default());
        assert!(!dot.contains("n2"));
        let all = to_dot(
            &sample(),
            &DotOptions {
                include_isolated: true,
                ..Default::default()
            },
        );
        assert!(all.contains("n2"));
    }

    #[test]
    fn highlight_and_broken_markup() {
        let mut opts = DotOptions::default();
        opts.highlight_nodes.insert(0);
        opts.broken_edges.insert((0, 1));
        let dot = to_dot(&sample(), &opts);
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn title_and_escaping() {
        let opts = DotOptions {
            title: "range \"80-90\"".into(),
            ..Default::default()
        };
        let dot = to_dot(&sample(), &opts);
        assert!(dot.contains("label=\"range \\\"80-90\\\"\";"));
    }
}
