//! `mdes-graph` — the multivariate relationship graph (MVRG) substrate.
//!
//! The MVRG is a directed weighted graph whose nodes are sensors and whose
//! edge `i -> j` carries the BLEU score of translating sensor `i`'s language
//! into sensor `j`'s. This crate provides:
//!
//! * [`RelGraph`] — the graph itself, with degree queries, score-range
//!   subgraphs (*global subgraphs*), popular-node identification and removal
//!   (*local subgraphs*), and weakly-connected components;
//! * [`walktrap`] — random-walk community detection (Pons & Latapy 2006) for
//!   clustering sensors into physical components;
//! * [`table_stats`] / degree helpers — the statistics behind Table I and
//!   Figure 5 of the paper;
//! * [`to_dot`] — Graphviz export matching the paper's figure conventions.
//!
//! # Example
//!
//! ```
//! use mdes_graph::{RelGraph, ScoreRange};
//!
//! let mut g = RelGraph::new(vec!["pump".into(), "valve".into(), "fan".into()]);
//! g.set_score(0, 1, 86.0);
//! g.set_score(1, 0, 84.0);
//! g.set_score(2, 0, 55.0);
//! let strong = g.subgraph(&ScoreRange::best_detection());
//! assert_eq!(strong.edge_count(), 2);
//! ```

#![warn(missing_docs)]

pub mod centrality;
pub mod community;
pub mod dot;
mod graph;
mod range;
pub mod stats;

pub use centrality::{pagerank, reciprocity, PageRankConfig, Reciprocity};
pub use community::{walktrap, Communities, WalktrapConfig};
pub use dot::{to_dot, DotOptions};
pub use graph::RelGraph;
pub use range::{RangeError, ScoreRange};
pub use stats::{ecdf, in_degrees, out_degrees, table_stats, SubgraphStats};
