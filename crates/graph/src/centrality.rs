//! Node-importance measures beyond raw in-degree.
//!
//! The paper identifies critical sensors by in-degree; this module adds
//! weighted PageRank as a robustness check (`exp_ablation_centrality`) and
//! edge-reciprocity statistics exploiting the graph's directionality — the
//! paper notes that the two directed scores between a sensor pair generally
//! differ.

use crate::graph::RelGraph;

/// Configuration for [`pagerank`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an edge).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iters: usize,
    /// L1 convergence tolerance.
    pub tol: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iters: 100,
            tol: 1e-10,
        }
    }
}

/// Weighted PageRank over the directed relationship graph: a walker follows
/// outgoing edges with probability proportional to their BLEU weight.
/// Returns one score per node (isolated nodes receive the teleport mass);
/// scores sum to 1.
///
/// # Panics
///
/// Panics if `damping` is outside `[0, 1)`.
pub fn pagerank(g: &RelGraph, cfg: &PageRankConfig) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&cfg.damping),
        "damping {} must be in [0, 1)",
        cfg.damping
    );
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    // Pre-compute outgoing weight sums.
    let out_weight: Vec<f64> = (0..n)
        .map(|i| (0..n).filter_map(|j| g.score(i, j)).sum())
        .collect();
    for _ in 0..cfg.max_iters {
        let mut next = vec![(1.0 - cfg.damping) * uniform; n];
        let mut dangling = 0.0;
        for i in 0..n {
            if out_weight[i] <= 0.0 {
                dangling += rank[i];
                continue;
            }
            for (j, slot) in next.iter_mut().enumerate() {
                if let Some(w) = g.score(i, j) {
                    *slot += cfg.damping * rank[i] * w / out_weight[i];
                }
            }
        }
        // Dangling mass is redistributed uniformly.
        let share = cfg.damping * dangling * uniform;
        for v in &mut next {
            *v += share;
        }
        let delta: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if delta < cfg.tol {
            break;
        }
    }
    rank
}

/// Statistics of the directional asymmetry between the two edges of each
/// sensor pair.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Reciprocity {
    /// Unordered pairs with edges in both directions.
    pub mutual_pairs: usize,
    /// Unordered pairs with an edge in exactly one direction.
    pub one_way_pairs: usize,
    /// Mean `|s(i,j) - s(j,i)|` over mutual pairs.
    pub mean_abs_asymmetry: f64,
    /// Maximum `|s(i,j) - s(j,i)|` over mutual pairs.
    pub max_abs_asymmetry: f64,
}

/// Computes [`Reciprocity`] for the graph.
pub fn reciprocity(g: &RelGraph) -> Reciprocity {
    let n = g.len();
    let mut r = Reciprocity::default();
    let mut total_asym = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            match (g.score(i, j), g.score(j, i)) {
                (Some(a), Some(b)) => {
                    r.mutual_pairs += 1;
                    let d = (a - b).abs();
                    total_asym += d;
                    r.max_abs_asymmetry = r.max_abs_asymmetry.max(d);
                }
                (Some(_), None) | (None, Some(_)) => r.one_way_pairs += 1,
                (None, None) => {}
            }
        }
    }
    if r.mutual_pairs > 0 {
        r.mean_abs_asymmetry = total_asym / r.mutual_pairs as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}")).collect()
    }

    #[test]
    fn pagerank_sums_to_one_and_favors_sinks() {
        let mut g = RelGraph::new(names(4));
        // Everyone points at node 3.
        for src in 0..3 {
            g.set_score(src, 3, 90.0);
        }
        g.set_score(3, 0, 90.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for other in [0, 1, 2] {
            assert!(pr[3] > pr[other], "sink should rank highest: {pr:?}");
        }
    }

    #[test]
    fn pagerank_uniform_on_empty_graph() {
        let g = RelGraph::new(names(4));
        let pr = pagerank(&g, &PageRankConfig::default());
        for v in pr {
            assert!((v - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_respects_edge_weights() {
        let mut g = RelGraph::new(names(3));
        g.set_score(0, 1, 95.0);
        g.set_score(0, 2, 5.0);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(
            pr[1] > pr[2],
            "heavier edge should attract more rank: {pr:?}"
        );
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn bad_damping_panics() {
        let g = RelGraph::new(names(2));
        let _ = pagerank(
            &g,
            &PageRankConfig {
                damping: 1.5,
                ..Default::default()
            },
        );
    }

    #[test]
    fn reciprocity_counts_and_asymmetry() {
        let mut g = RelGraph::new(names(3));
        g.set_score(0, 1, 90.0);
        g.set_score(1, 0, 70.0);
        g.set_score(1, 2, 60.0);
        let r = reciprocity(&g);
        assert_eq!(r.mutual_pairs, 1);
        assert_eq!(r.one_way_pairs, 1);
        assert!((r.mean_abs_asymmetry - 20.0).abs() < 1e-9);
        assert!((r.max_abs_asymmetry - 20.0).abs() < 1e-9);
    }

    #[test]
    fn reciprocity_of_empty_graph_is_default() {
        let g = RelGraph::new(names(3));
        assert_eq!(reciprocity(&g), Reciprocity::default());
    }
}
