//! Random-walk community detection (Walktrap, Pons & Latapy 2006).
//!
//! The paper (§II-B) suggests a random walk-based community detection
//! algorithm to cluster the local subgraphs into sensor groups that likely
//! originate from the same physical component. This module implements the
//! Walktrap agglomerative scheme on the symmetrized weight matrix:
//!
//! 1. Self-loops are added and the transition matrix `P = D^-1 A` raised to
//!    the `t`-th power; row `i` of `P^t` is node `i`'s walk profile.
//! 2. Communities start as singletons; at each step the pair of *adjacent*
//!    communities whose merger minimizes the Ward-like increase of squared
//!    walk distance is merged.
//! 3. The partition maximizing weighted modularity over the whole merge
//!    sequence is returned.

use crate::graph::RelGraph;

/// Configuration for [`walktrap`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WalktrapConfig {
    /// Random-walk length `t` (Pons & Latapy recommend 3–8).
    pub walk_length: usize,
}

impl Default for WalktrapConfig {
    fn default() -> Self {
        Self { walk_length: 4 }
    }
}

/// A partition of the graph's active nodes into communities.
#[derive(Clone, Debug, PartialEq)]
pub struct Communities {
    /// Each community is a sorted list of node indices.
    pub groups: Vec<Vec<usize>>,
    /// Weighted modularity of the partition.
    pub modularity: f64,
}

struct Community {
    nodes: Vec<usize>,
    /// Mean walk profile over member nodes.
    profile: Vec<f64>,
}

/// Runs Walktrap on the symmetrized weights of `g`, considering only active
/// nodes. Isolated nodes are excluded (they have no walk profile).
///
/// Returns singleton communities (modularity 0) when the graph has no edges.
pub fn walktrap(g: &RelGraph, cfg: &WalktrapConfig) -> Communities {
    let active = g.active_nodes();
    if active.is_empty() {
        return Communities {
            groups: Vec::new(),
            modularity: 0.0,
        };
    }
    let w = g.undirected_weights();
    let n = active.len();

    // Dense adjacency over active nodes with self-loops (aperiodicity).
    let mut adj = vec![vec![0.0f64; n]; n];
    let mut max_w = 0.0f64;
    for (a, &i) in active.iter().enumerate() {
        for (b, &j) in active.iter().enumerate() {
            adj[a][b] = w[i][j];
            max_w = max_w.max(w[i][j]);
        }
    }
    let self_loop = if max_w > 0.0 { max_w } else { 1.0 };
    for (a, row) in adj.iter_mut().enumerate() {
        row[a] += self_loop;
    }
    let degree: Vec<f64> = adj.iter().map(|row| row.iter().sum()).collect();

    // P^t by repeated multiplication.
    let mut p: Vec<Vec<f64>> = adj
        .iter()
        .enumerate()
        .map(|(a, row)| row.iter().map(|&x| x / degree[a]).collect())
        .collect();
    let step = p.clone();
    for _ in 1..cfg.walk_length.max(1) {
        p = mat_mul(&p, &step);
    }

    let mut comms: Vec<Option<Community>> = (0..n)
        .map(|a| {
            Some(Community {
                nodes: vec![a],
                profile: p[a].clone(),
            })
        })
        .collect();

    // Track the best partition by modularity across the merge sequence.
    let total_weight: f64 = degree.iter().sum::<f64>() / 2.0;
    let mut best = snapshot(&comms, &adj, total_weight, &active);

    for _ in 0..n.saturating_sub(1) {
        // Find adjacent pair with minimal Ward distance increase.
        let alive: Vec<usize> = (0..comms.len()).filter(|&i| comms[i].is_some()).collect();
        let mut best_pair: Option<(usize, usize, f64)> = None;
        for (x, &i) in alive.iter().enumerate() {
            for &j in &alive[x + 1..] {
                let (ci, cj) = (comms[i].as_ref().unwrap(), comms[j].as_ref().unwrap());
                if !communities_adjacent(ci, cj, &adj) {
                    continue;
                }
                let d = ward_delta(ci, cj, &degree);
                if best_pair.is_none_or(|(_, _, bd)| d < bd) {
                    best_pair = Some((i, j, d));
                }
            }
        }
        let Some((i, j, _)) = best_pair else { break };
        let cj = comms[j].take().expect("alive");
        let ci = comms[i].as_mut().expect("alive");
        let (si, sj) = (ci.nodes.len() as f64, cj.nodes.len() as f64);
        for (pi, pj) in ci.profile.iter_mut().zip(&cj.profile) {
            *pi = (*pi * si + *pj * sj) / (si + sj);
        }
        ci.nodes.extend(&cj.nodes);
        ci.nodes.sort_unstable();

        let snap = snapshot(&comms, &adj, total_weight, &active);
        if snap.modularity > best.modularity {
            best = snap;
        }
    }
    best
}

fn mat_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

fn communities_adjacent(a: &Community, b: &Community, adj: &[Vec<f64>]) -> bool {
    a.nodes
        .iter()
        .any(|&x| b.nodes.iter().any(|&y| adj[x][y] > 0.0))
}

/// Ward-like merge cost: `|C1||C2| / (|C1| + |C2|) * r^2(C1, C2)` with the
/// degree-weighted squared profile distance.
fn ward_delta(a: &Community, b: &Community, degree: &[f64]) -> f64 {
    let r2: f64 = a
        .profile
        .iter()
        .zip(&b.profile)
        .enumerate()
        .map(|(k, (pa, pb))| (pa - pb).powi(2) / degree[k].max(1e-12))
        .sum();
    let (sa, sb) = (a.nodes.len() as f64, b.nodes.len() as f64);
    sa * sb / (sa + sb) * r2
}

/// Weighted modularity of the current partition, with groups mapped back to
/// original node indices.
fn snapshot(
    comms: &[Option<Community>],
    adj: &[Vec<f64>],
    total_weight: f64,
    active: &[usize],
) -> Communities {
    let mut groups = Vec::new();
    let mut modularity = 0.0;
    for c in comms.iter().flatten() {
        let intra: f64 = c
            .nodes
            .iter()
            .flat_map(|&x| c.nodes.iter().map(move |&y| (x, y)))
            .filter(|(x, y)| x < y)
            .map(|(x, y)| adj[x][y])
            .sum();
        let deg: f64 = c.nodes.iter().map(|&x| adj[x].iter().sum::<f64>()).sum();
        if total_weight > 0.0 {
            modularity += intra / total_weight - (deg / (2.0 * total_weight)).powi(2);
        }
        groups.push(c.nodes.iter().map(|&a| active[a]).collect());
    }
    groups.sort_by_key(|g: &Vec<usize>| g[0]);
    Communities { groups, modularity }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}")).collect()
    }

    /// Two dense cliques joined by a single weak edge.
    fn two_cliques() -> RelGraph {
        let mut g = RelGraph::new(names(8));
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    g.set_score(a, b, 90.0);
                }
            }
        }
        for a in 4..8 {
            for b in 4..8 {
                if a != b {
                    g.set_score(a, b, 90.0);
                }
            }
        }
        g.set_score(0, 4, 10.0);
        g
    }

    #[test]
    fn recovers_two_cliques() {
        let comms = walktrap(&two_cliques(), &WalktrapConfig::default());
        assert_eq!(comms.groups.len(), 2, "groups: {:?}", comms.groups);
        assert_eq!(comms.groups[0], vec![0, 1, 2, 3]);
        assert_eq!(comms.groups[1], vec![4, 5, 6, 7]);
        assert!(comms.modularity > 0.2, "modularity {}", comms.modularity);
    }

    #[test]
    fn empty_graph_yields_no_communities() {
        let g = RelGraph::new(names(5));
        let comms = walktrap(&g, &WalktrapConfig::default());
        assert!(comms.groups.is_empty());
        assert_eq!(comms.modularity, 0.0);
    }

    #[test]
    fn isolated_nodes_excluded() {
        let mut g = RelGraph::new(names(4));
        g.set_score(0, 1, 80.0);
        g.set_score(1, 0, 80.0);
        let comms = walktrap(&g, &WalktrapConfig::default());
        let members: Vec<usize> = comms.groups.iter().flatten().copied().collect();
        assert!(!members.contains(&2));
        assert!(!members.contains(&3));
    }

    #[test]
    fn partition_covers_active_nodes_once() {
        let comms = walktrap(&two_cliques(), &WalktrapConfig::default());
        let mut members: Vec<usize> = comms.groups.iter().flatten().copied().collect();
        members.sort_unstable();
        assert_eq!(members, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn three_components_three_communities() {
        let mut g = RelGraph::new(names(9));
        for base in [0, 3, 6] {
            for a in base..base + 3 {
                for b in base..base + 3 {
                    if a != b {
                        g.set_score(a, b, 85.0);
                    }
                }
            }
        }
        let comms = walktrap(&g, &WalktrapConfig::default());
        assert_eq!(comms.groups.len(), 3, "groups: {:?}", comms.groups);
    }

    #[test]
    fn walk_length_one_still_works() {
        let comms = walktrap(&two_cliques(), &WalktrapConfig { walk_length: 1 });
        assert_eq!(comms.groups.len(), 2);
    }
}
